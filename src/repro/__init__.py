"""repro — reproduction of Miller & Choi, "Breakpoints and Halting in
Distributed Programs" (ICDCS 1988).

The library provides:

* a deterministic message-passing runtime matching the paper's system model
  (:mod:`repro.runtime`, :mod:`repro.network`, :mod:`repro.simulation`);
* Chandy & Lamport's snapshot algorithm (:mod:`repro.snapshot`);
* the paper's Halting Algorithm, basic and extended (:mod:`repro.halting`,
  :mod:`repro.debugger`);
* distributed breakpoints — simple / disjunctive / conjunctive / linked
  predicates and their detection algorithm (:mod:`repro.breakpoints`);
* analyses that verify the paper's theorems on recorded executions
  (:mod:`repro.analysis`);
* the §4 comparator baselines (:mod:`repro.baselines`) and a workload
  library (:mod:`repro.workloads`).

Most users want :mod:`repro.core.api`.
"""

__version__ = "1.0.0"
