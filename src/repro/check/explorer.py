"""Schedule exploration: seeded random walks plus sleep-set bounded DFS.

Exploration is *stateless* (Verisoft-style): the checker never snapshots
simulator state; a schedule is a decision prefix, and visiting a schedule
means re-executing the scenario from scratch under
:class:`~repro.check.scheduler.ScriptedStrategy`. That keeps the explorer
trivially correct w.r.t. the runtime (there is only one way to execute)
at the cost of re-execution — fine at DES speeds.

Two phases share one budget (counted in *runs*):

1. **Seeded random walks** sample the interleaving space broadly; every
   walk's decision list is recorded, so a hit is immediately replayable.
2. **Bounded DFS** from the canonical schedule systematically flips early
   choice points, with a sleep-set-style partial-order reduction: an
   alternative that is independent of the branch already explored at the
   same point is put to sleep and skipped until some dependent event
   wakes it. Independence is "disjoint target processes" (see
   :func:`~repro.check.scheduler.independent`) — commuting choices yield
   the same state, so exploring both orders is redundant.

The first violating schedule stops the search; delta-debugging it to a
minimal decision sequence is :mod:`repro.check.minimize`'s job.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Tuple

from repro.check.runner import Scenario, ScheduleResult, run_schedule
from repro.check.scheduler import (
    RandomWalkStrategy,
    ScriptedStrategy,
    independent,
)
from repro.halting.algorithm import HaltingAgent


@dataclass
class ExplorationReport:
    """What one exploration found (or proved absent, within budget)."""

    scenario: str
    mutation: Optional[str]
    budget: int
    schedules_run: int = 0
    inconclusive_runs: int = 0
    #: The first violating schedule, or None if the budget found nothing.
    violation: Optional[ScheduleResult] = None
    #: How the violating schedule was found ("default"|"walk"|"dfs").
    found_by: Optional[str] = None
    #: DFS branches skipped by sleep-set pruning (reduction visibility).
    slept_branches: int = 0
    dfs_nodes: int = 0

    @property
    def found(self) -> bool:
        """True when some schedule in the budget violated an invariant."""
        return self.violation is not None

    def summary(self) -> str:
        """One-line human verdict for CLI output and logs."""
        where = f" (found by {self.found_by})" if self.found else ""
        verdict = "VIOLATION" if self.found else "no violation"
        return (
            f"{self.scenario}"
            + (f" [mutation={self.mutation}]" if self.mutation else "")
            + f": {verdict} in {self.schedules_run}/{self.budget} "
              f"schedules{where}; {self.inconclusive_runs} inconclusive, "
              f"{self.slept_branches} branches slept"
        )


def explore(
    scenario: Scenario,
    budget: int = 200,
    seed: int = 0,
    dfs_depth: int = 10,
    dfs_fraction: float = 0.5,
    agent_factory: Optional[Callable[..., HaltingAgent]] = None,
    mutation: Optional[str] = None,
    on_progress: Optional[Callable[[int, int], None]] = None,
    backend: str = "des",
) -> ExplorationReport:
    """Search up to ``budget`` schedules of ``scenario`` for a violation.

    ``backend`` selects the substrate every schedule executes on (see
    :func:`~repro.check.runner.run_schedule`); the search logic is
    identical on all of them.
    """
    report = ExplorationReport(
        scenario=scenario.name, mutation=mutation, budget=budget
    )

    def run_one(strategy) -> ScheduleResult:
        report.schedules_run += 1
        result = run_schedule(scenario, strategy, agent_factory,
                              backend=backend)
        if result.inconclusive:
            report.inconclusive_runs += 1
        if on_progress is not None:
            on_progress(report.schedules_run, budget)
        return result

    # Run 1: the canonical (default-order) schedule. Deterministic bugs
    # (a marker never sent, §2.2.2 topologies) fall out immediately, and
    # its choice points seed the DFS frontier.
    root = run_one(ScriptedStrategy([]))
    if root.violated:
        report.violation, report.found_by = root, "default"
        return report

    dfs_budget = min(int(budget * dfs_fraction), budget - report.schedules_run)
    walk_budget = budget - report.schedules_run - dfs_budget

    # Phase 1: seeded random walks.
    for i in range(walk_budget):
        result = run_one(
            RandomWalkStrategy(random.Random(f"{seed}|walk|{i}"))
        )
        if result.violated:
            report.violation, report.found_by = result, "walk"
            return report

    # Phase 2: bounded DFS with sleep sets, rooted at the canonical run.
    stack: List[_Node] = []
    _push_children(stack, root, 0, frozenset(), dfs_depth, report)
    while stack and report.schedules_run < budget:
        node = stack.pop()
        report.dfs_nodes += 1
        result = run_one(ScriptedStrategy(node.prefix))
        if result.violated:
            report.violation, report.found_by = result, "dfs"
            return report
        _push_children(
            stack, result, len(node.prefix), node.sleep, dfs_depth, report
        )
    return report


@dataclass(frozen=True)
class _Node:
    """One unexplored branch: replay ``prefix``, then default order."""

    prefix: Tuple[str, ...]
    #: Labels asleep at the branch point — alternatives already covered by
    #: an earlier sibling whose subtree commutes with everything since.
    sleep: FrozenSet[str]


def _push_children(
    stack: List[_Node],
    result: ScheduleResult,
    prefix_len: int,
    node_sleep: FrozenSet[str],
    dfs_depth: int,
    report: ExplorationReport,
) -> None:
    """Expand one executed schedule into its unexplored alternatives.

    Walks the run's trace from the node's branch point, evolving the
    sleep set: executing a label wakes (removes) every sleeping label
    dependent on it. At each choice point past the prefix, every enabled
    alternative not asleep becomes a child; the child's sleep set gains
    the branch already taken here plus earlier siblings — filtered to
    those independent of the child's own first move.
    """
    record = result.record
    cps = record.choice_points
    trace = record.trace
    sleep = set(node_sleep)
    # The node's sleep set is defined at the state right after its last
    # scripted decision; forced steps executed since then wake sleepers.
    position = cps[prefix_len - 1].trace_index + 1 if prefix_len else 0
    children: List[_Node] = []
    for k in range(prefix_len, min(len(cps), dfs_depth)):
        cp = cps[k]
        for step in range(position, cp.trace_index):
            sleep = {s for s in sleep if independent(s, trace[step])}
        alternatives = [
            label for label in cp.enabled
            if label != cp.chosen and label not in sleep
        ]
        report.slept_branches += sum(
            1 for label in cp.enabled
            if label != cp.chosen and label in sleep
        )
        taken: List[str] = []
        for alt in alternatives:
            child_sleep = frozenset(
                s for s in (sleep | {cp.chosen} | set(taken))
                if independent(s, alt)
            )
            children.append(
                _Node(tuple(record.decisions[:k]) + (alt,), child_sleep)
            )
            taken.append(alt)
        sleep = {s for s in sleep if independent(s, cp.chosen)}
        position = cp.trace_index + 1
    # LIFO stack: push reversed so shallower/earlier alternatives pop first.
    stack.extend(reversed(children))
