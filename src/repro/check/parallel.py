"""Multi-process schedule exploration with deterministic result merging.

The sequential explorer (:mod:`repro.check.explorer`) is embarrassingly
parallel in structure — every schedule is an independent re-execution —
but strictly serial in implementation. This module shards the same search
across a ``multiprocessing`` pool:

* **Task stream.** Tasks are numbered in *canonical order*: task 0 is the
  canonical (default-order) run, tasks 1..W are the seeded random walks,
  and every later task replays one DFS frontier node's decision prefix.
  The frontier is a FIFO queue seeded by the canonical run and grown by
  each processed prefix run, exactly as the sequential sleep-set expansion
  would grow it (:func:`repro.check.explorer._push_children` is reused
  verbatim).
* **Work distribution.** Tasks go to a shared pool queue; idle workers
  steal the next task regardless of which result the parent is waiting
  on, so a slow schedule never idles the other workers. The parent keeps
  at most ``jobs * PIPELINE_DEPTH`` tasks in flight.
* **Deterministic merge.** The parent consumes results strictly in task
  order, and *every* decision — frontier expansion, fingerprint dedup,
  stopping at a violation — is made by the parent in that order. Worker
  count and timing therefore cannot change the outcome: a fixed
  ``(seed, budget)`` yields the same violation set at ``-j 1`` and
  ``-j 8``, which is the contract the CLI's ``--jobs`` flag advertises.
* **Fingerprint dedup.** Each prefix run reports the SHA-256 fingerprint
  of its branch-point state (:mod:`repro.check.fingerprint`). The parent
  keeps the single dedup table; a node whose branch point matches an
  already-expanded state contributes its own run but none of its children
  — its subtree is the equivalence class's subtree, already queued.

Workers cannot be handed :class:`~repro.check.runner.Scenario` objects
(builders are lambdas, and a live ``System`` is full of closures), so the
worker protocol ships *names*: each worker rebuilds the scenario from
:func:`repro.check.runner.scenarios` and the mutation from
:data:`repro.check.mutations.MUTATIONS`, and returns a plain-data
:class:`RunSummary`. When the parent needs the full violating run (for
minimization and artifacts) it replays the decision list locally —
schedules are deterministic, so the replay is the run.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.check.explorer import ExplorationReport, _Node, _push_children
from repro.check.fingerprint import FingerprintTable, fingerprint_system
from repro.check.mutations import MUTATIONS
from repro.check.runner import Scenario, run_schedule, scenarios
from repro.check.scheduler import (
    ChoicePoint,
    RandomWalkStrategy,
    ScriptedStrategy,
)

#: In-flight tasks per worker. Deep enough to hide result-ordering stalls
#: (the parent waits on the oldest task while workers run ahead), shallow
#: enough that a violation does not leave a long tail of wasted runs.
PIPELINE_DEPTH = 4


@dataclass(frozen=True)
class ExploreTask:
    """One unit of work: execute a single schedule of the scenario.

    ``kind`` is ``"walk"`` (payload: RNG seed string) or ``"prefix"``
    (payload: decision prefix to replay, then default order). The canonical
    run is the empty prefix. Plain strings and tuples only — tasks cross
    the process boundary.
    """

    task_id: int
    kind: str
    seed: Optional[str] = None
    prefix: Tuple[str, ...] = ()


@dataclass(frozen=True)
class RunSummary:
    """Picklable digest of one executed schedule, sent worker → parent.

    Carries everything the parent needs to merge: the verdict, the full
    decision list (enough to replay the run exactly), the trace and choice
    points (enough to expand DFS children), and the branch-point
    fingerprint (enough to dedup).
    """

    task_id: int
    decisions: Tuple[str, ...]
    trace: Tuple[str, ...]
    choice_points: Tuple[Tuple[int, Tuple[str, ...], str], ...]
    violations: Tuple[str, ...]
    inconclusive: bool
    fingerprint: Optional[str] = None


@dataclass
class ParallelReport(ExplorationReport):
    """An :class:`ExplorationReport` plus the parallel engine's accounting."""

    jobs: int = 1
    #: Frontier nodes whose branch-point state matched an already-expanded
    #: equivalence class — their subtrees were skipped.
    deduped_nodes: int = 0
    #: Distinct branch-point states seen (the dedup table's size).
    distinct_states: int = 0
    elapsed_seconds: float = 0.0

    @property
    def schedules_per_second(self) -> float:
        """Raw executed-schedule throughput of this exploration."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.schedules_run / self.elapsed_seconds

    def summary(self) -> str:
        """The base verdict line plus parallelism and dedup counters."""
        base = super().summary()
        return (
            f"{base}; jobs={self.jobs}, "
            f"{self.deduped_nodes} subtrees deduped "
            f"({self.distinct_states} distinct states), "
            f"{self.schedules_per_second:.1f} schedules/s"
        )


# -- worker side ----------------------------------------------------------------

_WORKER_SCENARIO: Optional[str] = None
_WORKER_MUTATION: Optional[str] = None
_WORKER_BACKEND: str = "des"


def _init_worker(scenario_name: str, mutation: Optional[str],
                 backend: str = "des") -> None:
    """Pool initializer: record which scenario/mutation/backend this
    worker runs.

    Names, not objects — the worker rebuilds both from the registries, so
    nothing unpicklable ever crosses the process boundary.
    """
    global _WORKER_SCENARIO, _WORKER_MUTATION, _WORKER_BACKEND
    _WORKER_SCENARIO = scenario_name
    _WORKER_MUTATION = mutation
    _WORKER_BACKEND = backend


def _run_task(task: ExploreTask) -> RunSummary:
    """Execute one schedule in this worker and summarise it."""
    scenario = scenarios()[_WORKER_SCENARIO]
    agent_factory = MUTATIONS[_WORKER_MUTATION] if _WORKER_MUTATION else None
    digest: List[str] = []
    if task.kind == "walk":
        strategy = RandomWalkStrategy(random.Random(task.seed))
        result = run_schedule(scenario, strategy, agent_factory,
                              backend=_WORKER_BACKEND)
    else:
        strategy = ScriptedStrategy(list(task.prefix))
        result = run_schedule(
            scenario, strategy, agent_factory,
            on_branch_point=lambda system: digest.append(
                fingerprint_system(system)),
            backend=_WORKER_BACKEND,
        )
    record = result.record
    return RunSummary(
        task_id=task.task_id,
        decisions=tuple(record.decisions),
        trace=tuple(record.trace),
        choice_points=tuple(
            (cp.trace_index, tuple(cp.enabled), cp.chosen)
            for cp in record.choice_points
        ),
        violations=tuple(v.invariant for v in result.violations),
        inconclusive=result.inconclusive,
        fingerprint=digest[0] if digest else None,
    )


# -- parent side ----------------------------------------------------------------


@dataclass
class _TraceView:
    """Duck-typed stand-in for a RunRecord, rebuilt from a RunSummary —
    exactly the three fields :func:`_push_children` reads."""

    trace: List[str]
    decisions: List[str]
    choice_points: List[ChoicePoint]


@dataclass
class _ResultView:
    """Duck-typed stand-in for a ScheduleResult over a :class:`_TraceView`."""

    record: _TraceView


def _as_result_view(summary: RunSummary) -> _ResultView:
    return _ResultView(record=_TraceView(
        trace=list(summary.trace),
        decisions=list(summary.decisions),
        choice_points=[
            ChoicePoint(trace_index=idx, enabled=enabled, chosen=chosen)
            for idx, enabled, chosen in summary.choice_points
        ],
    ))


class _Frontier:
    """FIFO queue of unexplored DFS nodes, grown in canonical order."""

    def __init__(self, dfs_depth: int, report: ParallelReport) -> None:
        self._nodes: Deque[_Node] = deque()
        self._dfs_depth = dfs_depth
        self._report = report

    def __len__(self) -> int:
        return len(self._nodes)

    def pop(self) -> _Node:
        return self._nodes.popleft()

    def expand(self, summary: RunSummary, prefix_len: int,
               sleep: frozenset) -> None:
        """Queue ``summary``'s children, in sibling order."""
        stack: List[_Node] = []
        _push_children(stack, _as_result_view(summary), prefix_len, sleep,
                       self._dfs_depth, self._report)
        # _push_children emits LIFO (reversed) for the sequential stack;
        # reverse back so the FIFO frontier sees canonical sibling order.
        self._nodes.extend(reversed(stack))


def explore_parallel(
    scenario: Scenario,
    budget: int = 200,
    seed: int = 0,
    dfs_depth: int = 10,
    dfs_fraction: float = 0.5,
    jobs: int = 1,
    mutation: Optional[str] = None,
    dedup: bool = True,
    on_progress=None,
    backend: str = "des",
) -> ParallelReport:
    """Search up to ``budget`` schedules of ``scenario`` across ``jobs``
    worker processes; same contract as :func:`repro.check.explorer.explore`.

    ``jobs <= 1`` runs the identical algorithm in-process (no pool), which
    is what makes "``-j N`` equals ``-j 1``" checkable: both paths share
    every line of merge logic. ``scenario`` must come from the registry
    (workers rebuild it by name); ``mutation`` likewise names an entry of
    :data:`~repro.check.mutations.MUTATIONS` or is ``None``. ``backend``
    names the substrate every worker drives (``scenario.backends`` must
    include it).
    """
    report = ParallelReport(
        scenario=scenario.name, mutation=mutation, budget=budget, jobs=jobs,
    )
    agent_factory = MUTATIONS[mutation] if mutation else None
    table = FingerprintTable()
    frontier = _Frontier(dfs_depth, report)
    # Same budget split as the sequential explorer: one canonical run, then
    # walks, then the DFS share — the frontier may consume less if it
    # drains, never more.
    dfs_budget = min(int(budget * dfs_fraction), max(budget - 1, 0))
    walk_budget = max(budget - 1 - dfs_budget, 0)
    walk_seeds = deque(
        f"{seed}|walk|{i}" for i in range(walk_budget)
    )
    # prefix-task bookkeeping the parent needs when the result comes back:
    # task_id -> (prefix_len, sleep set) of the node it replayed.
    node_meta = {0: (0, frozenset())}

    started = time.perf_counter()
    pool = None
    if jobs > 1:
        import multiprocessing

        pool = multiprocessing.Pool(
            jobs, initializer=_init_worker,
            initargs=(scenario.name, mutation, backend),
        )
    else:
        _init_worker(scenario.name, mutation, backend)

    created = 0
    pending: Deque[Tuple[ExploreTask, object]] = deque()
    max_inflight = max(1, jobs) * PIPELINE_DEPTH

    def next_task() -> Optional[ExploreTask]:
        nonlocal created
        if created >= budget:
            return None
        if created == 0:
            task = ExploreTask(task_id=0, kind="prefix", prefix=())
        elif walk_seeds:
            task = ExploreTask(task_id=created, kind="walk",
                               seed=walk_seeds.popleft())
        elif len(frontier):
            node = frontier.pop()
            task = ExploreTask(task_id=created, kind="prefix",
                               prefix=node.prefix)
            node_meta[task.task_id] = (len(node.prefix), node.sleep)
        else:
            return None
        created += 1
        return task

    def dispatch() -> None:
        while len(pending) < max_inflight:
            task = next_task()
            if task is None:
                return
            if pool is not None:
                pending.append((task, pool.apply_async(_run_task, (task,))))
            else:
                pending.append((task, _run_task(task)))

    try:
        dispatch()
        while pending:
            task, handle = pending.popleft()
            summary = handle.get() if pool is not None else handle
            report.schedules_run += 1
            if summary.inconclusive:
                report.inconclusive_runs += 1
            if on_progress is not None:
                on_progress(report.schedules_run, budget)
            node_info = None
            if task.kind == "prefix":
                node_info = node_meta.pop(task.task_id)
                if task.task_id > 0:
                    report.dfs_nodes += 1
            if summary.violations:
                # Rebuild the full result locally: deterministic replay of
                # the worker's decision list IS the worker's run.
                report.violation = run_schedule(
                    scenario, ScriptedStrategy(list(summary.decisions)),
                    agent_factory, backend=backend,
                )
                report.found_by = (
                    "walk" if task.kind == "walk"
                    else ("default" if task.task_id == 0 else "dfs")
                )
                break
            if node_info is not None and not summary.inconclusive:
                prefix_len, sleep = node_info
                fresh = True
                if dedup and summary.fingerprint is not None:
                    fresh = table.record(summary.fingerprint, task.task_id)
                    if not fresh:
                        report.deduped_nodes += 1
                if fresh:
                    frontier.expand(summary, prefix_len, sleep)
            dispatch()
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()
    report.distinct_states = len(table)
    report.elapsed_seconds = time.perf_counter() - started
    return report
