"""Multi-process schedule exploration with deterministic result merging.

The sequential explorer (:mod:`repro.check.explorer`) is embarrassingly
parallel in structure — every schedule is an independent re-execution —
but strictly serial in implementation. This module shards the same search
across a ``multiprocessing`` pool built around *worker-resident
incremental kernels* (:mod:`repro.check.engine`):

* **Task stream.** Tasks are numbered in *canonical order*: task 0 is the
  canonical (default-order) run, tasks 1..W are the seeded random walks,
  and every later task replays one frontier node's decision prefix. The
  frontier is seeded by the canonical run and grown by each processed
  prefix run, exactly as the sequential sleep-set expansion would grow it
  (:func:`repro.check.explorer._push_children` is reused verbatim).
  ``order="dfs"`` (default) consumes nodes in arrival order;
  ``order="level"`` is a Chauhan–Garg-style level traversal — all nodes
  of prefix length *d* before any of length *d+1*, under a bounded
  frontier that drops (and counts) overflow instead of growing without
  bound.
* **Batched frontier leases.** Work ships as *leases* — contiguous blocks
  of up to :data:`LEASE_SIZE` tasks — so one pickle round-trip amortizes
  over many schedules. Each worker keeps one
  :class:`~repro.check.engine.ExplorationEngine` resident across leases:
  the scenario world is built once per ``(scenario, mutation, backend)``
  epoch, rewound in place between runs, and branch-point snapshots let a
  child prefix restore-and-diverge instead of replaying from step zero.
  The parent keeps at most ``jobs * PIPELINE_DEPTH`` leases in flight and
  cuts a partial lease only when nothing else is pending, so workers
  never starve behind a full-lease threshold.
* **Deterministic merge.** The parent consumes results strictly in task
  order, and *every* decision — frontier expansion, fingerprint dedup,
  stopping at a violation — is made by the parent in that order. Worker
  count and timing therefore cannot change the outcome: a fixed
  ``(seed, budget)`` yields the same violation set at ``-j 1`` and
  ``-j 8``, which is the contract the CLI's ``--jobs`` flag advertises.
* **Sharded fingerprint dedup.** Each prefix run reports the SHA-256
  fingerprint of its branch-point state (:mod:`repro.check.fingerprint`).
  Workers pre-dedup against a local shard — a shard hit proves the parent
  will dedup the node too, so the engine skips snapshotting it — but the
  shard never decides anything: the parent keeps the single authoritative
  table and performs the canonical-order merge. A node whose branch point
  matches an already-expanded state contributes its own run but none of
  its children; when the first sighting lived on a *different* worker's
  shard the parent counts a cross-shard reconciliation
  (:attr:`ParallelReport.cross_shard_dupes`).

Workers cannot be handed :class:`~repro.check.runner.Scenario` objects
(builders are lambdas, and a live ``System`` is full of closures), so the
worker protocol ships *names*: each worker rebuilds the scenario from
:func:`repro.check.runner.scenarios` — or, for trace scenarios, from the
trace file named by ``trace_path`` — and the mutation from
:data:`repro.check.mutations.MUTATIONS`, and returns plain-data
:class:`RunSummary` tuples. When the parent needs the full violating run
(for minimization and artifacts) it replays the decision list locally —
schedules are deterministic, so the replay is the run.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.check.engine import ExplorationEngine, blank_stats
from repro.check.explorer import ExplorationReport, _Node, _push_children
from repro.check.fingerprint import FingerprintTable
from repro.check.runner import Scenario, run_schedule, scenarios
from repro.check.scheduler import ChoicePoint, ScriptedStrategy

#: Leases in flight per worker. Two is enough to hide the pickle
#: round-trip behind execution (the worker starts lease k+1 while the
#: parent merges lease k) without leaving a long tail of wasted runs
#: after a violation.
PIPELINE_DEPTH = 2

#: Tasks per lease. One worker round-trip amortizes over this many
#: schedules; sibling prefix nodes travel in the same block, so the
#: worker that captured their parent's branch-point snapshot usually
#: restores it instead of replaying from the root.
LEASE_SIZE = 8

#: Default frontier bound for ``order="level"`` — the Chauhan–Garg
#: traversal's memory knob. Overflow nodes are dropped and counted, never
#: silently explored out of order.
LEVEL_FRONTIER_LIMIT = 1024


@dataclass(frozen=True)
class ExploreTask:
    """One unit of work: execute a single schedule of the scenario.

    ``kind`` is ``"walk"`` (payload: RNG seed string), ``"prefix"``
    (payload: decision prefix to replay, then default order — the
    canonical run is the empty prefix), ``"script"`` (payload: exact
    decision list, no branch-point fingerprint), or ``"biased"``
    (payload: base schedule in ``prefix`` plus RNG seed; follows the base
    with probability ``follow``). Plain strings and tuples only — tasks
    cross the process boundary.
    """

    task_id: int
    kind: str
    seed: Optional[str] = None
    prefix: Tuple[str, ...] = ()
    follow: float = 0.85


@dataclass(frozen=True)
class RunSummary:
    """Picklable digest of one executed schedule, sent worker → parent.

    Carries everything the parent needs to merge: the verdict, the full
    decision list (enough to replay the run exactly), the trace and choice
    points (enough to expand frontier children), the branch-point
    fingerprint (enough to dedup), and the worker shard's verdict on that
    fingerprint (enough to attribute cross-shard duplicates).
    """

    task_id: int
    decisions: Tuple[str, ...]
    trace: Tuple[str, ...]
    choice_points: Tuple[Tuple[int, Tuple[str, ...], str], ...]
    violations: Tuple[str, ...]
    inconclusive: bool
    fingerprint: Optional[str] = None
    #: Worker-shard verdict for ``fingerprint``: ``False`` when this
    #: worker had already seen the state, ``None`` when no shard ran.
    shard_fresh: Optional[bool] = None


@dataclass
class ParallelReport(ExplorationReport):
    """An :class:`ExplorationReport` plus the parallel engine's accounting."""

    jobs: int = 1
    #: Frontier traversal: ``"dfs"`` (arrival order) or ``"level"``.
    order: str = "dfs"
    #: Frontier nodes whose branch-point state matched an already-expanded
    #: equivalence class — their subtrees were skipped.
    deduped_nodes: int = 0
    #: Distinct branch-point states seen (the dedup table's size).
    distinct_states: int = 0
    #: Deduped nodes whose first sighting lived on a *different* worker's
    #: shard — the cross-shard reconciliations the parent's canonical
    #: merge performed. Timing-dependent accounting (which worker saw a
    #: state first varies), never part of the determinism contract.
    cross_shard_dupes: int = 0
    #: Nodes discarded by the level frontier's memory bound.
    dropped_nodes: int = 0
    #: Lease accounting: blocks dispatched and tasks they carried.
    leases: int = 0
    lease_tasks: int = 0
    #: Summed worker-engine counters (see
    #: :data:`repro.check.engine.STAT_KEYS`): builds, restores vs
    #: replays, snapshot captures/evictions, shard hits, twin runs.
    engine: Dict[str, int] = field(default_factory=blank_stats)
    elapsed_seconds: float = 0.0

    @property
    def schedules_per_second(self) -> float:
        """Raw executed-schedule throughput of this exploration."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.schedules_run / self.elapsed_seconds

    def summary(self) -> str:
        """The base verdict line plus parallelism and engine counters."""
        base = super().summary()
        eng = self.engine
        avg = self.lease_tasks / self.leases if self.leases else 0.0
        line = (
            f"{base}; jobs={self.jobs}, "
            f"{self.deduped_nodes} subtrees deduped "
            f"({self.distinct_states} distinct states), "
            f"{self.schedules_per_second:.1f} schedules/s; "
            f"{self.leases} leases (avg {avg:.1f} tasks), "
            f"{eng['snapshot_restores']} snapshot restores / "
            f"{eng['root_restores']} root replays, "
            f"{eng['snapshot_captures']} captured "
            f"({eng['snapshot_evictions']} evicted)"
        )
        if self.order != "dfs":
            line += f"; order={self.order}, {self.dropped_nodes} dropped"
        return line


# -- worker side ----------------------------------------------------------------

#: Epoch descriptor set by the pool initializer; the engine is built
#: lazily on the first lease and kept resident until the epoch changes.
_WORKER_EPOCH: Optional[tuple] = None
_WORKER_ENGINE: Optional[ExplorationEngine] = None
#: In-process fallback for scenarios that cannot be rebuilt by name or
#: path (a trace scenario handed directly to ``explore_parallel`` with
#: ``jobs == 1``) and for raw agent factories (in-process only — they
#: don't pickle). Never set in a pooled worker. The token bumps on every
#: assignment so a stale resident engine can never be mistaken for the
#: current epoch's.
_LOCAL_SCENARIO: Optional[Scenario] = None
_LOCAL_FACTORY = None
_LOCAL_TOKEN = 0


def _set_local(scenario: Optional[Scenario], factory=None) -> None:
    global _LOCAL_SCENARIO, _LOCAL_FACTORY, _LOCAL_TOKEN
    _LOCAL_SCENARIO = scenario
    _LOCAL_FACTORY = factory
    _LOCAL_TOKEN += 1


def _init_worker(
    scenario_name: str,
    mutation: Optional[str],
    backend: str = "des",
    trace_path: Optional[str] = None,
    dfs_depth: int = 10,
    shard_dedup: bool = True,
) -> None:
    """Pool initializer: record this worker's epoch.

    Names and paths, not objects — the worker rebuilds the scenario from
    the registry (or the trace file) and the mutation from
    :data:`~repro.check.mutations.MUTATIONS`, so nothing unpicklable ever
    crosses the process boundary. The resident engine is built lazily by
    the first lease and torn down only when the epoch changes (which in a
    pooled worker is never — pools are per-exploration — but the
    in-process ``jobs == 1`` path reuses this module's globals across
    calls).
    """
    global _WORKER_EPOCH
    _WORKER_EPOCH = (
        scenario_name, mutation, backend, trace_path, dfs_depth,
        shard_dedup, _LOCAL_TOKEN,
    )


def _ensure_engine() -> ExplorationEngine:
    """The worker's resident engine for the current epoch (build once)."""
    global _WORKER_ENGINE
    if (
        _WORKER_ENGINE is not None
        and _WORKER_ENGINE._epoch == _WORKER_EPOCH
    ):
        return _WORKER_ENGINE
    (name, mutation, backend, trace_path, dfs_depth, shard_dedup,
     _local) = _WORKER_EPOCH
    if trace_path is not None:
        from repro.record.bridge import trace_scenario
        from repro.record.store import load_trace

        scenario = trace_scenario(load_trace(trace_path), name=name)
    elif _LOCAL_SCENARIO is not None and _LOCAL_SCENARIO.name == name:
        scenario = _LOCAL_SCENARIO
    else:
        scenario = scenarios()[name]
    engine = ExplorationEngine(
        scenario, mutation=mutation, backend=backend, dfs_depth=dfs_depth,
        shard_dedup=shard_dedup, agent_factory=_LOCAL_FACTORY,
    )
    engine._epoch = _WORKER_EPOCH
    _WORKER_ENGINE = engine
    return engine


def _run_lease(
    tasks: Tuple[ExploreTask, ...],
) -> Tuple[Tuple[RunSummary, ...], Dict[str, int]]:
    """Execute one block of tasks on this worker's resident engine.

    Returns the per-task summaries (in task order) plus the engine
    counters accumulated over the block — one pickle round-trip for the
    whole lease.
    """
    engine = _ensure_engine()
    summaries = []
    for task in tasks:
        if task.kind == "walk":
            run = engine.run_walk(task.seed)
        elif task.kind == "prefix":
            run = engine.run_prefix(task.prefix)
        elif task.kind == "script":
            run = engine.run_script(list(task.prefix))
        elif task.kind == "biased":
            run = engine.run_biased(task.prefix, task.seed, task.follow)
        else:  # pragma: no cover - parent never builds other kinds
            raise ValueError(f"unknown task kind {task.kind!r}")
        result = run.result
        record = result.record
        summaries.append(RunSummary(
            task_id=task.task_id,
            decisions=tuple(record.decisions),
            trace=tuple(record.trace),
            choice_points=tuple(
                (cp.trace_index, tuple(cp.enabled), cp.chosen)
                for cp in record.choice_points
            ),
            violations=tuple(v.invariant for v in result.violations),
            inconclusive=result.inconclusive,
            fingerprint=run.fingerprint,
            shard_fresh=run.shard_fresh,
        ))
    return tuple(summaries), engine.drain_stats()


# -- parent side ----------------------------------------------------------------


@dataclass
class _TraceView:
    """Duck-typed stand-in for a RunRecord, rebuilt from a RunSummary —
    exactly the three fields :func:`_push_children` reads."""

    trace: List[str]
    decisions: List[str]
    choice_points: List[ChoicePoint]


@dataclass
class _ResultView:
    """Duck-typed stand-in for a ScheduleResult over a :class:`_TraceView`."""

    record: _TraceView


def _as_result_view(summary: RunSummary) -> _ResultView:
    return _ResultView(record=_TraceView(
        trace=list(summary.trace),
        decisions=list(summary.decisions),
        choice_points=[
            ChoicePoint(trace_index=idx, enabled=enabled, chosen=chosen)
            for idx, enabled, chosen in summary.choice_points
        ],
    ))


class _Frontier:
    """FIFO queue of unexplored frontier nodes, grown in canonical order.

    The k-th pop is the k-th arrival, and arrivals happen at merge time
    in task order — so the pop sequence is independent of worker count
    and timing even though *when* pops happen is not.
    """

    def __init__(self, dfs_depth: int, report: ParallelReport) -> None:
        self._nodes: Deque[_Node] = deque()
        self._dfs_depth = dfs_depth
        self._report = report

    def __len__(self) -> int:
        return len(self._nodes)

    def pop(self) -> Optional[_Node]:
        return self._nodes.popleft() if self._nodes else None

    def expand(self, summary: RunSummary, prefix_len: int,
               sleep: frozenset) -> None:
        """Queue ``summary``'s children, in sibling order."""
        stack: List[_Node] = []
        _push_children(stack, _as_result_view(summary), prefix_len, sleep,
                       self._dfs_depth, self._report)
        # _push_children emits LIFO (reversed) for the sequential stack;
        # reverse back so the FIFO frontier sees canonical sibling order.
        self._nodes.extend(reversed(stack))


class _LevelFrontier:
    """Level-order frontier (Chauhan & Garg): one FIFO queue per prefix
    depth, popped shallowest-first under a *level barrier*.

    A node of depth ``d`` may only be popped when no shallower node is
    queued **or still outstanding** (dispatched or staged but not yet
    merged): an outstanding depth-``d'`` task (``d' < d``) can still
    enqueue children at depths down to ``d' + 1``, so releasing depth
    ``d`` early would let worker timing reorder the traversal. Once the
    barrier clears, no future arrival can land below ``d`` (children are
    strictly deeper than their parents), so levels close permanently in
    order and the pop sequence is identical at every ``-j N``.

    Total queued nodes are bounded by ``limit``; overflow children are
    dropped at enqueue time — a merge-order (hence deterministic)
    decision — and counted in :attr:`ParallelReport.dropped_nodes`.
    """

    def __init__(self, dfs_depth: int, report: ParallelReport,
                 limit: int) -> None:
        self._levels: Dict[int, Deque[_Node]] = {}
        self._dfs_depth = dfs_depth
        self._report = report
        self._limit = limit
        self._size = 0
        #: Prefix tasks dispatched or staged but not yet merged, by depth.
        self.outstanding: Dict[int, int] = {}

    def __len__(self) -> int:
        return self._size

    def note_dispatch(self, depth: int) -> None:
        self.outstanding[depth] = self.outstanding.get(depth, 0) + 1

    def note_merge(self, depth: int) -> None:
        left = self.outstanding.get(depth, 0) - 1
        if left <= 0:
            self.outstanding.pop(depth, None)
        else:
            self.outstanding[depth] = left

    def pop(self) -> Optional[_Node]:
        depths = [d for d, q in self._levels.items() if q]
        if not depths:
            return None
        depth = min(depths)
        if self.outstanding and min(self.outstanding) < depth:
            return None  # level barrier: shallower work still in flight
        self._size -= 1
        return self._levels[depth].popleft()

    def expand(self, summary: RunSummary, prefix_len: int,
               sleep: frozenset) -> None:
        stack: List[_Node] = []
        _push_children(stack, _as_result_view(summary), prefix_len, sleep,
                       self._dfs_depth, self._report)
        for node in reversed(stack):
            if self._size >= self._limit:
                self._report.dropped_nodes += 1
                continue
            depth = len(node.prefix)
            self._levels.setdefault(depth, deque()).append(node)
            self._size += 1


def explore_parallel(
    scenario: Scenario,
    budget: int = 200,
    seed: int = 0,
    dfs_depth: int = 10,
    dfs_fraction: float = 0.5,
    jobs: int = 1,
    mutation: Optional[str] = None,
    dedup: bool = True,
    on_progress=None,
    backend: str = "des",
    order: str = "dfs",
    frontier_limit: Optional[int] = None,
    trace_path: Optional[str] = None,
) -> ParallelReport:
    """Search up to ``budget`` schedules of ``scenario`` across ``jobs``
    worker processes; same contract as :func:`repro.check.explorer.explore`.

    ``jobs <= 1`` runs the identical algorithm in-process (no pool), which
    is what makes "``-j N`` equals ``-j 1``" checkable: both paths share
    every line of merge logic. ``scenario`` must come from the registry
    (workers rebuild it by name) — or, for trace scenarios, ``trace_path``
    must name the trace file workers rebuild it from. ``mutation``
    likewise names an entry of :data:`~repro.check.mutations.MUTATIONS` or
    is ``None``. ``backend`` names the substrate every worker drives
    (``scenario.backends`` must include it). ``order`` picks the frontier
    traversal: ``"dfs"`` (canonical arrival order) or ``"level"``
    (strict level-by-level under ``frontier_limit`` bounded memory).
    """
    if order not in ("dfs", "level"):
        raise ValueError(f"unknown order {order!r}; known: dfs, level")
    if jobs > 1 and scenario.mode == "trace" and trace_path is None:
        raise ValueError(
            "trace scenarios cross the worker boundary by path: pass "
            "trace_path= (the recorded artifact file) to explore with "
            "jobs > 1"
        )
    report = ParallelReport(
        scenario=scenario.name, mutation=mutation, budget=budget, jobs=jobs,
        order=order,
    )
    table = FingerprintTable()
    if order == "level":
        frontier = _LevelFrontier(
            dfs_depth, report,
            LEVEL_FRONTIER_LIMIT if frontier_limit is None else frontier_limit,
        )
    else:
        frontier = _Frontier(dfs_depth, report)
    # Same budget split as the sequential explorer: one canonical run, then
    # walks, then the DFS share — the frontier may consume less if it
    # drains, never more.
    dfs_budget = min(int(budget * dfs_fraction), max(budget - 1, 0))
    walk_budget = max(budget - 1 - dfs_budget, 0)
    walk_seeds = deque(
        f"{seed}|walk|{i}" for i in range(walk_budget)
    )
    # prefix-task bookkeeping the parent needs when the result comes back:
    # task_id -> (prefix_len, sleep set) of the node it replayed.
    node_meta = {0: (0, frozenset())}

    started = time.perf_counter()
    init_args = (scenario.name, mutation, backend, trace_path, dfs_depth,
                 dedup)
    pool = None
    if jobs > 1:
        import multiprocessing

        pool = multiprocessing.Pool(
            jobs, initializer=_init_worker, initargs=init_args,
        )
    else:
        _set_local(scenario if trace_path is None else None)
        _init_worker(*init_args)

    created = 0
    staged: List[ExploreTask] = []
    pending: Deque[object] = deque()
    max_leases = max(1, jobs) * PIPELINE_DEPTH
    level = frontier if order == "level" else None

    def next_task() -> Optional[ExploreTask]:
        nonlocal created
        if created >= budget:
            return None
        if created == 0:
            task = ExploreTask(task_id=0, kind="prefix", prefix=())
        elif walk_seeds:
            task = ExploreTask(task_id=created, kind="walk",
                               seed=walk_seeds.popleft())
        else:
            node = frontier.pop()
            if node is None:
                return None
            task = ExploreTask(task_id=created, kind="prefix",
                               prefix=node.prefix)
            node_meta[task.task_id] = (len(node.prefix), node.sleep)
        if task.kind == "prefix" and level is not None:
            level.note_dispatch(len(task.prefix))
        created += 1
        return task

    def dispatch() -> None:
        while len(pending) < max_leases:
            while len(staged) < LEASE_SIZE:
                task = next_task()
                if task is None:
                    break
                staged.append(task)
            if not staged:
                return
            if len(staged) < LEASE_SIZE and pending:
                return  # wait for merges to grow the frontier
            lease = tuple(staged[:LEASE_SIZE])
            del staged[:LEASE_SIZE]
            report.leases += 1
            report.lease_tasks += len(lease)
            if pool is not None:
                pending.append(
                    (lease, pool.apply_async(_run_lease, (lease,)))
                )
            else:
                pending.append((lease, _run_lease(lease)))

    def merge_one(task: ExploreTask, summary: RunSummary) -> bool:
        """Fold one summary into the report; True when a violation stops
        the search."""
        report.schedules_run += 1
        if summary.inconclusive:
            report.inconclusive_runs += 1
        if on_progress is not None:
            on_progress(report.schedules_run, budget)
        node_info = None
        if task.kind == "prefix":
            node_info = node_meta.pop(task.task_id)
            if level is not None:
                level.note_merge(len(task.prefix))
            if task.task_id > 0:
                report.dfs_nodes += 1
        if summary.violations:
            # Rebuild the full result locally: deterministic replay of
            # the worker's decision list IS the worker's run.
            report.violation = run_schedule(
                scenario, ScriptedStrategy(list(summary.decisions)),
                _local_factory(mutation), backend=backend,
            )
            report.found_by = (
                "walk" if task.kind == "walk"
                else ("default" if task.task_id == 0 else "dfs")
            )
            return True
        if node_info is not None and not summary.inconclusive:
            prefix_len, sleep = node_info
            fresh = True
            if dedup and summary.fingerprint is not None:
                fresh = table.record(summary.fingerprint, task.task_id)
                if not fresh:
                    report.deduped_nodes += 1
                    if summary.shard_fresh:
                        report.cross_shard_dupes += 1
            if fresh:
                frontier.expand(summary, prefix_len, sleep)
        return False

    try:
        dispatch()
        while pending:
            lease, handle = pending.popleft()
            summaries, stats = (
                handle.get() if pool is not None else handle
            )
            for key, value in stats.items():
                report.engine[key] += value
            stop = False
            for task, summary in zip(lease, summaries):
                if merge_one(task, summary):
                    stop = True
                    break
            if stop:
                break
            dispatch()
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()
        elif _LOCAL_SCENARIO is not None:
            _set_local(None)
    report.distinct_states = len(table)
    report.elapsed_seconds = time.perf_counter() - started
    return report


def _local_factory(mutation: Optional[str]):
    from repro.check.mutations import MUTATIONS

    if mutation:
        return MUTATIONS[mutation]
    return _LOCAL_FACTORY
