"""Deliberately broken Halting Algorithm variants — the checker's prey.

Each mutation subclasses :class:`~repro.halting.algorithm.HaltingAgent`
and breaks exactly one rule of §2.2.1. The mutation-smoke suite (and
``repro check --mutate``) injects them through
``HaltingCoordinator(agent_factory=...)`` and asserts the invariant
library catches each one within a bounded schedule budget — evidence the
checker would notice a real regression in the genuine agent.

``skip-forward``
    The Halt Routine "for **each** channel directed away from x" loop
    skips one outgoing channel. On a unidirectional ring that severs the
    marker flood outright: downstream processes never halt and
    ``halt_convergence`` fails on every schedule.
``late-halt``
    The Halt Routine forwards its markers but *defers* the halt itself by
    one internal step, breaking the rule's atomicity. In the window the
    process keeps consuming messages past its announced cut point —
    schedule-dependent: interleavings that land a delivery (or a
    neighbour's halt) inside the window violate ``theorem2_equivalence``
    or ``halting_order_prefix``; interleavings that close the window
    immediately are indistinguishable from the correct agent.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.halting.algorithm import HaltingAgent
from repro.halting.markers import HaltMarker
from repro.network.message import MessageKind


class SkipForwardAgent(HaltingAgent):
    """Forgets one outgoing channel in the Halt Routine's forwarding loop."""

    def _forward_markers(self, marker: HaltMarker) -> None:
        forwarded = marker.extended_by(self.controller.name)
        channels = sorted(self.controller.outgoing_channels(), key=str)
        for channel_id in channels[1:]:  # BUG: channels[0] never gets one.
            self.controller.send_control(
                channel_id, MessageKind.HALT_MARKER, forwarded
            )


class LateHaltAgent(HaltingAgent):
    """Forwards markers now, halts one internal step later."""

    def _halt_routine(self, marker: HaltMarker) -> None:
        self.halted_via = marker
        self._forward_markers(marker)
        if self.controller.never_halts:
            return
        # BUG: the halt is no longer atomic with the forwarding — any
        # work scheduled into this window runs past the announced cut.
        self.controller.defer(
            lambda: self._late_halt(marker), label="late-halt"
        )

    def _late_halt(self, marker: HaltMarker) -> None:
        controller = self.controller
        if controller.halted or controller.crashed:
            return
        controller.halt(
            halt_id=self.last_halt_id,
            halt_path=list(marker.extended_by(controller.name).path),
        )
        if self._notify_halted is not None:
            self._notify_halted(self)


#: Name → agent factory, as accepted by ``HaltingCoordinator``.
MUTATIONS: Dict[str, Callable[..., HaltingAgent]] = {
    "skip-forward": SkipForwardAgent,
    "late-halt": LateHaltAgent,
}
