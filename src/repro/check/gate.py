"""The scheduling gate: one decision surface over all three backends.

The checker's job is to *choose* interleavings, but each backend realises
nondeterminism differently — the DES kernel holds a priority queue, the
threaded backend races real OS threads, the distributed backend races TCP
frames. A :class:`SchedulingGate` hides that behind three verbs:

``enabled()``
    The sorted labels of every group that could fire next (same grouping
    as :func:`repro.check.scheduler.classify` — per-channel FIFO heads,
    per-process timer deadlines, individual internal actions). An empty
    set means the system is quiescent.
``commit(label)``
    Fire the chosen group's head and run the system until it is idle
    again (one atomic handler step, the paper's process "instant").
``close()``
    Detach from the substrate (uninstall hooks, drop staged work).

:func:`drive` runs any gate under any :class:`~repro.check.scheduler.
Strategy`, recording the same ``trace`` / ``decisions`` / choice points
the DES :class:`~repro.check.scheduler.ControlledScheduler` records — so
the explorer, the ddmin minimizer, and replay artifacts work unchanged on
every substrate.

Implementations here:

* :class:`KernelGate` — the DES backend. A thin adapter over the kernel
  ordering hook; byte-identical traces to the pre-gate scheduler.
* :class:`ThreadedStepGate` — the threaded backend's cooperative step
  gate. Controllers stage deliveries, timers, and deferred actions with
  the gate instead of arming wall-clock machinery; committing a step
  posts exactly one mailbox item and blocks on the system's activity
  turnstile until the handler finishes. Real threads run the handlers;
  the gate picks which thread advances.
* :class:`FrameGate` — the distributed backend's frame gate: a staging
  buffer above the TCP framing layer, releasing held frames per channel
  in explorer-chosen order (see :mod:`repro.distributed.framegate`).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.check.scheduler import (
    ChoicePoint,
    DefaultStrategy,
    Strategy,
    group_heads,
)
from repro.simulation.kernel import (
    PRIORITY_DELIVERY,
    PRIORITY_INTERNAL,
    PRIORITY_TIMER,
    ScheduledEvent,
    SimulationKernel,
)
from repro.util.errors import SimulationError


class SchedulingGate:
    """Protocol base: enumerate enabled groups, commit one, observe idle.

    Subclasses override :meth:`enabled` and :meth:`commit`; the base
    supplies the shared conveniences (quiescence test, no-op close).
    """

    def enabled(self) -> List[str]:
        """Sorted labels of every group that could fire next."""
        raise NotImplementedError

    def commit(self, label: str) -> None:
        """Fire ``label``'s group head; return once the system is idle."""
        raise NotImplementedError

    def close(self) -> None:
        """Detach from the substrate. Idempotent; default is a no-op."""

    @property
    def now(self) -> float:
        """The substrate's virtual clock after the last committed step."""
        raise NotImplementedError

    def quiescent(self) -> bool:
        """True when nothing is enabled — the run has drained."""
        return not self.enabled()


@dataclass
class DriveResult:
    """What :func:`drive` recorded — the scheduler surface of one run."""

    #: Every step's chosen label, in execution order.
    trace: List[str] = field(default_factory=list)
    #: The chosen labels at choice points only (the replayable schedule).
    decisions: List[str] = field(default_factory=list)
    #: Full choice-point records, for the explorer's branching.
    choice_points: List[ChoicePoint] = field(default_factory=list)
    #: Committed steps (== ``len(trace)``; the backend-neutral analogue of
    #: the DES kernel's ``events_executed``).
    steps: int = 0
    #: True when the gate drained before the step budget ran out.
    quiesced: bool = False


def drive(
    gate: SchedulingGate,
    strategy: Optional[Strategy] = None,
    max_steps: int = 20_000,
    *,
    result: Optional[DriveResult] = None,
    stop_when: Optional[Callable[[], bool]] = None,
) -> DriveResult:
    """Run ``gate`` to quiescence (or budget) under ``strategy``.

    This is the recording loop previously embedded in the DES
    :class:`~repro.check.scheduler.ControlledScheduler`, lifted to the
    gate protocol: identical label math, identical choice-point and
    decision bookkeeping, so artifacts recorded on one backend replay on
    any other whose labels line up.

    ``result`` pre-seeds the recording — the worker-resident explorer
    restores a branch-point snapshot and hands in the trace/decision
    prefix that snapshot already executed, so the stitched record is
    byte-identical to a from-scratch run (``max_steps`` is the *total*
    budget, prefix steps included). ``stop_when`` is checked after each
    committed step: once it reports true the loop exits early with the
    gate's current quiescence. The Theorem-2 twin uses it to stop as soon
    as the replayed trace is consumed and the snapshot is complete — the
    recorded state can no longer change, so the verdict cannot either.
    """
    strategy = strategy or DefaultStrategy()
    if result is None:
        result = DriveResult()
    while result.steps < max_steps:
        labels = gate.enabled()
        if not labels:
            result.quiesced = True
            return result
        chosen = strategy.on_step(labels)
        if chosen not in labels:
            # Defensive: a buggy strategy must not wedge the run.
            chosen = labels[0]
        if len(labels) > 1:
            result.choice_points.append(
                ChoicePoint(len(result.trace), tuple(labels), chosen)
            )
            result.decisions.append(chosen)
        result.trace.append(chosen)
        gate.commit(chosen)
        result.steps += 1
        if stop_when is not None and stop_when():
            result.quiesced = gate.quiescent()
            return result
    result.quiesced = gate.quiescent()
    return result


class KernelGate(SchedulingGate):
    """DES adapter: the kernel ordering hook behind the gate verbs.

    :meth:`enabled` folds the kernel's live entries into group heads with
    the same memoized classification the controlled scheduler used;
    :meth:`commit` steps the kernel once with the hook primed to return
    the chosen head. Because both paths share :func:`group_heads` and the
    kernel's cached views, traces are byte-identical to the pre-gate
    scheduler's.
    """

    def __init__(self, kernel: SimulationKernel) -> None:
        self.kernel = kernel
        self._label_cache: Dict[int, str] = {}
        self._heads: Dict[str, ScheduledEvent] = {}
        self._chosen: Optional[int] = None
        kernel.set_ordering(self._pick)

    def _pick(self, views: List[ScheduledEvent]) -> int:
        if self._chosen is None:  # pragma: no cover - defensive
            raise SimulationError(
                "KernelGate's kernel stepped outside commit(); drive the "
                "run through the gate, not kernel.run()"
            )
        chosen, self._chosen = self._chosen, None
        return chosen

    def enabled(self) -> List[str]:
        """Group heads of the kernel's live entries, as sorted labels."""
        self._heads = group_heads(self.kernel.pending_events(),
                                  self._label_cache)
        return sorted(self._heads)

    def commit(self, label: str) -> None:
        """Prime the ordering hook with ``label``'s head and step once."""
        head = self._heads.get(label)
        if head is None:
            raise SimulationError(f"cannot commit {label!r}: not enabled")
        self._chosen = head.sequence
        self.kernel.step()

    def close(self) -> None:
        """Uninstall the ordering hook (kernel returns to default order)."""
        self.kernel.set_ordering(None)

    @property
    def now(self) -> float:
        """The kernel's virtual clock."""
        return self.kernel.now

    def pending_metadata(self) -> List[Tuple[float, int, tuple]]:
        """Scheduling metadata of staged work (fingerprint fodder)."""
        return self.kernel.pending_metadata()


class _Staged:
    """One staged unit of work inside a :class:`ThreadedStepGate`."""

    __slots__ = ("view", "kind", "payload")

    def __init__(self, view: ScheduledEvent, kind: str,
                 payload: tuple) -> None:
        self.view = view
        self.kind = kind  # "env" | "timer" | "internal"
        self.payload = payload


class GatedChannel:
    """A gate-mode channel: staging replaces the forwarder thread.

    Mirrors the DES raw :class:`~repro.network.channel.Channel`'s
    accounting exactly — ``sent`` at :meth:`send`, ``delivered`` (and
    latency) when the gate commits the arrival, envelopes visible in
    ``in_flight`` while staged — so the conservation invariant and the
    cross-backend equivalence suite read identical counters. Delivery to
    a crashed receiver still counts ``delivered`` (the frame reaches the
    dead host's address and falls on the floor there), exactly like the
    DES raw channel.
    """

    def __init__(self, channel_id, system, gate: "ThreadedStepGate") -> None:
        self.id = channel_id
        self._system = system
        self._gate = gate
        from repro.network.channel import ChannelStats  # avoid import cycle

        self.stats = ChannelStats()
        self.sent_by_kind = self.stats.sent_by_kind
        self.failed = False
        # Observability hooks (same surface as ThreadedChannel; the gate
        # never retransmits, so they stay unfired).
        self.on_retransmit: Optional[Callable] = None
        self.on_recovered: Optional[Callable] = None
        self.on_give_up: Optional[Callable] = None
        # DES FIFO-clamp mirrors, guarded by the gate's lock.
        self._last_arrival = 0.0
        self._message_index = 0
        self._in_flight: List = []

    @property
    def in_flight(self) -> List:
        """Envelopes staged on this channel (oldest first)."""
        with self._gate._lock:
            return list(self._in_flight)

    def send(self, kind, payload, clock=None):
        """Emit one message: build the envelope, stage it with the gate."""
        from repro.network.message import Envelope

        envelope = Envelope(
            channel=self.id,
            kind=kind,
            payload=payload,
            send_time=self._system.now,
            seq=self._system.next_message_seq(),
            clock=clock,
        )
        self._gate.stage_delivery(self, envelope)
        return envelope

    # Lifecycle no-ops: there is no forwarder thread to manage.
    def start(self) -> None:
        """No-op (no forwarder thread in gate mode)."""

    def stop(self) -> None:
        """No-op (no forwarder thread in gate mode)."""

    def join(self, timeout: float = 1.0) -> None:
        """No-op (no forwarder thread in gate mode)."""


class ThreadedStepGate(SchedulingGate):
    """Cooperative step gate for the threaded backend.

    Instead of forwarder threads sleeping through latencies and
    ``threading.Timer`` arming wall-clock expirations, gate-mode
    controllers *stage* every delivery, timer, and deferred action here,
    tagged with the same virtual times and tiebreaks the DES backend
    would have used (``FixedLatency(latency)`` arrivals under the FIFO
    clamp, ``now + delay`` timer deadlines, zero-delay internals).

    :meth:`commit` releases exactly one staged head into the target
    process's mailbox — the real thread runs the real handler — then
    blocks on the system's activity turnstile until every consequence of
    that handler (it may stage more work, but staging takes no activity
    credit) has landed. One commit == one atomic handler step, which is
    what makes real-thread interleavings explorable and replayable.

    Thread safety: handlers on different process threads stage
    concurrently during a commit, so all staging mutates under one lock.
    Determinism survives because within-group order never depends on
    cross-thread arrival order — each group's tiebreaks come from a
    single process or channel counter.
    """

    def __init__(self, latency: float = 1.0) -> None:
        self.latency = latency
        self.system = None  # bound by ThreadedSystem.__init__
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._staged: Dict[int, _Staged] = {}
        self._timer_keys: Dict[Tuple[str, str], int] = {}
        self._label_cache: Dict[int, str] = {}
        self._heads: Dict[str, ScheduledEvent] = {}
        self._now = 0.0

    # -- wiring (called by ThreadedSystem) ---------------------------------

    def bind(self, system) -> None:
        """Attach to the owning system (done in its constructor)."""
        if self.system is not None:
            raise SimulationError("gate is already bound to a system")
        self.system = system

    def make_channel(self, channel_id, system) -> GatedChannel:
        """Build the gate-mode channel for one topology edge."""
        return GatedChannel(channel_id, system, self)

    # -- staging (called from process threads and the driver) ---------------

    def stage_delivery(self, channel: GatedChannel, envelope) -> None:
        """Stage one envelope's arrival, DES FIFO clamp and tiebreaks."""
        with self._lock:
            channel.stats.sent += 1
            channel.stats.sent_by_kind[envelope.kind] += 1
            arrival = max(self._now + self.latency,
                          channel._last_arrival + 1e-9)
            channel._last_arrival = arrival
            channel._message_index += 1
            channel._in_flight.append(envelope)
            seq = next(self._seq)
            view = ScheduledEvent(
                seq, arrival, PRIORITY_DELIVERY,
                (str(channel.id), channel._message_index),
            )
            self._staged[seq] = _Staged(view, "env", (channel, envelope))

    def stage_timer(self, controller, name: str, delay: float, payload,
                    generation: int, timer_seq: int) -> None:
        """Stage a timer expiration at ``now + delay`` (DES tiebreaks)."""
        with self._lock:
            self._drop_timer(controller.name, name)
            seq = next(self._seq)
            view = ScheduledEvent(
                seq, self._now + delay, PRIORITY_TIMER,
                (controller.name, name, timer_seq),
            )
            self._staged[seq] = _Staged(
                view, "timer", (controller, name, payload, generation)
            )
            self._timer_keys[(controller.name, name)] = seq

    def cancel_timer(self, process: str, name: str) -> bool:
        """Drop a staged timer. True if one was pending (DES semantics)."""
        with self._lock:
            return self._drop_timer(process, name)

    def cancel_process_timers(self, process: str) -> None:
        """Drop every staged timer of one process (crash teardown)."""
        with self._lock:
            for key in [k for k in self._timer_keys if k[0] == process]:
                self._drop_timer(*key)

    def _drop_timer(self, process: str, name: str) -> bool:
        seq = self._timer_keys.pop((process, name), None)
        if seq is None:
            return False
        self._staged.pop(seq, None)
        self._label_cache.pop(seq, None)
        return True

    def stage_internal(self, label: str, controller,
                       action: Callable[[], None]) -> None:
        """Stage a deferred action at the current instant (zero delay)."""
        self._stage_call(self._now, label, controller, action)

    def stage_fault(self, at_time: float, label: str, controller,
                    action: Callable[[], None]) -> None:
        """Stage a fault-plan action at an absolute virtual time."""
        self._stage_call(at_time, label, controller, action)

    def _stage_call(self, time: float, label: str, controller,
                    action: Callable[[], None]) -> None:
        with self._lock:
            seq = next(self._seq)
            view = ScheduledEvent(
                seq, time, PRIORITY_INTERNAL, (label, controller.name)
            )
            self._staged[seq] = _Staged(view, "internal",
                                        (controller, action))

    # -- the gate verbs -----------------------------------------------------

    def enabled(self) -> List[str]:
        """Group heads of all staged work, as sorted labels."""
        with self._lock:
            views = [entry.view for entry in self._staged.values()]
            self._heads = group_heads(views, self._label_cache)
        return sorted(self._heads)

    def commit(self, label: str) -> None:
        """Release ``label``'s staged head and wait for the turnstile."""
        head = self._heads.get(label)
        if head is None:
            raise SimulationError(f"cannot commit {label!r}: not enabled")
        with self._lock:
            entry = self._staged.pop(head.sequence, None)
            self._label_cache.pop(head.sequence, None)
            if entry is None:  # pragma: no cover - defensive
                raise SimulationError(
                    f"staged entry for {label!r} vanished before commit"
                )
            if entry.view.time > self._now:
                self._now = entry.view.time
        self._release(entry)
        self.system.wait_idle()

    def _release(self, entry: _Staged) -> None:
        """Post one staged unit into its target mailbox, with credit."""
        system = self.system
        if entry.kind == "env":
            channel, envelope = entry.payload
            receiver = system.controller(channel.id.dst)
            with self._lock:
                for index, pending in enumerate(channel._in_flight):
                    if pending is envelope:
                        del channel._in_flight[index]
                        break
                channel.stats.delivered += 1
                channel.stats.total_latency += (
                    self._now - envelope.send_time
                )
            system.note_activity(+1)
            receiver.inbox.put(("env", envelope))
        elif entry.kind == "timer":
            controller, name, payload, generation = entry.payload
            with self._lock:
                self._timer_keys.pop((controller.name, name), None)
            system.note_activity(+1)
            controller.inbox.put(("timer", name, payload, generation))
        else:  # "internal"
            controller, action = entry.payload
            system.note_activity(+1)
            controller.inbox.put(("call", action))

    def close(self) -> None:
        """Drop every staged unit (end of run: nothing else may fire)."""
        with self._lock:
            self._staged.clear()
            self._timer_keys.clear()
            self._label_cache.clear()
            self._heads = {}

    @property
    def now(self) -> float:
        """Virtual clock: the latest committed entry's scheduled time."""
        return self._now

    def pending_metadata(self) -> List[Tuple[float, int, tuple]]:
        """Scheduling metadata of staged work (fingerprint fodder) —
        the gate-mode analogue of the kernel's method of the same name."""
        with self._lock:
            return [
                (e.view.time, e.view.priority, e.view.tiebreak)
                for e in self._staged.values()
            ]


class FrameGate(SchedulingGate):
    """Distributed adapter: a per-channel TCP frame staging buffer.

    The parent-side :class:`~repro.distributed.framegate.FrameStager`
    proxies every user-process channel, parks arriving frames, and hands
    the gate one ``chan:src->dst`` group per non-empty buffer. Committing
    a label forwards that channel's oldest held frame to its real
    destination and waits for the cluster's reaction to drain (a quiet
    window on the proxy — real sockets have no activity counter).

    Unlike the other gates this one only *orders deliveries*: timers and
    internal steps run wall-clock inside the child processes, so the
    enabled set is the frame buffers, and quiescence means "no held
    frames and the quiet window elapsed".
    """

    def __init__(self, stager, settle: float = 0.15) -> None:
        self.stager = stager
        self.settle = settle
        self._steps = 0

    def enabled(self) -> List[str]:
        """One ``chan:`` label per held buffer, after a quiet window."""
        self.stager.wait_quiet(self.settle)
        return sorted(
            f"chan:{channel}" for channel in self.stager.held_channels()
        )

    def commit(self, label: str) -> None:
        """Forward the named channel's oldest held frame."""
        if not label.startswith("chan:"):
            raise SimulationError(f"cannot commit {label!r}: not a channel")
        self.stager.release(label[len("chan:"):])
        self._steps += 1

    def close(self) -> None:
        """Flush every held frame and hand the wire back (pass-through)."""
        self.stager.release_all()

    @property
    def now(self) -> float:
        """Committed-release count (the frame gate has no virtual clock)."""
        return float(self._steps)
