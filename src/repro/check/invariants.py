"""The checker's invariant library: the paper's theorems as predicates.

Each invariant takes the :class:`RunRecord` of one completed (quiesced)
controlled run and returns violations — empty means the property held on
this schedule. The library covers:

``halt_convergence``
    Liveness at quiescence: once the kernel drained with no work left,
    every user process must have halted (a marker flood that stops short
    is §2.2.2's failure — or a broken Halt Routine).
``theorem1_consistency``
    Theorem 1: ``S_h`` is a consistent cut — no received-but-unsent
    messages, exact channel states, bounded frontier knowledge. Delegates
    to the ground-truth oracle :mod:`repro.analysis.consistency`.
``theorem2_equivalence``
    Theorem 2: ``S_h == S_r`` for a C&L snapshot initiated at the same
    local instant on the same interleaving (the runner produces the twin
    by trace replay; this invariant judges the comparison).
``fifo_per_channel``
    §2.1: per channel, the receiver's processed payload sequence is a
    prefix of the sender's sent sequence — no loss, duplication, or
    reordering visible to the application.
``exactly_once_conservation``
    Per-channel message conservation at quiescence: every logical message
    is delivered exactly once or accounted as permanently dropped
    (``sent == delivered + dropped``, nothing in flight). Under
    ``ReliableChannel`` plus injected loss this is the exactly-once
    guarantee the PR-1 retransmission layer promises.
``halting_order_prefix``
    §2.2.4: the path a halt marker carries "describes which processes
    have already been halted" — every (user-process) name on a received
    path must have halted strictly before the receiver, in path order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.consistency import check_cut_consistency
from repro.analysis.equivalence import states_equivalent
from repro.check.scheduler import ChoicePoint
from repro.events.event import EventKind
from repro.runtime.system import System
from repro.snapshot.state import GlobalState
from repro.util.ids import ProcessId


@dataclass(frozen=True)
class Violation:
    """One invariant falsified on one schedule."""

    invariant: str
    details: Tuple[str, ...]

    def describe(self) -> str:
        """Multi-line human rendering: invariant name plus each detail."""
        lines = [f"invariant {self.invariant} violated:"]
        lines += [f"  - {detail}" for detail in self.details]
        return "\n".join(lines)


@dataclass
class RunRecord:
    """Everything one controlled run produced, for the invariants to judge."""

    scenario: str
    mode: str
    #: The quiesced system — DES :class:`System` or a gate-mode
    #: :class:`~repro.runtime.threaded.ThreadedSystem`; invariants read
    #: only the surface the two share (log, channels, controllers).
    system: System
    quiesced: bool
    all_halted: bool
    #: ``S_h`` assembled from the frozen controllers (None unless the run
    #: quiesced with every user process halted).
    halt_state: Optional[GlobalState]
    halt_order: List[ProcessId]
    #: Per halted process, the marker path it halted via (as received).
    halt_paths: Dict[ProcessId, Tuple[ProcessId, ...]]
    #: Twin C&L snapshot state replayed on the same trace (basic mode).
    snapshot_state: Optional[GlobalState] = None
    #: Times the twin replay had to fall back off the trace (0 == aligned).
    twin_divergences: int = 0
    trace: List[str] = field(default_factory=list)
    decisions: List[str] = field(default_factory=list)
    choice_points: List[ChoicePoint] = field(default_factory=list)
    #: Committed scheduler steps (== DES ``kernel.events_executed``; on
    #: other backends, the gate's step count) — reports must not reach
    #: into backend-specific kernels for this.
    events_executed: int = 0
    #: Which substrate ran this schedule ("des" | "threaded").
    backend: str = "des"


InvariantFn = Callable[[RunRecord], List[Violation]]


def halt_convergence(record: RunRecord) -> List[Violation]:
    """Liveness at quiescence: every user process must have halted."""
    if record.all_halted:
        return []
    unhalted = tuple(
        name for name in record.system.user_process_names
        if not record.system.controller(name).halted
    )
    return [Violation(
        "halt_convergence",
        (f"system quiesced with {sorted(unhalted)} never halted "
         f"(halt order so far: {record.halt_order})",),
    )]


def theorem1_consistency(record: RunRecord) -> List[Violation]:
    """Theorem 1: ``S_h`` is a consistent cut (ground-truth oracle)."""
    if record.halt_state is None:
        return []
    report = check_cut_consistency(record.system.log, record.halt_state)
    if report.consistent:
        return []
    return [Violation("theorem1_consistency", tuple(report.violations))]


def theorem2_equivalence(record: RunRecord) -> List[Violation]:
    """Theorem 2: ``S_h == S_r`` against the trace-replayed C&L twin."""
    if record.halt_state is None:
        return []
    details: List[str] = []
    if record.twin_divergences:
        details.append(
            f"snapshot twin diverged from the halting run's trace at "
            f"{record.twin_divergences} step(s) — the runs are no longer "
            "the same execution"
        )
    if record.snapshot_state is None:
        details.append("snapshot twin never completed S_r")
    else:
        report = states_equivalent(record.halt_state, record.snapshot_state)
        if not report.equivalent:
            details.extend(report.differences)
    if not details:
        return []
    return [Violation("theorem2_equivalence", tuple(details))]


def fifo_per_channel(record: RunRecord) -> List[Violation]:
    """§2.1: each receiver's payload sequence prefixes the sender's."""
    sends: Dict[object, List[object]] = {}
    receives: Dict[object, List[object]] = {}
    user = set(record.system.user_process_names)
    for event in record.system.log:
        if event.channel is None:
            continue
        if event.channel.src not in user or event.channel.dst not in user:
            continue
        if event.kind is EventKind.SEND:
            sends.setdefault(event.channel, []).append(_key(event.message))
        elif event.kind is EventKind.RECEIVE:
            receives.setdefault(event.channel, []).append(_key(event.message))
    details = []
    for channel, received in sorted(receives.items(), key=lambda kv: str(kv[0])):
        sent = sends.get(channel, [])
        if received != sent[: len(received)]:
            details.append(
                f"{channel}: received sequence {received!r} is not a prefix "
                f"of sent sequence {sent!r}"
            )
    if not details:
        return []
    return [Violation("fifo_per_channel", tuple(details))]


def exactly_once_conservation(record: RunRecord) -> List[Violation]:
    """Conservation at quiescence: ``sent == delivered + dropped``."""
    details = []
    user = set(record.system.user_process_names)
    for channel in record.system.channels():
        if channel.id.src not in user or channel.id.dst not in user:
            continue
        stats = channel.stats
        if stats.sent != stats.delivered + stats.dropped:
            details.append(
                f"{channel.id}: sent={stats.sent} != delivered="
                f"{stats.delivered} + dropped={stats.dropped}"
            )
        if channel.in_flight:
            details.append(
                f"{channel.id}: {len(channel.in_flight)} message(s) still "
                "in flight at quiescence"
            )
    if not details:
        return []
    return [Violation("exactly_once_conservation", tuple(details))]


def halting_order_prefix(record: RunRecord) -> List[Violation]:
    """§2.2.4: received marker paths name already-halted processes."""
    position = {name: i for i, name in enumerate(record.halt_order)}
    user = set(record.system.user_process_names)
    details = []
    for process, path in sorted(record.halt_paths.items()):
        if process not in position:
            details.append(
                f"{process} reports a halt path {path!r} but never appears "
                "in the halt order"
            )
            continue
        own = position[process]
        previous = -1
        # Debugger processes relay markers but never halt (§2.2.3); they
        # legitimately appear on paths and are skipped here.
        for hop in (h for h in path if h in user):
            if hop not in position or position[hop] >= own:
                details.append(
                    f"{process} halted via path {path!r}, but {hop} had not "
                    f"halted before it (halt order: {record.halt_order})"
                )
                break
            if position[hop] < previous:
                details.append(
                    f"{process} halted via path {path!r}, whose hops are "
                    f"out of halting order ({record.halt_order})"
                )
                break
            previous = position[hop]
    if not details:
        return []
    return [Violation("halting_order_prefix", tuple(details))]


#: Registry the scenarios pick from, evaluation in this order.
INVARIANTS: Dict[str, InvariantFn] = {
    "halt_convergence": halt_convergence,
    "theorem1_consistency": theorem1_consistency,
    "theorem2_equivalence": theorem2_equivalence,
    "fifo_per_channel": fifo_per_channel,
    "exactly_once_conservation": exactly_once_conservation,
    "halting_order_prefix": halting_order_prefix,
}


def evaluate(record: RunRecord, names: Tuple[str, ...]) -> List[Violation]:
    """Run the named invariants against one record, in registry order."""
    found: List[Violation] = []
    for name in names:
        found.extend(INVARIANTS[name](record))
    return found


def _key(value: object) -> object:
    if isinstance(value, dict):
        return tuple(sorted((k, _key(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_key(v) for v in value)
    return value
