"""Replayable counterexample artifacts.

When exploration finds a violation and ddmin has shrunk it, the checker
serializes everything needed to re-execute the exact run later — scenario
name, seed, mutation, and the minimized decision list — as a small JSON
file. ``repro check --replay <file>`` rebuilds the scenario from the
registry and re-runs the scripted schedule; because controlled runs are
deterministic functions of the decision list, the replay either reproduces
the recorded invariant violation or proves the artifact stale (e.g. the
scenario changed underneath it).

Encoding reuses :mod:`repro.util.codec`'s exact form so decisions stay
tuples of strings on the way back in; the file is stable-keyed and
indented for diffing in bug reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.util.codec import from_jsonable, to_jsonable
from repro.util.errors import CodecError

#: Bumped on incompatible artifact layout changes.
FORMAT_VERSION = 1
_KIND = "repro-check-schedule"


@dataclass(frozen=True)
class ScheduleArtifact:
    """A minimized, replayable violating schedule."""

    scenario: str
    seed: int
    decisions: Tuple[str, ...]
    invariant: str
    details: Tuple[str, ...]
    mutation: Optional[str] = None
    #: Substrate the violation was found (and must be replayed) on.
    #: Pre-gate artifacts carry no key and read back as "des".
    backend: str = "des"
    #: Path of the recorded :class:`~repro.record.store.TraceArtifact`
    #: this schedule perturbs, for trace scenarios (``--from-trace``) —
    #: replay rebuilds the scenario from the trace file, not the registry.
    from_trace: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to the stable-keyed JSON layout ``save_artifact``
        writes."""
        return {
            "format": FORMAT_VERSION,
            "kind": _KIND,
            "scenario": self.scenario,
            "seed": self.seed,
            "mutation": self.mutation,
            "backend": self.backend,
            "from_trace": self.from_trace,
            "decisions": to_jsonable(self.decisions),
            "violation": {
                "invariant": self.invariant,
                "details": to_jsonable(self.details),
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScheduleArtifact":
        """Decode a ``to_dict`` payload, checking kind and format version."""
        if data.get("kind") != _KIND:
            raise CodecError(
                f"not a schedule artifact (kind={data.get('kind')!r})"
            )
        if data.get("format") != FORMAT_VERSION:
            raise CodecError(
                f"unsupported artifact format {data.get('format')!r} "
                f"(this build reads {FORMAT_VERSION})"
            )
        violation = data["violation"]
        return cls(
            scenario=data["scenario"],
            seed=int(data["seed"]),
            mutation=data.get("mutation"),
            backend=data.get("backend", "des"),
            from_trace=data.get("from_trace"),
            decisions=tuple(from_jsonable(data["decisions"])),
            invariant=violation["invariant"],
            details=tuple(from_jsonable(violation["details"])),
        )


def save_artifact(artifact: ScheduleArtifact, path: str) -> None:
    """Write the artifact to ``path`` as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact.to_dict(), handle, sort_keys=True, indent=2)
        handle.write("\n")


def load_artifact(path: str) -> ScheduleArtifact:
    """Read an artifact written by :func:`save_artifact`."""
    with open(path, "r", encoding="utf-8") as handle:
        return ScheduleArtifact.from_dict(json.load(handle))
