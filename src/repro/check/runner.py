"""One controlled run end to end: build, schedule, halt, judge.

A :class:`Scenario` names a workload, a halt-initiation point (the same
local-condition trigger the E2 harness uses: "after process X's N-th
event"), and the invariants that must hold. :func:`run_schedule` executes
exactly one interleaving of it — the one the given strategy picks — and
returns a :class:`ScheduleResult` whose report is canonical JSON, so the
same schedule always yields byte-identical output (replay determinism).

Two modes:

``basic``
    The §2.2.1 algorithm via :class:`HaltingCoordinator` on a strongly
    connected workload. These runs get the full treatment including the
    Theorem-2 twin: a second system with a :class:`SnapshotCoordinator`
    replays the halting run's *trace* label for label, so both runs are
    the same execution up to the cut and ``S_h == S_r`` is checkable.
``session``
    The §2.2.3 extended model via :class:`DebugSession` (debugger process
    ``d``, acyclic topologies like Fig. 2's pipeline). Halting initiates
    spontaneously at a user process, exactly like a local breakpoint
    firing. No twin here: client halt notifications give the two runs
    different control traffic, so trace alignment does not apply.

All scenarios run under ``FixedLatency(1.0)``: with the controlled
scheduler choosing firing order, latency is a constant and interleavings
are purely decision-driven.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.check.gate import DriveResult, KernelGate, ThreadedStepGate, drive
from repro.check.invariants import RunRecord, Violation, evaluate
from repro.check.scheduler import (
    ChoicePoint,
    ScriptedStrategy,
    Strategy,
    TraceReplayStrategy,
)
from repro.debugger.session import DebugSession
from repro.experiments.harness import BuildResult, install_trigger
from repro.faults.plan import FaultPlan
from repro.halting.algorithm import HaltingAgent, HaltingCoordinator
from repro.network.latency import FixedLatency
from repro.runtime.state_capture import ProcessStateSnapshot
from repro.runtime.system import System
from repro.runtime.threaded import ThreadedSystem
from repro.snapshot.chandy_lamport import SnapshotCoordinator
from repro.snapshot.state import ChannelState, GlobalState
from repro.trace.serialize import state_to_dict
from repro.util.ids import ChannelId, ProcessId
from repro.workloads import pipeline, token_ring


@dataclass(frozen=True)
class Scenario:
    """A named, fixed configuration the explorer enumerates schedules of."""

    name: str
    description: str
    mode: str  # "basic" | "session" | "trace"
    builder: Callable[[], BuildResult]
    trigger_process: ProcessId
    trigger_event: int
    invariants: Tuple[str, ...]
    reliable: bool = False
    fault_plan: Optional[FaultPlan] = None
    max_steps: int = 20_000
    seed: int = 0
    #: Run the Theorem-2 snapshot twin (basic, fault-free scenarios only).
    #: The twin always replays on the DES, whatever backend ran the
    #: halting run — the shared label space makes the trace portable.
    twin: bool = False
    #: Substrates this scenario explores on. Session mode needs the DES
    #: debugger; the reliable ring's retransmission clock is wall time.
    backends: Tuple[str, ...] = ("des",)
    #: Distributed-backend identity: the cluster workload registry key
    #: and its build parameters (required when ``"distributed"`` is in
    #: ``backends`` — real-socket runs rebuild the program from these).
    workload: Optional[str] = None
    workload_params: Optional[Dict[str, object]] = None
    #: Trace-mode payload: the :class:`~repro.record.store.TraceArtifact`
    #: this scenario's runs replay around (``mode == "trace"`` only).
    trace: Optional[object] = None


#: Invariants judgeable from debugger-protocol state reports alone — the
#: distributed backend has no DES event log to consult, so its
#: :class:`~repro.check.invariants.RunRecord` is assembled from reports
#: and per-host channel counters and only these invariants apply.
STATE_REPORT_INVARIANTS: Tuple[str, ...] = (
    "halt_convergence",
    "exactly_once_conservation",
    "halting_order_prefix",
)


@dataclass
class ScheduleResult:
    """One schedule executed and judged."""

    record: RunRecord
    violations: List[Violation] = field(default_factory=list)
    #: True when the step budget ran out before quiescence — the run is
    #: unjudgeable, neither a pass nor a violation.
    inconclusive: bool = False

    @property
    def violated(self) -> bool:
        """True when at least one invariant was falsified."""
        return bool(self.violations)

    def report_dict(self) -> Dict[str, object]:
        """Canonical, JSON-ready report of this run (stable key order)."""
        record = self.record
        return {
            "scenario": record.scenario,
            "mode": record.mode,
            "backend": record.backend,
            "quiesced": record.quiesced,
            "inconclusive": self.inconclusive,
            "all_halted": record.all_halted,
            "halt_order": list(record.halt_order),
            "halt_paths": {
                process: list(path)
                for process, path in sorted(record.halt_paths.items())
            },
            "decisions": list(record.decisions),
            "trace_length": len(record.trace),
            "events_executed": record.events_executed,
            "message_totals": record.system.message_totals(),
            "halt_state": (
                state_to_dict(record.halt_state)
                if record.halt_state is not None else None
            ),
            "violations": [
                {"invariant": v.invariant, "details": list(v.details)}
                for v in self.violations
            ],
        }

    def report_json(self) -> str:
        """``report_dict`` serialized with stable key order."""
        return json.dumps(self.report_dict(), sort_keys=True)


def run_schedule(
    scenario: Scenario,
    strategy: Optional[Strategy] = None,
    agent_factory: Optional[Callable[..., HaltingAgent]] = None,
    on_branch_point: Optional[Callable[[System], None]] = None,
    backend: str = "des",
) -> ScheduleResult:
    """Execute one interleaving of ``scenario`` and evaluate its invariants.

    ``backend`` picks the substrate: ``"des"`` drives the simulation
    kernel through a :class:`~repro.check.gate.KernelGate`;
    ``"threaded"`` runs real OS threads behind a
    :class:`~repro.check.gate.ThreadedStepGate`. The strategy, recorded
    decisions, invariant verdicts, and replay artifacts are
    backend-neutral.

    ``on_branch_point`` (scripted strategies only) is called with the live
    system at the first choice point after the script is exhausted — the
    state a DFS node's unexplored subtree grows from. The parallel
    explorer fingerprints it there for equivalence-class dedup.
    """
    if backend not in scenario.backends:
        raise ValueError(
            f"scenario {scenario.name!r} does not support backend "
            f"{backend!r} (supported: {scenario.backends})"
        )
    if backend == "distributed":
        record = _run_distributed(scenario, strategy, agent_factory)
        judged = tuple(
            n for n in scenario.invariants if n in STATE_REPORT_INVARIANTS
        )
        return _judge(record, judged)
    if scenario.mode == "basic":
        record = _run_basic(scenario, strategy, agent_factory,
                            on_branch_point, backend)
    elif scenario.mode == "session":
        record = _run_session(scenario, strategy, agent_factory,
                              on_branch_point)
    elif scenario.mode == "trace":
        from repro.record.bridge import run_trace_record

        record = run_trace_record(scenario, strategy, agent_factory,
                                  on_branch_point)
    else:
        raise ValueError(f"unknown scenario mode {scenario.mode!r}")
    return _judge(record, scenario.invariants)


def _judge(record: RunRecord, invariants: Tuple[str, ...]) -> ScheduleResult:
    """Verdict for one completed run: inconclusive if it never drained,
    else the invariant evaluation. Shared by :func:`run_schedule` and the
    worker-resident engine so both paths judge identically."""
    if not record.quiesced:
        return ScheduleResult(record=record, inconclusive=True)
    return ScheduleResult(
        record=record, violations=evaluate(record, invariants)
    )


# -- basic mode (HaltingCoordinator, strongly connected) -----------------------


def _build_system(scenario: Scenario) -> System:
    topology, processes = scenario.builder()
    return System(
        topology,
        processes,
        seed=scenario.seed,
        latency=FixedLatency(1.0),
        fault_plan=scenario.fault_plan,
        reliable=scenario.reliable,
    )


def _build_gated(scenario: Scenario, backend: str):
    """Build ``(system, gate)`` for one backend.

    Both substrates get the same unit latency: under a controlled
    scheduler, latency only shapes the *virtual timestamps* that order
    group heads, so equal constants give the two backends identical
    enabled sets step for step.
    """
    if backend == "des":
        system = _build_system(scenario)
        return system, KernelGate(system.kernel)
    if backend == "threaded":
        topology, processes = scenario.builder()
        gate = ThreadedStepGate(latency=1.0)
        system = ThreadedSystem(
            topology,
            processes,
            seed=scenario.seed,
            fault_plan=scenario.fault_plan,
            gate=gate,
        )
        return system, gate
    raise ValueError(f"unknown backend {backend!r}")


def _start_gated(system, backend: str) -> None:
    """Start the system and wait until every ``on_start`` has landed."""
    if not getattr(system, "_started", False):
        system.start()
    if backend == "threaded":
        system.wait_idle()


def _wire_branch_hook(
    strategy: Optional[Strategy],
    system: System,
    on_branch_point: Optional[Callable[[System], None]],
) -> None:
    """Attach the branch-point callback to a scripted strategy, if any."""
    if on_branch_point is not None and isinstance(strategy, ScriptedStrategy):
        strategy.on_exhausted = lambda: on_branch_point(system)


def _run_basic(
    scenario: Scenario,
    strategy: Optional[Strategy],
    agent_factory: Optional[Callable[..., HaltingAgent]],
    on_branch_point: Optional[Callable[[System], None]] = None,
    backend: str = "des",
) -> RunRecord:
    system, gate = _build_gated(scenario, backend)
    _wire_branch_hook(strategy, system, on_branch_point)
    coordinator = HaltingCoordinator(system, agent_factory=agent_factory)
    install_trigger(
        system, scenario.trigger_process, scenario.trigger_event,
        lambda: coordinator.initiate([scenario.trigger_process]),
    )
    try:
        _start_gated(system, backend)
        result = drive(gate, strategy, max_steps=scenario.max_steps)
    finally:
        gate.close()
        if backend == "threaded":
            system.shutdown()
    record = _assemble_basic_record(scenario, system, coordinator, result,
                                    backend)
    if scenario.twin and record.halt_state is not None:
        record.snapshot_state, record.twin_divergences = _run_snapshot_twin(
            scenario, record.trace
        )
    return record


def _assemble_basic_record(
    scenario: Scenario,
    system: System,
    coordinator: HaltingCoordinator,
    result,
    backend: str,
) -> RunRecord:
    """Fold one driven run into a :class:`RunRecord` (twin not yet run).

    Shared by the one-shot path above and the worker-resident engine,
    which drives the same world many times and assembles each run here.
    """
    all_halted = system.all_user_processes_halted()
    halt_state = None
    if result.quiesced and all_halted:
        halt_state = coordinator.collect()
    return RunRecord(
        scenario=scenario.name,
        mode=scenario.mode,
        system=system,
        quiesced=result.quiesced,
        all_halted=all_halted,
        halt_state=halt_state,
        halt_order=list(coordinator.halt_order),
        halt_paths=dict(coordinator.halting_order_report()),
        trace=result.trace,
        decisions=result.decisions,
        choice_points=result.choice_points,
        events_executed=result.steps,
        backend=backend,
    )


def _run_snapshot_twin(
    scenario: Scenario, trace: List[str]
) -> Tuple[Optional[GlobalState], int]:
    """The Theorem-2 half: same build, same seed, same interleaving (by
    trace replay), but the trigger records a C&L snapshot instead of
    halting. Up to each process's record point the two runs are the same
    execution, which is precisely the premise of ``S_h == S_r``. The twin
    always replays on the DES: the label space is backend-neutral, so a
    trace recorded behind the threaded step gate aligns here too."""
    system = _build_system(scenario)
    gate = KernelGate(system.kernel)
    coordinator = SnapshotCoordinator(system)
    install_trigger(
        system, scenario.trigger_process, scenario.trigger_event,
        lambda: coordinator.initiate([scenario.trigger_process]),
    )
    _start_gated(system, "des")
    verdict = _twin_verdict(gate, coordinator, trace,
                            max_steps=scenario.max_steps * 2)
    gate.close()
    return verdict


def _twin_verdict(
    gate: KernelGate,
    coordinator: SnapshotCoordinator,
    trace: List[str],
    max_steps: int,
) -> Tuple[Optional[GlobalState], int]:
    """Replay ``trace`` against a snapshot-coordinated world and report
    ``(S_r, divergences)``.

    The run stops as soon as the trace is consumed *and* the snapshot is
    complete: recorded process/channel states are frozen at their record
    points and divergences only accrue while trace labels remain, so
    nothing after that step can change the verdict. (The snapshot run
    keeps executing after the cut — nothing halts — hence the headroom
    budget callers pass.)
    """
    replay = TraceReplayStrategy(trace)
    drive(
        gate, replay, max_steps=max_steps,
        stop_when=lambda: replay.exhausted and coordinator.is_complete(),
    )
    state = coordinator.collect() if coordinator.is_complete() else None
    return state, replay.divergences


# -- session mode (DebugSession, extended §2.2.3 model) ------------------------


def _run_session(
    scenario: Scenario,
    strategy: Optional[Strategy],
    agent_factory: Optional[Callable[..., HaltingAgent]],
    on_branch_point: Optional[Callable[[System], None]] = None,
) -> RunRecord:
    if agent_factory is not None:
        raise ValueError(
            "mutations are injected via HaltingCoordinator and only apply "
            "to basic-mode scenarios"
        )
    topology, processes = scenario.builder()
    session = DebugSession(
        topology, processes, seed=scenario.seed, latency=FixedLatency(1.0)
    )
    system = session.system
    _wire_branch_hook(strategy, system, on_branch_point)
    gate = KernelGate(system.kernel)

    halt_order: List[ProcessId] = []
    agents = session._halting_agents
    for name in system.user_process_names:
        agents[name].notify_on_halt(
            lambda agent: halt_order.append(agent.controller.name)
        )

    trigger_agent = agents[scenario.trigger_process]

    def initiate() -> None:
        # Spontaneous local initiation (a breakpoint fired here, §2.2.3).
        if not trigger_agent.controller.halted:
            trigger_agent.initiate()

    install_trigger(
        system, scenario.trigger_process, scenario.trigger_event, initiate
    )
    _start_gated(system, "des")
    result = drive(gate, strategy, max_steps=scenario.max_steps)
    gate.close()
    return _assemble_session_record(scenario, system, agents, halt_order,
                                    result)


def _assemble_session_record(
    scenario: Scenario,
    system: System,
    agents: Dict[ProcessId, HaltingAgent],
    halt_order: List[ProcessId],
    result,
) -> RunRecord:
    """Fold one driven session run into a :class:`RunRecord`. Shared by
    the one-shot path and the worker-resident engine."""
    all_halted = system.all_user_processes_halted()
    halt_state = None
    if result.quiesced and all_halted:
        halt_state = _collect_session_halt(system, agents, halt_order)
    halt_paths = {
        name: agents[name].halted_via.path
        for name in system.user_process_names
        if agents[name].halted_via is not None
    }
    return RunRecord(
        scenario=scenario.name,
        mode=scenario.mode,
        system=system,
        quiesced=result.quiesced,
        all_halted=all_halted,
        halt_state=halt_state,
        halt_order=list(halt_order),
        halt_paths=halt_paths,
        trace=result.trace,
        decisions=result.decisions,
        choice_points=result.choice_points,
        events_executed=result.steps,
        backend="des",
    )


def _collect_session_halt(
    system: System,
    agents: Dict[ProcessId, HaltingAgent],
    halt_order: List[ProcessId],
) -> GlobalState:
    """Assemble ``S_h`` from the frozen controllers, debugger excluded —
    the same assembly :meth:`HaltingCoordinator.collect` performs for the
    basic algorithm (halt buffers are the channel states, Lemma 2.2)."""
    processes: Dict[ProcessId, ProcessStateSnapshot] = {}
    channels: Dict[ChannelId, ChannelState] = {}
    generation = 0
    for name in system.user_process_names:
        controller = system.controller(name)
        assert controller.halted_snapshot is not None
        processes[name] = controller.halted_snapshot
        generation = max(generation, agents[name].last_halt_id)
        for channel_id, envelopes in controller.halt_buffers.items():
            channels[channel_id] = ChannelState(
                channel=channel_id,
                messages=tuple(env.payload for env in envelopes),
                complete=channel_id in controller.closed_channels,
            )
    return GlobalState(
        origin="halting",
        processes=processes,
        channels=channels,
        generation=generation,
        meta={
            "halt_order": list(halt_order),
            "clock_frame": list(system.clock_frame.order),
        },
    )


# -- distributed backend (real OS processes behind the frame gate) -----------


class _StubController:
    """The two controller flags the state-report invariants read."""

    __slots__ = ("halted", "crashed")

    def __init__(self, halted: bool) -> None:
        self.halted = halted
        self.crashed = False


class _StubChannel:
    """One user channel's merged cross-host accounting."""

    __slots__ = ("id", "stats", "in_flight")

    def __init__(self, channel_id: ChannelId, stats) -> None:
        self.id = channel_id
        self.stats = stats
        #: Quiescence means the wire drained; the gate flushed every held
        #: frame before the counters were collected.
        self.in_flight: List[object] = []


class _StubStats:
    __slots__ = ("sent", "delivered", "dropped")

    def __init__(self, sent: int, delivered: int, dropped: int) -> None:
        self.sent = sent
        self.delivered = delivered
        self.dropped = dropped


class _ClusterRunView:
    """The ``RunRecord.system`` surface, assembled from state reports.

    A distributed run has no single live ``System`` to hand the invariant
    library — the cluster is gone by the time the record is judged. This
    view carries exactly what the :data:`STATE_REPORT_INVARIANTS` read:
    halt flags per process, merged per-channel counters (each endpoint's
    final ``stats`` frame reports its own side; the merge takes the
    maximum, since senders count ``sent`` and receivers ``delivered``),
    and cluster-wide message totals.
    """

    def __init__(
        self,
        user_names: Tuple[ProcessId, ...],
        halted: set,
        channel_stats: Dict[str, Dict[str, int]],
        totals: Dict[str, int],
    ) -> None:
        self.user_process_names = tuple(user_names)
        self._halted = set(halted)
        self._channels = [
            _StubChannel(
                ChannelId.parse(text),
                _StubStats(
                    int(stats.get("sent", 0)),
                    int(stats.get("delivered", 0)),
                    int(stats.get("dropped", 0)),
                ),
            )
            for text, stats in sorted(channel_stats.items())
        ]
        self._totals = dict(totals)
        #: No DES event log exists; log-reading invariants are filtered
        #: out before evaluation (see :data:`STATE_REPORT_INVARIANTS`).
        self.log: Tuple[object, ...] = ()

    def controller(self, name: ProcessId) -> _StubController:
        return _StubController(name in self._halted)

    def channels(self) -> List[_StubChannel]:
        return list(self._channels)

    def message_totals(self) -> Dict[str, int]:
        return dict(self._totals)


def _run_distributed(
    scenario: Scenario,
    strategy: Optional[Strategy],
    agent_factory: Optional[Callable[..., HaltingAgent]],
) -> RunRecord:
    """One gated schedule of ``scenario`` on a real-socket cluster.

    The cluster runs behind a :class:`~repro.check.gate.FrameGate`; the
    strategy orders user-channel frame deliveries exactly as it orders
    DES deliveries (control traffic to/from the debugger rides real,
    unstaged sockets). The halt is debugger-initiated after
    ``trigger_event`` committed releases — the frame gate cannot see
    process-local event counts, so the trigger is expressed in gate steps.
    Quiescence means the halt converged and every staged frame drained;
    the record is then assembled from protocol state reports and each
    host's final channel counters.
    """
    if agent_factory is not None:
        raise ValueError(
            "mutations run inside child OS processes the parent cannot "
            "reach — the distributed backend only runs stock agents"
        )
    if scenario.workload is None:
        raise ValueError(
            f"scenario {scenario.name!r} declares the distributed backend "
            "but names no workload"
        )
    import time as _time

    from repro.check.gate import FrameGate
    from repro.check.scheduler import DefaultStrategy
    from repro.distributed.framegate import FrameStager
    from repro.distributed.session import DistributedDebugSession

    strategy = strategy or DefaultStrategy()
    stager = FrameStager()
    gate = FrameGate(stager, settle=0.2)
    session = DistributedDebugSession(
        scenario.workload,
        dict(scenario.workload_params or {}),
        seed=scenario.seed,
        frame_stager=stager,
    )
    result = DriveResult()
    halt_started = False
    halt_state: Optional[GlobalState] = None
    halt_order: List[ProcessId] = []
    halt_paths: Dict[ProcessId, Tuple[ProcessId, ...]] = {}
    converged = False
    try:
        session.start()
        names = set(session.spec.user_names)

        def halt_done() -> bool:
            generation = session._halting.last_halt_id
            noted = {
                n.process
                for n in session.agent.halt_notifications
                if n.halt_id == generation
            }
            return names <= noted

        deadline = _time.monotonic() + 60.0
        while result.steps < scenario.max_steps:
            if _time.monotonic() >= deadline:
                break
            if not halt_started and result.steps >= scenario.trigger_event:
                session.halt()
                halt_started = True
            labels = gate.enabled()
            if not labels:
                if halt_started and halt_done():
                    converged = True
                    result.quiesced = True
                    break
                _time.sleep(0.02)
                continue
            chosen = strategy.on_step(labels)
            if chosen not in labels:
                chosen = labels[0]
            if len(labels) > 1:
                result.choice_points.append(
                    ChoicePoint(len(result.trace), tuple(labels), chosen)
                )
                result.decisions.append(chosen)
            result.trace.append(chosen)
            gate.commit(chosen)
            result.steps += 1
        gate.close()
        if converged:
            halt_state = session.collect_global_state(timeout=10.0)
            generation = session._halting.last_halt_id
            for note in session.agent.halting_order():
                if note.halt_id != generation:
                    continue
                halt_order.append(note.process)
                path = tuple(note.path)
                # Notification paths end with the process's own name;
                # the invariant expects the as-received marker path.
                if path and path[-1] == note.process:
                    path = path[:-1]
                halt_paths[note.process] = path
    finally:
        session.shutdown()

    # Merge each endpoint's final counters: senders report ``sent``,
    # receivers ``delivered``; max() composes the two half-views.
    merged: Dict[str, Dict[str, int]] = {}
    user = set(session.spec.user_names)
    for text in session.spec.channels:
        channel_id = ChannelId.parse(text)
        if channel_id.src in user and channel_id.dst in user:
            merged[text] = {"sent": 0, "delivered": 0, "dropped": 0}
    for stats in session.host_stats.values():
        for text, counters in stats.get("channels", {}).items():
            if text not in merged:
                continue
            for key in ("sent", "delivered", "dropped"):
                merged[text][key] = max(
                    merged[text][key], int(counters.get(key, 0))
                )
    view = _ClusterRunView(
        user_names=tuple(session.spec.user_names),
        halted=set(halt_order),
        channel_stats=merged,
        totals=session.cluster_message_totals(),
    )
    return RunRecord(
        scenario=scenario.name,
        mode=scenario.mode,
        system=view,
        quiesced=result.quiesced,
        all_halted=converged and set(halt_order) >= set(view.user_process_names),
        halt_state=halt_state,
        halt_order=halt_order,
        halt_paths=halt_paths,
        trace=result.trace,
        decisions=result.decisions,
        choice_points=result.choice_points,
        events_executed=result.steps,
        backend="distributed",
    )


# -- the scenario registry ---------------------------------------------------


def _token_ring_scenario() -> Scenario:
    return Scenario(
        name="token_ring",
        description="token_ring(4) under the basic §2.2.1 algorithm, "
                    "with the Theorem-2 snapshot twin",
        mode="basic",
        builder=lambda: token_ring.build(n=4, max_hops=24),
        trigger_process="p1",
        trigger_event=6,
        invariants=(
            "halt_convergence",
            "theorem1_consistency",
            "theorem2_equivalence",
            "fifo_per_channel",
            "exactly_once_conservation",
            "halting_order_prefix",
        ),
        twin=True,
        backends=("des", "threaded"),
    )


def _pipeline_scenario() -> Scenario:
    return Scenario(
        name="pipeline",
        description="Fig. 2 producer->stages->consumer under the extended "
                    "debugger model (acyclic: the basic algorithm cannot "
                    "halt it, §2.2.2)",
        mode="session",
        builder=lambda: pipeline.build(stages=2, items=12),
        trigger_process="stage1",
        trigger_event=6,
        invariants=(
            "halt_convergence",
            "theorem1_consistency",
            "fifo_per_channel",
            "exactly_once_conservation",
            "halting_order_prefix",
        ),
    )


def _token_ring_reliable_scenario() -> Scenario:
    return Scenario(
        name="token_ring_reliable",
        description="token_ring(3) over ReliableChannel with injected frame "
                    "loss — exactly-once despite a lossy wire",
        mode="basic",
        builder=lambda: token_ring.build(n=3, max_hops=16),
        trigger_process="p1",
        trigger_event=6,
        invariants=(
            "halt_convergence",
            "theorem1_consistency",
            "fifo_per_channel",
            "exactly_once_conservation",
            "halting_order_prefix",
        ),
        reliable=True,
        fault_plan=FaultPlan.lossy(0.15, seed=7),
        max_steps=60_000,
    )


def _token_ring_live_scenario() -> Scenario:
    return Scenario(
        name="token_ring_live",
        description="token_ring(3) on the distributed backend: a real-"
                    "socket cluster behind the frame gate, judged from "
                    "protocol state reports (DES runs use the same build)",
        mode="session",
        builder=lambda: token_ring.build(
            n=3, max_hops=100_000, hold_time=0.05
        ),
        trigger_process="p1",
        trigger_event=6,
        invariants=(
            "halt_convergence",
            "theorem1_consistency",
            "fifo_per_channel",
            "exactly_once_conservation",
            "halting_order_prefix",
        ),
        # A distributed schedule is slow (every commit waits out a real
        # quiet window on the proxy); bound the run by releases, not by
        # the DES-scale default.
        max_steps=400,
        backends=("des", "distributed"),
        workload="token_ring",
        workload_params={"n": 3, "max_hops": 100_000, "hold_time": 0.05},
    )


def scenarios() -> Dict[str, Scenario]:
    """Name → scenario, rebuilt fresh on every call (scenarios are cheap
    and immutable; rebuilding avoids shared-registry mutation hazards)."""
    registry = {}
    for factory in (
        _token_ring_scenario,
        _pipeline_scenario,
        _token_ring_reliable_scenario,
        _token_ring_live_scenario,
    ):
        scenario = factory()
        registry[scenario.name] = scenario
    return registry
