"""Delta-debugging a violating schedule to a 1-minimal decision sequence.

A violating schedule found by exploration can carry dozens of incidental
decisions. Classic ddmin (Zeller & Hildebrandt) shrinks the decision list
while preserving *the same invariant violation*: the test oracle re-runs
the scenario under :class:`~repro.check.scheduler.ScriptedStrategy` with
the candidate subsequence and checks that the original invariant still
fails. Because controlled runs are fully deterministic functions of the
decision list, the oracle is a pure predicate and ddmin's 1-minimality
guarantee holds: the result still violates, and removing any single
remaining decision makes the violation disappear.

An empty minimum is meaningful, not degenerate: it says the canonical
schedule already violates — the bug needs no adversarial interleaving.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.check.runner import Scenario, run_schedule
from repro.check.scheduler import ScriptedStrategy
from repro.halting.algorithm import HaltingAgent


def schedule_violates(
    scenario: Scenario,
    decisions: Sequence[str],
    invariant: str,
    agent_factory: Optional[Callable[..., HaltingAgent]] = None,
    backend: str = "des",
) -> bool:
    """Does replaying ``decisions`` on ``backend`` still violate
    ``invariant``?"""
    result = run_schedule(scenario, ScriptedStrategy(decisions), agent_factory,
                          backend=backend)
    return any(v.invariant == invariant for v in result.violations)


def minimize_schedule(
    scenario: Scenario,
    decisions: Sequence[str],
    invariant: str,
    agent_factory: Optional[Callable[..., HaltingAgent]] = None,
    backend: str = "des",
) -> List[str]:
    """Shrink ``decisions`` to a 1-minimal subsequence violating ``invariant``.

    ``decisions`` must itself violate (the caller found it by exploring).
    The oracle replays on the same ``backend`` the violation was found on,
    so 1-minimality is judged against the substrate that exhibits the bug.
    """

    def violates(candidate: Sequence[str]) -> bool:
        return schedule_violates(scenario, candidate, invariant,
                                 agent_factory, backend=backend)

    return ddmin(list(decisions), violates)


def ddmin(
    items: List[str], violates: Callable[[Sequence[str]], bool]
) -> List[str]:
    """Classic ddmin over subsequences; ``violates(items)`` must hold."""
    if violates([]):
        return []
    granularity = 2
    while len(items) >= 2:
        chunks = _split(items, granularity)
        reduced = False
        # Try each chunk alone — a much smaller reproducer in one step.
        for chunk in chunks:
            if violates(chunk):
                items, granularity, reduced = chunk, 2, True
                break
        if not reduced:
            # Try removing each chunk (its complement).
            for index in range(len(chunks)):
                complement = [
                    item
                    for j, chunk in enumerate(chunks)
                    if j != index
                    for item in chunk
                ]
                if violates(complement):
                    items = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(items):
                break  # 1-minimal: no single decision can be removed.
            granularity = min(len(items), granularity * 2)
    return items


def _split(items: List[str], pieces: int) -> List[List[str]]:
    """Split into ``pieces`` contiguous chunks, sizes as even as possible."""
    chunks: List[List[str]] = []
    start = 0
    for i in range(pieces):
        end = start + (len(items) - start) // (pieces - i)
        if end > start:
            chunks.append(items[start:end])
        start = end
    return chunks
