"""``python -m repro check`` — explore schedules, minimize, replay.

Usage::

    python -m repro check                       # all scenarios, default budget
    python -m repro check token_ring --budget 500
    python -m repro check --backend threaded    # model-check real threads
    python -m repro check --mutate late-halt    # inject a broken agent
    python -m repro check --replay artifact.json
    python -m repro check --from-trace trace.json --radius 2
    python -m repro check --list --backend distributed

Options::

    --budget N      max schedules per scenario (default 200)
    --seed N        base seed for the random-walk phase (default 0)
    --dfs-depth N   flip choice points with index < N in the DFS phase
                    (default 10)
    --backend B     substrate to execute schedules on: ``des`` (default),
                    ``threaded``, or ``distributed``. Non-``des`` backends
                    run only the scenarios that declare support for them;
                    the rest are skipped with a note (``token_ring_live``
                    declares ``distributed``: each schedule drives a real
                    socket cluster through the frame gate)
    --from-trace P  seed exploration from a recorded trace artifact
                    (``python -m repro record``): replay it in the DES,
                    judge fidelity, then search the schedules within
                    ``--radius`` adjacent swaps of it plus trace-biased
                    walks for the remaining budget (``-j N`` shards the
                    sweep; workers rebuild the scenario from the trace
                    file)
    --radius K      swap distance explored around the trace (default 2)
    -j N, --jobs N  explore with N worker processes (default 1). Work
                    ships as batched leases to worker-resident engines
                    that rewind one built world per schedule instead of
                    rebuilding it. Any N yields the same violation set
                    for a fixed seed: results merge deterministically in
                    the parent
    --order O       frontier traversal: ``dfs`` (default; canonical
                    arrival order) or ``level`` (Chauhan–Garg level-by-
                    level traversal under bounded frontier memory)
    --frontier-limit N
                    max queued frontier nodes under ``--order level``
                    (default 1024); overflow nodes are dropped and
                    counted in the report
    --no-dedup      disable state-fingerprint subtree dedup (parallel
                    engine only; mainly for measuring its effect)
    --mutate NAME   run with a deliberately broken HaltingAgent (basic-mode
                    scenarios only); the checker is expected to object
    --artifact P    where to write the minimized counterexample
                    (default repro-check-<scenario>.json)
    --replay P      re-execute a saved artifact instead of exploring (on
                    the backend recorded in the artifact; ``--from-trace``
                    artifacts rebuild their scenario from the trace file)
    --list          print scenarios (with the backends each supports and,
                    under ``--backend``, why any would be skipped) and
                    mutations, then exit

Exit codes: ``0`` no violation found (or replay reproduced the recorded
violation), ``1`` a violation was found (artifact written), ``2`` usage
error or a replay that failed to reproduce its artifact.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.check.artifact import ScheduleArtifact, load_artifact, save_artifact
from repro.check.minimize import minimize_schedule, schedule_violates
from repro.check.mutations import MUTATIONS
from repro.check.parallel import explore_parallel
from repro.check.runner import scenarios


def check_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro check``; returns the exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--help" in argv or "-h" in argv:
        print(__doc__)
        return 0

    registry = scenarios()
    budget, seed, dfs_depth, jobs = 200, 0, 10, 1
    radius = 2
    dedup = True
    order = "dfs"
    frontier_limit: Optional[int] = None
    list_requested = False
    backend = "des"
    mutate: Optional[str] = None
    artifact_path: Optional[str] = None
    replay_path: Optional[str] = None
    trace_path: Optional[str] = None
    names: List[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]

        def value(flag: str = arg) -> str:
            nonlocal i
            i += 1
            if i >= len(argv):
                raise SystemExit(_usage_error(f"{flag} needs a value"))
            return argv[i]

        if arg == "--budget":
            budget = int(value())
        elif arg == "--seed":
            seed = int(value())
        elif arg == "--dfs-depth":
            dfs_depth = int(value())
        elif arg in ("-j", "--jobs"):
            jobs = int(value())
            if jobs < 1:
                return _usage_error(f"--jobs must be >= 1, got {jobs}")
        elif arg == "--backend":
            backend = value()
            if backend not in ("des", "threaded", "distributed"):
                return _usage_error(
                    f"unknown backend {backend!r}; "
                    "known: des, threaded, distributed"
                )
        elif arg == "--order":
            order = value()
            if order not in ("dfs", "level"):
                return _usage_error(
                    f"unknown order {order!r}; known: dfs, level"
                )
        elif arg == "--frontier-limit":
            frontier_limit = int(value())
            if frontier_limit < 1:
                return _usage_error(
                    f"--frontier-limit must be >= 1, got {frontier_limit}"
                )
        elif arg == "--no-dedup":
            dedup = False
        elif arg == "--mutate":
            mutate = value()
        elif arg == "--artifact":
            artifact_path = value()
        elif arg == "--replay":
            replay_path = value()
        elif arg == "--from-trace":
            trace_path = value()
        elif arg == "--radius":
            radius = int(value())
        elif arg == "--list":
            list_requested = True
        elif arg.startswith("-"):
            return _usage_error(f"unknown option {arg!r}")
        else:
            names.append(arg)
        i += 1

    if list_requested:
        print("scenarios:")
        for name, scenario in sorted(registry.items()):
            print(f"  {name:20s} [{scenario.mode}] {scenario.description}")
            line = f"  {'':20s} backends: {', '.join(scenario.backends)}"
            if backend not in scenario.backends:
                line += (
                    f" -- skipped under --backend {backend}: "
                    f"scenario does not declare {backend!r}"
                )
            print(line)
        print("mutations:")
        for name in sorted(MUTATIONS):
            print(f"  {name}")
        return 0

    if mutate is not None and mutate not in MUTATIONS:
        return _usage_error(
            f"unknown mutation {mutate!r}; known: {sorted(MUTATIONS)}"
        )
    for name in names:
        if name not in registry:
            return _usage_error(
                f"unknown scenario {name!r}; known: {sorted(registry)}"
            )

    if replay_path is not None:
        return _replay(replay_path)
    if trace_path is not None:
        if names:
            return _usage_error(
                "--from-trace takes no scenario names (the trace is "
                "the scenario)"
            )
        if backend != "des":
            return _usage_error(
                "--from-trace replays in the DES; drop --backend"
            )
        return _check_from_trace(
            trace_path,
            radius=radius,
            budget=budget,
            seed=seed,
            mutate=mutate,
            artifact_path=artifact_path,
            jobs=jobs,
        )

    agent_factory = MUTATIONS[mutate] if mutate else None
    explicit_names = bool(names)
    if not names:
        names = sorted(registry)
        if mutate:
            # Mutations swap the HaltingAgent the coordinator installs;
            # session-mode scenarios build their own agents.
            names = [n for n in names if registry[n].mode == "basic"]
    elif mutate:
        bad = [n for n in names if registry[n].mode != "basic"]
        if bad:
            return _usage_error(
                f"--mutate only applies to basic-mode scenarios, not {bad}"
            )
    if backend != "des":
        unsupported = [n for n in names
                       if backend not in registry[n].backends]
        if unsupported:
            if explicit_names:
                return _usage_error(
                    f"scenario(s) {unsupported} do not support "
                    f"backend {backend!r}"
                )
            for n in unsupported:
                print(f"{n}: skipped (no {backend} backend support)")
            names = [n for n in names if n not in unsupported]

    exit_code = 0
    for name in names:
        scenario = registry[name]
        report = explore_parallel(
            scenario,
            budget=budget,
            seed=seed,
            dfs_depth=dfs_depth,
            jobs=jobs,
            mutation=mutate,
            dedup=dedup,
            backend=backend,
            order=order,
            frontier_limit=frontier_limit,
        )
        print(report.summary())
        if not report.found:
            continue
        exit_code = 1
        assert report.violation is not None
        violation = report.violation.violations[0]
        print(violation.describe())
        decisions = minimize_schedule(
            scenario,
            report.violation.record.decisions,
            violation.invariant,
            agent_factory,
            backend=backend,
        )
        print(
            f"minimized schedule: {len(report.violation.record.decisions)} "
            f"decision(s) -> {len(decisions)}"
        )
        path = artifact_path or f"repro-check-{name}.json"
        save_artifact(
            ScheduleArtifact(
                scenario=name,
                seed=scenario.seed,
                mutation=mutate,
                backend=backend,
                decisions=tuple(decisions),
                invariant=violation.invariant,
                details=violation.details,
            ),
            path,
        )
        print(f"replayable artifact written to {path}")
        break  # First violating scenario is enough; fix it, re-run.
    return exit_code


def _check_from_trace(
    path: str,
    radius: int,
    budget: int,
    seed: int,
    mutate: Optional[str],
    artifact_path: Optional[str],
    jobs: int = 1,
) -> int:
    """Replay a recorded trace, then explore its schedule neighborhood."""
    from repro.record.bridge import replay_trace, trace_scenario
    from repro.record.perturb import explore_from_trace
    from repro.record.store import load_trace
    from repro.util.errors import TraceError

    try:
        trace = load_trace(path)
    except TraceError as exc:
        return _usage_error(f"cannot load trace {path!r}: {exc}")
    factory = MUTATIONS[mutate] if mutate else None
    scenario = trace_scenario(trace)
    report, _ = replay_trace(trace, agent_factory=factory)
    print(report.summary())
    perturbation = explore_from_trace(
        scenario,
        list(report.decisions),
        radius=radius,
        budget=budget,
        seed=seed,
        mutation=mutate,
        jobs=jobs,
        trace_path=path,
    )
    print(perturbation.summary())
    if not perturbation.found:
        return 0
    assert perturbation.violation is not None
    violation = perturbation.violation.violations[0]
    print(violation.describe())
    decisions = minimize_schedule(
        scenario, perturbation.decisions, violation.invariant, factory
    )
    print(
        f"minimized schedule: {len(perturbation.decisions)} "
        f"decision(s) -> {len(decisions)}"
    )
    out = artifact_path or (
        f"repro-check-{scenario.name.replace(':', '-')}.json"
    )
    save_artifact(
        ScheduleArtifact(
            scenario=scenario.name,
            seed=scenario.seed,
            mutation=mutate,
            backend="des",
            from_trace=path,
            decisions=tuple(decisions),
            invariant=violation.invariant,
            details=violation.details,
        ),
        out,
    )
    print(f"replayable artifact written to {out}")
    return 1


def _replay(path: str) -> int:
    artifact = load_artifact(path)
    if artifact.from_trace is not None:
        from repro.record.bridge import trace_scenario
        from repro.record.store import load_trace
        from repro.util.errors import TraceError

        try:
            scenario = trace_scenario(load_trace(artifact.from_trace))
        except TraceError as exc:
            return _usage_error(
                f"artifact references trace {artifact.from_trace!r} "
                f"which failed to load: {exc}"
            )
    else:
        registry = scenarios()
        scenario = registry.get(artifact.scenario)
        if scenario is None:
            return _usage_error(
                f"artifact names unknown scenario {artifact.scenario!r}"
            )
    factory = None
    if artifact.mutation is not None:
        factory = MUTATIONS.get(artifact.mutation)
        if factory is None:
            return _usage_error(
                f"artifact names unknown mutation {artifact.mutation!r}"
            )
    if artifact.backend not in scenario.backends:
        return _usage_error(
            f"artifact wants backend {artifact.backend!r} but scenario "
            f"{artifact.scenario!r} supports {list(scenario.backends)}"
        )
    reproduced = schedule_violates(
        scenario, list(artifact.decisions), artifact.invariant, factory,
        backend=artifact.backend,
    )
    label = (f"{artifact.scenario} / {artifact.invariant} "
             f"[{artifact.backend}]")
    if reproduced:
        print(f"replay of {path}: reproduced {label} "
              f"({len(artifact.decisions)} decision(s))")
        return 0
    print(f"replay of {path}: did NOT reproduce {label}", file=sys.stderr)
    return 2


def _usage_error(message: str) -> int:
    print(f"repro check: {message}", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover - console entry
    raise SystemExit(check_main())
