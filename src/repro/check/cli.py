"""``python -m repro check`` — explore schedules, minimize, replay.

Usage::

    python -m repro check                       # all scenarios, default budget
    python -m repro check token_ring --budget 500
    python -m repro check --backend threaded    # model-check real threads
    python -m repro check --mutate late-halt    # inject a broken agent
    python -m repro check --replay artifact.json
    python -m repro check --list

Options::

    --budget N      max schedules per scenario (default 200)
    --seed N        base seed for the random-walk phase (default 0)
    --dfs-depth N   flip choice points with index < N in the DFS phase
                    (default 10)
    --backend B     substrate to execute schedules on: ``des`` (default),
                    ``threaded``, or ``distributed``. Non-``des`` backends
                    run only the scenarios that declare support for them;
                    the rest are skipped with a note. (No stock scenario
                    opts into ``distributed`` yet — the frame gate is a
                    library surface; see docs/CHECKING.md)
    -j N, --jobs N  explore with N worker processes (default 1). Any N
                    yields the same violation set for a fixed seed: results
                    merge deterministically in the parent
    --no-dedup      disable state-fingerprint subtree dedup (parallel
                    engine only; mainly for measuring its effect)
    --mutate NAME   run with a deliberately broken HaltingAgent (basic-mode
                    scenarios only); the checker is expected to object
    --artifact P    where to write the minimized counterexample
                    (default repro-check-<scenario>.json)
    --replay P      re-execute a saved artifact instead of exploring (on
                    the backend recorded in the artifact)

Exit codes: ``0`` no violation found (or replay reproduced the recorded
violation), ``1`` a violation was found (artifact written), ``2`` usage
error or a replay that failed to reproduce its artifact.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.check.artifact import ScheduleArtifact, load_artifact, save_artifact
from repro.check.minimize import minimize_schedule, schedule_violates
from repro.check.mutations import MUTATIONS
from repro.check.parallel import explore_parallel
from repro.check.runner import scenarios


def check_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro check``; returns the exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--help" in argv or "-h" in argv:
        print(__doc__)
        return 0

    registry = scenarios()
    if "--list" in argv:
        print("scenarios:")
        for name, scenario in sorted(registry.items()):
            print(f"  {name:20s} [{scenario.mode}] {scenario.description}")
        print("mutations:")
        for name in sorted(MUTATIONS):
            print(f"  {name}")
        return 0

    budget, seed, dfs_depth, jobs = 200, 0, 10, 1
    dedup = True
    backend = "des"
    mutate: Optional[str] = None
    artifact_path: Optional[str] = None
    replay_path: Optional[str] = None
    names: List[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]

        def value(flag: str = arg) -> str:
            nonlocal i
            i += 1
            if i >= len(argv):
                raise SystemExit(_usage_error(f"{flag} needs a value"))
            return argv[i]

        if arg == "--budget":
            budget = int(value())
        elif arg == "--seed":
            seed = int(value())
        elif arg == "--dfs-depth":
            dfs_depth = int(value())
        elif arg in ("-j", "--jobs"):
            jobs = int(value())
            if jobs < 1:
                return _usage_error(f"--jobs must be >= 1, got {jobs}")
        elif arg == "--backend":
            backend = value()
            if backend not in ("des", "threaded", "distributed"):
                return _usage_error(
                    f"unknown backend {backend!r}; "
                    "known: des, threaded, distributed"
                )
        elif arg == "--no-dedup":
            dedup = False
        elif arg == "--mutate":
            mutate = value()
        elif arg == "--artifact":
            artifact_path = value()
        elif arg == "--replay":
            replay_path = value()
        elif arg.startswith("-"):
            return _usage_error(f"unknown option {arg!r}")
        else:
            names.append(arg)
        i += 1

    if mutate is not None and mutate not in MUTATIONS:
        return _usage_error(
            f"unknown mutation {mutate!r}; known: {sorted(MUTATIONS)}"
        )
    for name in names:
        if name not in registry:
            return _usage_error(
                f"unknown scenario {name!r}; known: {sorted(registry)}"
            )

    if replay_path is not None:
        return _replay(replay_path)

    agent_factory = MUTATIONS[mutate] if mutate else None
    explicit_names = bool(names)
    if not names:
        names = sorted(registry)
        if mutate:
            # Mutations swap the HaltingAgent the coordinator installs;
            # session-mode scenarios build their own agents.
            names = [n for n in names if registry[n].mode == "basic"]
    elif mutate:
        bad = [n for n in names if registry[n].mode != "basic"]
        if bad:
            return _usage_error(
                f"--mutate only applies to basic-mode scenarios, not {bad}"
            )
    if backend != "des":
        unsupported = [n for n in names
                       if backend not in registry[n].backends]
        if unsupported:
            if explicit_names:
                return _usage_error(
                    f"scenario(s) {unsupported} do not support "
                    f"backend {backend!r}"
                )
            for n in unsupported:
                print(f"{n}: skipped (no {backend} backend support)")
            names = [n for n in names if n not in unsupported]

    exit_code = 0
    for name in names:
        scenario = registry[name]
        report = explore_parallel(
            scenario,
            budget=budget,
            seed=seed,
            dfs_depth=dfs_depth,
            jobs=jobs,
            mutation=mutate,
            dedup=dedup,
            backend=backend,
        )
        print(report.summary())
        if not report.found:
            continue
        exit_code = 1
        assert report.violation is not None
        violation = report.violation.violations[0]
        print(violation.describe())
        decisions = minimize_schedule(
            scenario,
            report.violation.record.decisions,
            violation.invariant,
            agent_factory,
            backend=backend,
        )
        print(
            f"minimized schedule: {len(report.violation.record.decisions)} "
            f"decision(s) -> {len(decisions)}"
        )
        path = artifact_path or f"repro-check-{name}.json"
        save_artifact(
            ScheduleArtifact(
                scenario=name,
                seed=scenario.seed,
                mutation=mutate,
                backend=backend,
                decisions=tuple(decisions),
                invariant=violation.invariant,
                details=violation.details,
            ),
            path,
        )
        print(f"replayable artifact written to {path}")
        break  # First violating scenario is enough; fix it, re-run.
    return exit_code


def _replay(path: str) -> int:
    artifact = load_artifact(path)
    registry = scenarios()
    scenario = registry.get(artifact.scenario)
    if scenario is None:
        return _usage_error(
            f"artifact names unknown scenario {artifact.scenario!r}"
        )
    factory = None
    if artifact.mutation is not None:
        factory = MUTATIONS.get(artifact.mutation)
        if factory is None:
            return _usage_error(
                f"artifact names unknown mutation {artifact.mutation!r}"
            )
    if artifact.backend not in scenario.backends:
        return _usage_error(
            f"artifact wants backend {artifact.backend!r} but scenario "
            f"{artifact.scenario!r} supports {list(scenario.backends)}"
        )
    reproduced = schedule_violates(
        scenario, list(artifact.decisions), artifact.invariant, factory,
        backend=artifact.backend,
    )
    label = (f"{artifact.scenario} / {artifact.invariant} "
             f"[{artifact.backend}]")
    if reproduced:
        print(f"replay of {path}: reproduced {label} "
              f"({len(artifact.decisions)} decision(s))")
        return 0
    print(f"replay of {path}: did NOT reproduce {label}", file=sys.stderr)
    return 2


def _usage_error(message: str) -> int:
    print(f"repro check: {message}", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover - console entry
    raise SystemExit(check_main())
