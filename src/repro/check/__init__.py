"""Schedule-exploration checker: model-check the paper's theorems.

The DES backend is deterministic given a seed — good for reproduction,
bad for coverage: one seed is one interleaving. This package turns the
simulator into a bounded model checker. A
:class:`~repro.check.gate.SchedulingGate` exposes one backend-neutral
decision surface — enumerate enabled actions, commit one, observe
quiescence — implemented over the DES kernel's ordering hook
(:class:`~repro.check.gate.KernelGate`), over real threads via a
cooperative turnstile (:class:`~repro.check.gate.ThreadedStepGate`), and
over child-process TCP frames (:class:`~repro.check.gate.FrameGate`), so
every message delivery, timer, and deferred action becomes an explicit
decision on any substrate; :func:`~repro.check.explorer.explore`
searches the decision tree (seeded random walks + sleep-set bounded DFS);
:func:`~repro.check.parallel.explore_parallel` runs the same search
sharded across a worker-process pool with deterministic merging and
state-fingerprint dedup (:mod:`~repro.check.fingerprint`);
after every run that halts, :mod:`~repro.check.invariants` re-judges
Theorem 1 (consistency of ``S_h``), Theorem 2 (equivalence with a
same-instant snapshot), FIFO order, exactly-once conservation, and the
§2.2.4 halting-order prefix property. Violations are delta-debugged to a
1-minimal decision list (:mod:`~repro.check.minimize`) and serialized as
a replayable artifact (:mod:`~repro.check.artifact`).

Entry point: ``python -m repro check`` (:mod:`repro.check.cli`).
"""

from repro.check.artifact import ScheduleArtifact, load_artifact, save_artifact
from repro.check.explorer import ExplorationReport, explore
from repro.check.gate import (
    DriveResult,
    FrameGate,
    GatedChannel,
    KernelGate,
    SchedulingGate,
    ThreadedStepGate,
    drive,
)
from repro.check.fingerprint import (
    FingerprintTable,
    canonicalize,
    fingerprint_system,
    fingerprint_value,
)
from repro.check.invariants import INVARIANTS, RunRecord, Violation, evaluate
from repro.check.minimize import ddmin, minimize_schedule, schedule_violates
from repro.check.mutations import MUTATIONS
from repro.check.parallel import ParallelReport, RunSummary, explore_parallel
from repro.check.runner import Scenario, ScheduleResult, run_schedule, scenarios
from repro.check.scheduler import (
    ChoicePoint,
    ControlledScheduler,
    DefaultStrategy,
    RandomWalkStrategy,
    ScriptedStrategy,
    Strategy,
    TraceReplayStrategy,
    classify,
    group_heads,
    independent,
    target_process,
)

__all__ = [
    "ChoicePoint",
    "ControlledScheduler",
    "DefaultStrategy",
    "DriveResult",
    "ExplorationReport",
    "FingerprintTable",
    "FrameGate",
    "GatedChannel",
    "INVARIANTS",
    "KernelGate",
    "MUTATIONS",
    "ParallelReport",
    "RandomWalkStrategy",
    "RunRecord",
    "RunSummary",
    "Scenario",
    "ScheduleArtifact",
    "ScheduleResult",
    "SchedulingGate",
    "ScriptedStrategy",
    "Strategy",
    "ThreadedStepGate",
    "TraceReplayStrategy",
    "Violation",
    "canonicalize",
    "classify",
    "ddmin",
    "drive",
    "evaluate",
    "explore",
    "explore_parallel",
    "fingerprint_system",
    "fingerprint_value",
    "group_heads",
    "independent",
    "load_artifact",
    "minimize_schedule",
    "run_schedule",
    "save_artifact",
    "scenarios",
    "schedule_violates",
    "target_process",
]
