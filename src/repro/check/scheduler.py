"""The controlled scheduler: kernel entries become explorable decisions.

The DES kernel normally orders work by ``(time, priority, tiebreak)`` — the
interleaving is a function of seeded latencies. The checker inverts that:
a :class:`ControlledScheduler` installs itself as the kernel's ordering
hook and, at every step, classifies the pending entries into *enabled
groups*, one per independent source of nondeterminism:

``chan:src->dst``
    The FIFO head of one channel's pending deliveries. Only the head is
    enabled — delivering out of order would violate the §2.1 channel model
    (and trip ``Channel._arrive``'s FIFO assertion).
``ack:src->dst`` / ``rtx:src->dst``
    The reliable layer's acknowledgement / retransmission work for one
    channel, likewise FIFO within the group.
``timer:process``
    One process's earliest-deadline pending timer. Relative timer order at
    a single process is program logic, not network nondeterminism, so
    timers stay in deadline order within the group.
``internal:label:process``
    Deferred actions, triggers, crash/stall schedules. Each is its own
    group: *when* an internal step lands relative to deliveries is a real
    scheduling choice (a deferred halt racing a delivery is exactly the
    kind of bug the checker exists to find).

The sorted group labels are the *enabled set*. When it has one element the
step is forced; with two or more it is a **choice point** and the strategy
picks. The scheduler records the full label ``trace`` (one label per step)
and the ``decisions`` subsequence (choice points only) — decisions are the
replayable artifact; the trace aligns a Theorem-2 snapshot twin run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.simulation.kernel import (
    PRIORITY_DELIVERY,
    PRIORITY_INTERNAL,
    PRIORITY_TIMER,
    ScheduledEvent,
    SimulationKernel,
)


def classify(event: ScheduledEvent) -> str:
    """Map one pending kernel entry to its enabled-group label.

    The mapping is derived from the tiebreak conventions the runtime
    already uses for cross-run determinism (channel identity for
    deliveries, process identity for timers); anything unrecognized
    falls into a per-entry group so it stays schedulable.
    """
    tb = event.tiebreak
    if event.priority == PRIORITY_DELIVERY:
        if len(tb) == 3 and tb[0] == "ack":
            return f"ack:{tb[1]}"
        if len(tb) == 2 and isinstance(tb[1], int):
            return f"chan:{tb[0]}"
    elif event.priority == PRIORITY_TIMER:
        if len(tb) == 4 and tb[0] == "rtx":
            return f"rtx:{tb[1]}"
        if len(tb) == 3:
            return f"timer:{tb[0]}"
    elif event.priority == PRIORITY_INTERNAL:
        if len(tb) == 2:
            return f"internal:{tb[0]}:{tb[1]}"
    return f"entry:{event.priority}:{tb!r}:{event.sequence}"


def target_process(label: str) -> str:
    """The process a group's execution affects — the independence relation.

    Two labels with different targets commute (delivering to ``q`` and
    firing a timer at ``r`` touch disjoint local states); same target
    means potentially dependent. ``ack``/``rtx`` work lands at the channel
    *source* (the sender's retransmission state), deliveries at the
    destination.
    """
    kind, _, rest = label.partition(":")
    if kind == "chan":
        return rest.split("->", 1)[1] if "->" in rest else rest
    if kind in ("ack", "rtx"):
        return rest.split("->", 1)[0] if "->" in rest else rest
    if kind == "timer":
        return rest
    if kind == "internal":
        return rest.rpartition(":")[2]
    return label


def independent(label_a: str, label_b: str) -> bool:
    """Sleep-set independence: disjoint target processes commute."""
    return target_process(label_a) != target_process(label_b)


def group_heads(
    events: Sequence[ScheduledEvent],
    cache: Optional[Dict[int, str]] = None,
) -> Dict[str, ScheduledEvent]:
    """Fold pending events into per-group FIFO heads, keyed by label.

    The head of each group is its earliest ``(time, tiebreak, sequence)``
    entry — per-channel message order for deliveries, deadline order for
    timers. ``cache`` memoizes :func:`classify` per sequence across calls
    (an entry is re-offered every step until it fires, and its label never
    changes). This is the shared decision-surface math behind both the
    DES :class:`ControlledScheduler` hook and every
    :class:`repro.check.gate.SchedulingGate`.
    """
    if cache is None:
        cache = {}
    heads: Dict[str, ScheduledEvent] = {}
    for event in events:
        label = cache.get(event.sequence)
        if label is None:
            label = classify(event)
            cache[event.sequence] = label
        head = heads.get(label)
        if head is None or (
            (event.time, event.tiebreak, event.sequence)
            < (head.time, head.tiebreak, head.sequence)
        ):
            heads[label] = event
    return heads


@dataclass(frozen=True)
class ChoicePoint:
    """One point where more than one group was enabled."""

    #: Index into the scheduler's full ``trace``.
    trace_index: int
    #: The sorted enabled labels at this point.
    enabled: Tuple[str, ...]
    #: The label the strategy picked.
    chosen: str


class Strategy:
    """Picks one label from a sorted enabled set (consulted per step)."""

    def on_step(self, labels: Sequence[str]) -> str:
        """Called every step. Forced steps (one label) bypass ``choose``."""
        if len(labels) == 1:
            return labels[0]
        return self.choose(labels)

    def choose(self, labels: Sequence[str]) -> str:
        """Pick one of ``labels`` (two or more, sorted). Subclass hook."""
        raise NotImplementedError


class DefaultStrategy(Strategy):
    """Always the first label in sorted order — the canonical schedule."""

    def choose(self, labels: Sequence[str]) -> str:
        """First label in sorted order."""
        return labels[0]


class RandomWalkStrategy(Strategy):
    """Uniform choice at every choice point, from a dedicated RNG."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def choose(self, labels: Sequence[str]) -> str:
        """Uniformly random label."""
        return labels[self._rng.choice(range(len(labels)))]


class ScriptedStrategy(Strategy):
    """Replay a decision list; fall back to the default choice after it ends.

    Decisions are consumed at choice points only. A scripted label that is
    not currently enabled counts as a divergence (tracked, not fatal):
    delta-debugging legitimately produces prefixes whose suffix no longer
    matches the mutated execution.
    """

    def __init__(self, decisions: Sequence[str]) -> None:
        self._script = list(decisions)
        self._cursor = 0
        self.divergences = 0
        #: Optional callback fired once, at the first choice point after the
        #: script ran out — the *branch point* where replay hands over to
        #: default order. The parallel explorer hooks this to fingerprint
        #: the system state a DFS node's subtree grows from.
        self.on_exhausted: Optional[Callable[[], None]] = None
        self._exhaust_seen = False

    def choose(self, labels: Sequence[str]) -> str:
        """Next scripted label if enabled; else default, counting a divergence."""
        if self._cursor < len(self._script):
            wanted = self._script[self._cursor]
            self._cursor += 1
            if wanted in labels:
                return wanted
            self.divergences += 1
            return labels[0]
        if not self._exhaust_seen:
            self._exhaust_seen = True
            if self.on_exhausted is not None:
                self.on_exhausted()
        return labels[0]


class BiasedWalkStrategy(Strategy):
    """A random walk that leans toward a base schedule.

    At each choice point the strategy advances a cursor over ``base``;
    with probability ``follow`` (when the base label is enabled) it takes
    the base decision, otherwise it picks uniformly at random. This is
    the seeded-neighborhood search the record/replay perturber uses: most
    of the run stays on the recorded schedule, a few choice points wander
    off it — interleavings *near* the trace, not arbitrary ones.
    """

    def __init__(self, base: Sequence[str], rng: random.Random,
                 follow: float = 0.85) -> None:
        self._base = list(base)
        self._rng = rng
        self._follow = follow
        self._cursor = 0

    def choose(self, labels: Sequence[str]) -> str:
        """Base decision with probability ``follow``, else uniform."""
        wanted = (
            self._base[self._cursor] if self._cursor < len(self._base)
            else None
        )
        self._cursor += 1
        if (
            wanted is not None
            and wanted in labels
            and self._rng.random() < self._follow
        ):
            return wanted
        return labels[self._rng.choice(range(len(labels)))]


class TraceReplayStrategy(Strategy):
    """Follow a full per-step label trace from a previous run.

    Used for the Theorem-2 twin: the snapshot run re-executes the halting
    run's exact event sequence while its extra post-record work waits its
    turn. Consumes one trace label per step — forced steps included — so
    the two runs stay aligned step for step. After the trace is exhausted
    (the halting run quiesced; the snapshot run still has post-cut work)
    the default order finishes the run.
    """

    def __init__(self, trace: Sequence[str]) -> None:
        self._trace = list(trace)
        self._cursor = 0
        self.divergences = 0

    @property
    def exhausted(self) -> bool:
        """True once every trace label has been consumed — no further step
        can add a divergence, so trace-fidelity verdicts are final."""
        return self._cursor >= len(self._trace)

    def on_step(self, labels: Sequence[str]) -> str:
        """Consume one trace label per step, forced steps included."""
        if self._cursor < len(self._trace):
            wanted = self._trace[self._cursor]
            self._cursor += 1
            if wanted in labels:
                return wanted
            self.divergences += 1
        return labels[0]

    def choose(self, labels: Sequence[str]) -> str:  # pragma: no cover
        """Unreachable — ``on_step`` is overridden wholesale."""
        return labels[0]


class ControlledScheduler:
    """Kernel ordering hook that records what it chose and why."""

    def __init__(self, strategy: Optional[Strategy] = None) -> None:
        self.strategy = strategy or DefaultStrategy()
        #: Every step's chosen label, in execution order.
        self.trace: List[str] = []
        #: The chosen labels at choice points only (the schedule).
        self.decisions: List[str] = []
        #: Full choice-point records, for the explorer's branching.
        self.choice_points: List[ChoicePoint] = []
        # A pending entry is re-offered at every step until it fires, and
        # its label never changes — memoize classify() per sequence.
        self._label_cache: Dict[int, str] = {}

    def install(self, kernel: SimulationKernel) -> None:
        """Register this scheduler as the kernel's ordering hook."""
        kernel.set_ordering(self.__call__)

    def __call__(self, events: List[ScheduledEvent]) -> int:
        heads = group_heads(events, self._label_cache)
        labels = sorted(heads)
        chosen = self.strategy.on_step(labels)
        if chosen not in heads:
            # Defensive: a buggy strategy must not wedge the kernel.
            chosen = labels[0]
        if len(labels) > 1:
            self.choice_points.append(
                ChoicePoint(len(self.trace), tuple(labels), chosen)
            )
            self.decisions.append(chosen)
        self.trace.append(chosen)
        return heads[chosen].sequence

    @staticmethod
    def _key(event: ScheduledEvent) -> Tuple[float, tuple, int]:
        return (event.time, event.tiebreak, event.sequence)
