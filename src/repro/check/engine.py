"""The worker-resident incremental exploration engine.

One explored schedule used to cost a full scenario build (topology,
processes, channels, RNG streams, trigger, coordinator), a full replay of
the DFS node's decision prefix, and — for twin scenarios — a *second*
build plus a full trace replay for the Theorem-2 snapshot run. Profiling
the stock scenarios puts ~85% of a schedule's wall time in those rebuilds
and replays, which is why ``repro check -j N`` historically lost to
``-j 1``: every worker paid the full cost per task and then shipped the
result through a pickle round-trip.

This module keeps one *resident world* per worker instead:

* **Build once per epoch.** The first task of a ``(scenario, mutation,
  backend)`` epoch builds the world — system, gate, coordinator, trigger
  — and captures its started-but-unrun state as an in-place
  :class:`~repro.runtime.memento.Memento` (the *root*). Every subsequent
  run rewinds the same objects instead of rebuilding them.
* **Backtrack incrementally.** A prefix run captures a second memento at
  its *branch point* (the state ``fingerprint_system`` hashes — the exact
  choice point the node's children diverge from). A child task restores
  the deepest cached ancestor snapshot and replays only the decisions
  between that snapshot and its own branch point, instead of the whole
  prefix from step zero. Snapshots live in a bounded LRU; when a needed
  snapshot has been evicted the run falls back to replay-from-the-root
  and re-captures en route. The drive loop is pre-seeded with the
  snapshot's recorded trace/decision/choice-point stitch, so a restored
  run's :class:`~repro.check.invariants.RunRecord` is byte-identical to a
  from-scratch run's.
* **Resident twin.** Twin scenarios keep a second resident world wearing
  a :class:`SnapshotCoordinator`; the Theorem-2 replay rewinds it rather
  than rebuilding, and stops as soon as the trace is consumed and the
  snapshot is complete (the verdict is final from that step on).
* **Sharded fingerprint pre-dedup.** With dedup on, the engine keeps a
  worker-local :class:`FingerprintTable` shard. The shard never decides
  anything — the parent's canonical-order table stays authoritative for
  the ``-j N == -j 1`` contract — but a shard hit proves the parent will
  dedup this node too (the shard's earlier sighting has a smaller task id
  and the parent merges in task order), so the engine skips capturing a
  snapshot no child will ever ask for.

Worlds that cannot be captured in place (threaded and distributed
backends race real threads and sockets; see
:class:`~repro.runtime.memento.MementoError`) fall back to the classic
one-run-one-build :func:`~repro.check.runner.run_schedule` path, counted
in the stats so the accounting shows which engine actually ran.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.check.fingerprint import FingerprintTable, fingerprint_system
from repro.check.gate import DriveResult, KernelGate, drive
from repro.check.mutations import MUTATIONS
from repro.check.runner import (
    Scenario,
    ScheduleResult,
    _assemble_basic_record,
    _assemble_session_record,
    _build_system,
    _judge,
    _twin_verdict,
    run_schedule,
)
from repro.check.scheduler import (
    BiasedWalkStrategy,
    RandomWalkStrategy,
    ScriptedStrategy,
    Strategy,
)
from repro.experiments.harness import install_trigger
from repro.halting.algorithm import HaltingCoordinator
from repro.runtime.memento import Memento, MementoError, capture
from repro.snapshot.chandy_lamport import SnapshotCoordinator

import random

#: Branch-point snapshots kept per resident world. Each holds the mutable
#: frontier of one world state (a few hundred ops); the cap bounds worker
#: memory while keeping every actively-explored subtree's restore point
#: warm at stock budgets.
SNAPSHOT_CAP = 64

#: Counter names every stats dict carries (zero-filled), so parent-side
#: merges can sum without key checks.
STAT_KEYS = (
    "builds",
    "resident_runs",
    "oneshot_runs",
    "root_restores",
    "snapshot_restores",
    "snapshot_captures",
    "snapshot_evictions",
    "replayed_decisions",
    "shard_hits",
    "twin_runs",
)


def blank_stats() -> Dict[str, int]:
    """A zeroed accounting dict with every :data:`STAT_KEYS` entry."""
    return {key: 0 for key in STAT_KEYS}


@dataclass
class EngineRun:
    """One executed schedule: the judged result plus engine bookkeeping."""

    result: ScheduleResult
    #: Branch-point state digest (prefix runs only — the dedup key).
    fingerprint: Optional[str] = None
    #: Shard verdict for the fingerprint: False when this worker has
    #: already seen the state (the parent will dedup it too). None when
    #: no shard was consulted.
    shard_fresh: Optional[bool] = None


@dataclass
class _Snapshot:
    """A branch-point memento plus the record stitch replaying into it."""

    memento: Memento
    trace: Tuple[str, ...]
    decisions: Tuple[str, ...]
    choice_points: tuple
    steps: int


class _BranchHookStrategy(Strategy):
    """Wrap a run strategy; call ``hook(labels)`` at real choice points.

    The hook observes the world *before* the inner strategy consumes a
    decision — exactly the state ``ScriptedStrategy.on_exhausted`` sees in
    the one-shot path — which is where fingerprints and snapshots are
    taken.
    """

    def __init__(self, inner: Strategy, hook) -> None:
        self._inner = inner
        self._hook = hook

    def on_step(self, labels):
        if len(labels) > 1:
            self._hook(labels)
        return self._inner.on_step(labels)

    def choose(self, labels):  # pragma: no cover - on_step overridden
        return self._inner.choose(labels)


class _ResidentWorld:
    """One built scenario world and the mementos that rewind it."""

    def __init__(self, scenario: Scenario, agent_factory) -> None:
        self.scenario = scenario
        self.assemble = None  # set by _build_*
        if scenario.mode == "basic":
            self._build_basic(scenario, agent_factory)
        elif scenario.mode == "session":
            self._build_session(scenario, agent_factory)
        elif scenario.mode == "trace":
            self._build_trace(scenario, agent_factory)
        else:
            raise MementoError(
                f"mode {scenario.mode!r} has no resident world"
            )
        self.root = capture(*self.roots)
        self.snapshots: "OrderedDict[Tuple[str, ...], _Snapshot]" = (
            OrderedDict()
        )
        # Twin world built lazily: only twin scenarios that actually halt
        # ever need it.
        self._twin = None

    # -- construction (mirrors the one-shot builders step for step, so a
    # -- rewound run re-issues identical event sequence numbers) --------------

    def _build_basic(self, scenario: Scenario, agent_factory) -> None:
        system = _build_system(scenario)
        gate = KernelGate(system.kernel)
        coordinator = HaltingCoordinator(system, agent_factory=agent_factory)
        install_trigger(
            system, scenario.trigger_process, scenario.trigger_event,
            lambda: coordinator.initiate([scenario.trigger_process]),
        )
        system.start()
        self.system, self.gate = system, gate
        self.roots = (system, gate, coordinator)
        self.assemble = lambda result: _assemble_basic_record(
            scenario, system, coordinator, result, "des"
        )

    def _build_session(self, scenario: Scenario, agent_factory) -> None:
        if agent_factory is not None:
            raise ValueError(
                "mutations are injected via HaltingCoordinator and only "
                "apply to basic-mode scenarios"
            )
        from repro.debugger.session import DebugSession
        from repro.network.latency import FixedLatency

        topology, processes = scenario.builder()
        session = DebugSession(
            topology, processes, seed=scenario.seed, latency=FixedLatency(1.0)
        )
        system = session.system
        gate = KernelGate(system.kernel)
        halt_order: List[str] = []
        agents = session._halting_agents
        for name in system.user_process_names:
            agents[name].notify_on_halt(
                lambda agent: halt_order.append(agent.controller.name)
            )
        trigger_agent = agents[scenario.trigger_process]

        def initiate() -> None:
            if not trigger_agent.controller.halted:
                trigger_agent.initiate()

        install_trigger(
            system, scenario.trigger_process, scenario.trigger_event, initiate
        )
        system.start()
        self.system, self.gate = system, gate
        self.roots = (session, gate, halt_order)
        self.assemble = lambda result: _assemble_session_record(
            scenario, system, agents, halt_order, result
        )

    def _build_trace(self, scenario: Scenario, agent_factory) -> None:
        from repro.debugger.session import DebugSession
        from repro.network.latency import FixedLatency
        from repro.record.bridge import _assemble_trace_record
        from repro.record.store import TraceArtifact
        from repro.util.errors import TraceError

        artifact = scenario.trace
        if not isinstance(artifact, TraceArtifact):
            raise TraceError(
                f"scenario {scenario.name!r} carries no trace artifact"
            )
        debugger = str(artifact.meta.get("debugger", "d"))
        topology, processes = scenario.builder()
        session = DebugSession(
            topology,
            processes,
            seed=scenario.seed,
            latency=FixedLatency(1.0),
            debugger_name=debugger,
            halting_factory=agent_factory,
        )
        system = session.system
        gate = KernelGate(system.kernel)
        halt_order: List[str] = []
        agents = session._halting_agents
        for name in system.user_process_names:
            agents[name].notify_on_halt(
                lambda agent: halt_order.append(agent.controller.name)
            )
        system.start()
        session.halt()  # markers enter the network before the root capture
        self.system, self.gate = system, gate
        self.roots = (session, gate, halt_order)
        self.assemble = lambda result: _assemble_trace_record(
            scenario, system, agents, halt_order, result
        )

    # -- twin ------------------------------------------------------------------

    def twin_verdict(self, trace, stats: Dict[str, int]):
        """Run the resident Theorem-2 twin over ``trace``."""
        if self._twin is None:
            scenario = self.scenario
            system = _build_system(scenario)
            gate = KernelGate(system.kernel)
            coordinator = SnapshotCoordinator(system)
            install_trigger(
                system, scenario.trigger_process, scenario.trigger_event,
                lambda: coordinator.initiate([scenario.trigger_process]),
            )
            system.start()
            memento = capture(system, gate, coordinator)
            self._twin = (gate, coordinator, memento)
            stats["builds"] += 1
        gate, coordinator, memento = self._twin
        memento.restore()
        stats["twin_runs"] += 1
        return _twin_verdict(gate, coordinator, list(trace),
                             max_steps=self.scenario.max_steps * 2)


class ExplorationEngine:
    """Executes schedules for one ``(scenario, mutation, backend)`` epoch.

    The entry points mirror the explorer's task kinds — :meth:`run_prefix`
    (replay a decision prefix, then default order, fingerprinting the
    branch point), :meth:`run_walk`, :meth:`run_script` (an exact
    schedule), :meth:`run_biased` — and every one returns an
    :class:`EngineRun` judged exactly as
    :func:`~repro.check.runner.run_schedule` would judge the same
    schedule.
    """

    def __init__(
        self,
        scenario: Scenario,
        mutation: Optional[str] = None,
        backend: str = "des",
        dfs_depth: int = 10,
        shard_dedup: bool = True,
        snapshot_cap: int = SNAPSHOT_CAP,
        agent_factory=None,
    ) -> None:
        self.scenario = scenario
        self.mutation = mutation
        self.backend = backend
        self.dfs_depth = dfs_depth
        self.snapshot_cap = snapshot_cap
        # An explicit factory (in-process callers only — factories don't
        # cross the worker boundary) wins over the mutation-name lookup.
        self.agent_factory = agent_factory or (
            MUTATIONS[mutation] if mutation else None
        )
        self.stats = blank_stats()
        self.shard: Optional[FingerprintTable] = (
            FingerprintTable() if shard_dedup else None
        )
        self._world: Optional[_ResidentWorld] = None
        self._resident_failed = backend != "des"
        if not self._resident_failed:
            try:
                self._world = _ResidentWorld(scenario, self.agent_factory)
                self.stats["builds"] += 1
            except MementoError:
                self._resident_failed = True

    def drain_stats(self) -> Dict[str, int]:
        """Return counters accumulated since the last drain, and reset."""
        drained = self.stats
        self.stats = blank_stats()
        return drained

    # -- task kinds ------------------------------------------------------------

    def run_walk(self, seed: str) -> EngineRun:
        """Run one seeded random walk on the resident world."""
        strategy = RandomWalkStrategy(random.Random(seed))
        return self._run(strategy)

    def run_script(self, decisions) -> EngineRun:
        """Replay an explicit decision list on the resident world."""
        return self._run(ScriptedStrategy(list(decisions)))

    def run_biased(self, base, seed: str, follow: float) -> EngineRun:
        """Run a trace-biased walk that follows ``base`` with probability
        ``follow`` and wanders elsewhere."""
        strategy = BiasedWalkStrategy(base=list(base),
                                      rng=random.Random(seed),
                                      follow=follow)
        return self._run(strategy)

    def run_prefix(self, prefix: Tuple[str, ...]) -> EngineRun:
        """Replay ``prefix``, continue in default order, fingerprint (and
        maybe snapshot) the branch point."""
        if self._world is None:
            return self._run_oneshot_prefix(prefix)
        world = self._world
        seeded, script = self._restore_for(prefix)
        inner = ScriptedStrategy(script)
        captured: List[Tuple[str, Optional[bool]]] = []

        def hook(labels) -> None:
            # Mirrors ScriptedStrategy.on_exhausted: the first choice
            # point after the script ran out is the branch point.
            if captured or inner._cursor < len(script):
                return
            digest = fingerprint_system(world.system)
            fresh: Optional[bool] = None
            if self.shard is not None:
                fresh = self.shard.record(digest)
                if not fresh:
                    self.stats["shard_hits"] += 1
            captured.append((digest, fresh))
            key = tuple(seeded.decisions)
            if (
                len(key) < self.dfs_depth
                and fresh is not False
                and key not in world.snapshots
            ):
                world.snapshots[key] = _Snapshot(
                    memento=capture(*world.roots),
                    trace=tuple(seeded.trace),
                    decisions=key,
                    choice_points=tuple(seeded.choice_points),
                    steps=seeded.steps,
                )
                self.stats["snapshot_captures"] += 1
                while len(world.snapshots) > self.snapshot_cap:
                    world.snapshots.popitem(last=False)
                    self.stats["snapshot_evictions"] += 1

        result = self._drive(_BranchHookStrategy(inner, hook), seeded)
        digest, fresh = captured[0] if captured else (None, None)
        return EngineRun(result=result, fingerprint=digest,
                         shard_fresh=fresh)

    # -- internals -------------------------------------------------------------

    def _restore_for(
        self, prefix: Tuple[str, ...]
    ) -> Tuple[DriveResult, List[str]]:
        """Rewind to the deepest cached ancestor of ``prefix``; return the
        pre-seeded drive result and the decisions still to replay."""
        world = self._world
        for cut in range(len(prefix), -1, -1):
            snapshot = world.snapshots.get(prefix[:cut])
            if snapshot is not None:
                world.snapshots.move_to_end(prefix[:cut])
                snapshot.memento.restore()
                self.stats["snapshot_restores"] += 1
                self.stats["replayed_decisions"] += len(prefix) - cut
                seeded = DriveResult(
                    trace=list(snapshot.trace),
                    decisions=list(snapshot.decisions),
                    choice_points=list(snapshot.choice_points),
                    steps=snapshot.steps,
                )
                return seeded, list(prefix[cut:])
        world.root.restore()
        self.stats["root_restores"] += 1
        self.stats["replayed_decisions"] += len(prefix)
        return DriveResult(), list(prefix)

    def _run(self, strategy: Strategy) -> EngineRun:
        """Execute one full schedule from the root state."""
        if self._world is None:
            self.stats["oneshot_runs"] += 1
            return EngineRun(result=run_schedule(
                self.scenario, strategy, self.agent_factory,
                backend=self.backend,
            ))
        self._world.root.restore()
        self.stats["root_restores"] += 1
        return EngineRun(result=self._drive(strategy, DriveResult()))

    def _drive(self, strategy: Strategy, seeded: DriveResult
               ) -> ScheduleResult:
        world = self._world
        scenario = self.scenario
        result = drive(world.gate, strategy, max_steps=scenario.max_steps,
                       result=seeded)
        record = world.assemble(result)
        if scenario.twin and record.halt_state is not None:
            record.snapshot_state, record.twin_divergences = (
                world.twin_verdict(record.trace, self.stats)
            )
        self.stats["resident_runs"] += 1
        # Judge against the live world *now* — the next restore rewinds
        # the very objects the invariants read.
        return _judge(record, scenario.invariants)

    def _run_oneshot_prefix(self, prefix: Tuple[str, ...]) -> EngineRun:
        self.stats["oneshot_runs"] += 1
        digests: List[str] = []
        result = run_schedule(
            self.scenario, ScriptedStrategy(list(prefix)),
            self.agent_factory,
            on_branch_point=lambda system: digests.append(
                fingerprint_system(system)),
            backend=self.backend,
        )
        digest = digests[0] if digests else None
        fresh: Optional[bool] = None
        if digest is not None and self.shard is not None:
            fresh = self.shard.record(digest)
            if not fresh:
                self.stats["shard_hits"] += 1
        return EngineRun(result=result, fingerprint=digest,
                         shard_fresh=fresh)
