"""Canonical state fingerprints for exploration dedup.

Stateless exploration re-executes a scenario per schedule, so two decision
prefixes that drive the system into the *same* intermediate state go on to
explore the same subtree — pure waste. This module hashes a system's
observable state into a short, canonical fingerprint so the parallel
explorer (:mod:`repro.check.parallel`) can recognise the equivalence class
and expand each one once.

Design constraints:

* **Canonical.** The hash must not depend on dict insertion order, set
  iteration order, or any other representation accident: two equivalent
  states — e.g. process state dicts populated in different key order —
  must collide. :func:`canonicalize` normalises recursively (sorted dict
  items, sets sorted, tuples and lists unified) before hashing.
* **Cross-process stable.** Workers hash in separate OS processes, so the
  digest is SHA-256 over a canonical JSON encoding — never ``hash()``,
  whose string seed (``PYTHONHASHSEED``) varies per process.
* **History-sensitive where verdicts are.** The invariants judge the whole
  run, not just the final state (conservation reads the full send/receive
  ledger), so the fingerprint folds in per-channel traffic counters and
  per-process event counts alongside current state, clocks, in-flight
  messages, and pending kernel work. Two runs that collide here are
  equivalent for every downstream judgement the checker makes.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.runtime.system import System


def canonicalize(value: Any) -> Any:
    """Normalise ``value`` into a canonical, JSON-encodable structure.

    Mappings become sorted ``["dict", [key, value], ...]`` lists, sets
    become sorted ``["set", ...]`` lists, lists and tuples both become
    plain lists (a tuple/list distinction is a Python artifact, not a
    state difference). Scalars pass through; anything else falls back to
    ``repr`` — stable for the enums/ids used in process state.
    """
    if isinstance(value, dict):
        items = sorted(
            ((canonicalize(k), canonicalize(v)) for k, v in value.items()),
            key=lambda kv: json.dumps(kv[0], sort_keys=True),
        )
        return ["dict"] + [[k, v] for k, v in items]
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if isinstance(value, (set, frozenset)):
        members = [canonicalize(v) for v in value]
        return ["set"] + sorted(
            members, key=lambda m: json.dumps(m, sort_keys=True)
        )
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def fingerprint_value(value: Any) -> str:
    """SHA-256 hex digest of ``value``'s canonical form."""
    canonical = json.dumps(canonicalize(value), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def fingerprint_system(system: "System") -> str:
    """Fingerprint a live system's observable state (quiesced or mid-run).

    Captures, per process: user state, logical clocks, lifecycle flags and
    local event count; per channel: FIFO in-flight message content keys and
    traffic counters; plus the pending scheduled work (time/priority/
    tiebreak only — entry sequence numbers are insertion-order artifacts
    and deliberately excluded, or equivalent states reached by different
    prefixes would never collide). Pending work and the clock come from the
    DES kernel when the system has one, otherwise from the system's
    scheduling gate — so fingerprints work identically on gate-mode
    threaded runs.
    """
    processes: Dict[str, Any] = {}
    for name in sorted(system.controllers):
        controller = system.controllers[name]
        processes[name] = {
            "state": controller.ctx.state,
            "lamport": controller.lamport.value,
            "vector": controller.vector.snapshot(),
            "halted": controller.halted,
            "terminated": controller.terminated,
            "crashed": controller.crashed,
            "local_seq": controller._local_seq,
        }
    channels: Dict[str, Any] = {}
    for channel in system.channels():
        stats = channel.stats
        channels[str(channel.id)] = {
            "in_flight": [env.content_key() for env in channel.in_flight],
            "sent": stats.sent,
            "delivered": stats.delivered,
            "dropped": stats.dropped,
            "frames_dropped": stats.frames_dropped,
        }
    kernel = getattr(system, "kernel", None)
    source = kernel if kernel is not None else system.gate
    pending: List[Any] = sorted(source.pending_metadata())
    return fingerprint_value({
        "processes": processes,
        "channels": channels,
        "pending": pending,
        "now": source.now,
    })


class FingerprintTable:
    """First-seen registry of state fingerprints with hit accounting.

    The parallel explorer's parent process owns the single table and
    consults it in canonical result order, so dedup decisions — and
    therefore the explored node set — are independent of worker count
    and timing (the determinism contract).
    """

    def __init__(self) -> None:
        self._seen: Dict[str, int] = {}
        self.hits = 0

    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, digest: str) -> bool:
        return digest in self._seen

    def record(self, digest: str, origin: int = 0) -> bool:
        """Register ``digest``; return ``True`` iff it was new.

        ``origin`` tags the first sighting (e.g. a task id) for debugging;
        repeat sightings bump :attr:`hits` and keep the original tag.
        """
        if digest in self._seen:
            self.hits += 1
            return False
        self._seen[digest] = origin
        return True

    def origin_of(self, digest: str) -> Optional[int]:
        """The tag recorded with the first sighting, or ``None``."""
        return self._seen.get(digest)
