"""Network substrate: messages, latency models, channels, topologies."""

from repro.network.channel import Channel, ChannelStats
from repro.network.latency import (
    ExponentialLatency,
    FixedLatency,
    LatencyModel,
    SpikeLatency,
    UniformLatency,
)
from repro.network.message import Envelope, MessageKind
from repro.network.reliable import ReliabilityConfig, ReliableChannel
from repro.network.topology import (
    Topology,
    complete,
    pipeline,
    random_topology,
    ring,
    star,
    two_clusters,
)

__all__ = [
    "Channel",
    "ChannelStats",
    "Envelope",
    "ExponentialLatency",
    "FixedLatency",
    "LatencyModel",
    "MessageKind",
    "ReliabilityConfig",
    "ReliableChannel",
    "SpikeLatency",
    "Topology",
    "UniformLatency",
    "complete",
    "pipeline",
    "random_topology",
    "ring",
    "star",
    "two_clusters",
]
