"""FIFO, infinite-buffer channels on the simulation kernel.

§2.1: "Channels are assumed to have infinite buffers, to be error-free and
to deliver messages in the order sent." Delay is otherwise arbitrary.

FIFO is enforced even under random latency by clamping each delivery time to
be no earlier than the previously scheduled delivery on the same channel —
i.e. a fast message queues behind a slow one, exactly like a FIFO link.

The error-free half of §2.1 is now optional: a
:class:`~repro.faults.injection.ChannelFaultInjector` can drop, duplicate,
or reorder frames (see :mod:`repro.faults`). This class stays the *raw
wire* — it recovers nothing. Layer
:class:`~repro.network.reliable.ReliableChannel` on top to earn the paper's
assumptions back.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.faults.injection import ChannelFaultInjector
from repro.network.latency import FixedLatency, LatencyModel
from repro.network.message import Envelope, MessageKind
from repro.simulation.kernel import PRIORITY_DELIVERY, SimulationKernel
from repro.util.ids import ChannelId, SequenceGenerator
from repro.util.validation import require


class ChannelStats:
    """Per-channel traffic accounting used by the overhead experiments.

    One definition across every channel implementation (raw DES, reliable
    DES, threaded raw/reliable):

    * ``frames_dropped`` counts *wire-eaten frame copies* — every time the
      wire eats one transmitted frame, duplicated or not, recovered later
      or not, this increments by one;
    * ``dropped`` / ``dropped_by_kind`` count *logical messages permanently
      lost* to the application — on a raw channel that means every copy of
      the message was eaten; on a reliable one, that retransmission gave
      up.

    Invariant (per logical message): ``sent == delivered + dropped +
    in-flight``. :func:`repro.analysis.metrics.message_overhead` and the
    live metrics registry both read these counters, so the two views agree
    by construction.
    """

    __slots__ = (
        "sent",
        "delivered",
        "dropped",
        "sent_by_kind",
        "dropped_by_kind",
        "total_latency",
        "frames_dropped",
        "retransmits",
        "acks_sent",
        "acks_dropped",
        "duplicates_suppressed",
        "gave_up",
    )

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.sent_by_kind = {kind: 0 for kind in MessageKind}
        self.dropped_by_kind = {kind: 0 for kind in MessageKind}
        self.total_latency = 0.0
        #: Data frames lost on the wire (== dropped messages on a raw
        #: channel; recovered losses on a reliable one).
        self.frames_dropped = 0
        #: Reliable layer: retransmitted data frames.
        self.retransmits = 0
        #: Reliable layer: acknowledgement frames emitted / lost.
        self.acks_sent = 0
        self.acks_dropped = 0
        #: Reliable layer: received frames discarded as duplicates.
        self.duplicates_suppressed = 0
        #: Reliable layer: messages abandoned after the retry cap.
        self.gave_up = 0

    @property
    def user_sent(self) -> int:
        return self.sent_by_kind[MessageKind.USER]

    @property
    def control_sent(self) -> int:
        return self.sent - self.user_sent

    @property
    def mean_latency(self) -> float:
        """Mean delivery latency over *delivered* messages (drops excluded —
        a lost message has no latency, it has a drop record)."""
        return self.total_latency / self.delivered if self.delivered else 0.0

    def record_drop(self, kind: MessageKind) -> None:
        """One logical message permanently lost. Wire-level frame losses
        are accounted separately (``frames_dropped``) by the caller, which
        knows how many frame copies the wire ate."""
        self.dropped += 1
        self.dropped_by_kind[kind] += 1


class Channel:
    """One directed FIFO link.

    Deliveries are scheduled on the kernel; the receiving side is a callback
    installed by the runtime (the process controller). The channel itself
    never inspects payloads — markers and user messages share the link, as
    the paper requires (markers must obey FIFO order relative to data for
    Lemma 2.2 to hold).
    """

    def __init__(
        self,
        channel_id: ChannelId,
        kernel: SimulationKernel,
        user_rng: random.Random,
        control_rng: random.Random,
        sequences: SequenceGenerator,
        latency: Optional[LatencyModel] = None,
        loss_probability: float = 0.0,
        loss_rng: Optional[random.Random] = None,
        injector: Optional[ChannelFaultInjector] = None,
    ) -> None:
        # Two independent latency streams: control messages (markers) must
        # not consume random draws that user messages would otherwise get,
        # or injecting debugging traffic would perturb the user execution
        # and break cross-run comparisons (experiment E2) — the simulation
        # analogue of the paper's §5 requirement that the debugger impose
        # only minimal change on the program.
        require(
            0.0 <= loss_probability <= 1.0,
            f"loss_probability must be in [0, 1], got {loss_probability!r}",
        )
        self.id = channel_id
        self._kernel = kernel
        self._user_rng = user_rng
        self._control_rng = control_rng
        self._sequences = sequences
        self._latency = latency or FixedLatency(1.0)
        # Legacy scalar loss knob (predates FaultPlan; the ablation benches
        # use it). Losses draw from their own RNG stream so enabling them
        # does not perturb latency draws.
        self._loss_probability = loss_probability
        self._loss_rng = loss_rng or random.Random(f"loss|{channel_id}")
        self._injector = None if (injector is not None and injector.is_noop) else injector
        self._deliver: Optional[Callable[[Envelope], None]] = None
        #: Called with the envelope whenever the wire eats a message; the
        #: owning system wires this to the event log so drops are visible
        #: to traces and replay.
        self.on_drop: Optional[Callable[[Envelope], None]] = None
        self._last_delivery_time = 0.0
        self._message_index = 0
        self._in_flight: List[Envelope] = []
        self.stats = ChannelStats()

    def connect(self, deliver: Callable[[Envelope], None]) -> None:
        """Install the receiver-side delivery callback (runtime wiring)."""
        self._deliver = deliver

    @property
    def in_flight(self) -> List[Envelope]:
        """Envelopes currently travelling on this channel (oldest first)."""
        return list(self._in_flight)

    def send(self, kind: MessageKind, payload: object, clock: object = None) -> Envelope:
        """Emit one message from ``src`` toward ``dst``.

        Returns the envelope so callers (event logging) can reference it.
        ``clock`` piggybacks the sender's logical clocks on control traffic.
        """
        if self._deliver is None:
            raise RuntimeError(f"channel {self.id} is not connected")
        envelope = Envelope(
            channel=self.id,
            kind=kind,
            payload=payload,
            send_time=self._kernel.now,
            seq=self._sequences.next(),
            clock=clock,
        )
        self.stats.sent += 1
        self.stats.sent_by_kind[kind] += 1
        copies = 1
        extra_delay = 0.0
        if self._injector is not None:
            copies += self._injector.duplicates(kind.is_user)
            extra_delay = self._injector.extra_delay(kind.is_user)
        survivors = 0
        for _ in range(copies):
            if self._copy_dropped(kind):
                # The wire ate this frame copy; surface it to traces.
                self.stats.frames_dropped += 1
                if self.on_drop is not None:
                    self.on_drop(envelope)
                continue
            survivors += 1
            self._schedule_arrival(envelope, kind, extra_delay)
        if survivors == 0:
            # A raw channel recovers nothing: every copy gone means the
            # message is lost for good (sent == delivered + dropped +
            # in-flight stays true).
            self.stats.record_drop(kind)
        return envelope

    def _copy_dropped(self, kind: MessageKind) -> bool:
        """Does the wire eat this frame copy? (Decided per copy, matching
        the reliable and threaded transports.)"""
        if (
            self._loss_probability > 0.0
            and self._loss_rng.random() < self._loss_probability
        ):
            return True
        if self._injector is None:
            return False
        # drop_frame first, unconditionally: it consumes the loss RNG
        # stream, so a partition window does not perturb which frames
        # probabilistic loss eats outside the window.
        if self._injector.drop_frame(kind.is_user):
            return True
        return self._injector.partitioned(self._kernel.now)

    def _schedule_arrival(
        self, envelope: Envelope, kind: MessageKind, extra_delay: float
    ) -> None:
        rng = self._user_rng if kind.is_user else self._control_rng
        delay = self._latency.sample(rng)
        if extra_delay > 0.0:
            # A reordered frame escapes the FIFO clamp on purpose: it may
            # arrive after frames sent later. Clamp state is not advanced,
            # so subsequent traffic is not dragged behind the straggler.
            arrival = self._kernel.now + delay + extra_delay
        else:
            # Strictly increasing per-channel delivery times keep the link
            # FIFO and avoid same-channel ties in the kernel.
            arrival = max(self._kernel.now + delay, self._last_delivery_time + 1e-9)
            self._last_delivery_time = arrival
        self._message_index += 1
        self._in_flight.append(envelope)
        self._kernel.schedule_at(
            arrival,
            lambda env=envelope: self._arrive(env),
            priority=PRIORITY_DELIVERY,
            tiebreak=(str(self.id), self._message_index),
        )

    def _arrive(self, envelope: Envelope) -> None:
        if self._injector is None:
            # Without injected reorder/duplication the FIFO clamp guarantees
            # in-order arrival, so the head of _in_flight is the arriving
            # envelope — assert the channel model holds.
            assert self._in_flight and self._in_flight[0] is envelope, (
                f"FIFO violation on {self.id}"
            )
            self._in_flight.pop(0)
        else:
            # Faulty wire: duplicates and reordered frames arrive out of
            # order by design; drop the first matching copy.
            for index, pending in enumerate(self._in_flight):
                if pending is envelope:
                    del self._in_flight[index]
                    break
        self.stats.delivered += 1
        self.stats.total_latency += self._kernel.now - envelope.send_time
        assert self._deliver is not None
        self._deliver(envelope)
