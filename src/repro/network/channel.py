"""Reliable, FIFO, infinite-buffer channels on the simulation kernel.

§2.1: "Channels are assumed to have infinite buffers, to be error-free and
to deliver messages in the order sent." Delay is otherwise arbitrary.

FIFO is enforced even under random latency by clamping each delivery time to
be no earlier than the previously scheduled delivery on the same channel —
i.e. a fast message queues behind a slow one, exactly like a FIFO link.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.network.latency import FixedLatency, LatencyModel
from repro.network.message import Envelope, MessageKind
from repro.simulation.kernel import PRIORITY_DELIVERY, SimulationKernel
from repro.util.ids import ChannelId, SequenceGenerator


class ChannelStats:
    """Per-channel traffic accounting used by the overhead experiments."""

    __slots__ = ("sent", "delivered", "dropped", "sent_by_kind", "total_latency")

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.sent_by_kind = {kind: 0 for kind in MessageKind}
        self.total_latency = 0.0

    @property
    def user_sent(self) -> int:
        return self.sent_by_kind[MessageKind.USER]

    @property
    def control_sent(self) -> int:
        return self.sent - self.user_sent


class Channel:
    """One directed FIFO link.

    Deliveries are scheduled on the kernel; the receiving side is a callback
    installed by the runtime (the process controller). The channel itself
    never inspects payloads — markers and user messages share the link, as
    the paper requires (markers must obey FIFO order relative to data for
    Lemma 2.2 to hold).
    """

    def __init__(
        self,
        channel_id: ChannelId,
        kernel: SimulationKernel,
        user_rng: random.Random,
        control_rng: random.Random,
        sequences: SequenceGenerator,
        latency: Optional[LatencyModel] = None,
        loss_probability: float = 0.0,
        loss_rng: Optional[random.Random] = None,
    ) -> None:
        # Two independent latency streams: control messages (markers) must
        # not consume random draws that user messages would otherwise get,
        # or injecting debugging traffic would perturb the user execution
        # and break cross-run comparisons (experiment E2) — the simulation
        # analogue of the paper's §5 requirement that the debugger impose
        # only minimal change on the program.
        self.id = channel_id
        self._kernel = kernel
        self._user_rng = user_rng
        self._control_rng = control_rng
        self._sequences = sequences
        self._latency = latency or FixedLatency(1.0)
        # The paper assumes error-free channels (§2.1); loss support exists
        # only so the ablation benches can *measure* what that assumption
        # buys. Losses draw from their own RNG stream so enabling them does
        # not perturb latency draws.
        self._loss_probability = loss_probability
        self._loss_rng = loss_rng or random.Random(f"loss|{channel_id}")
        self._deliver: Optional[Callable[[Envelope], None]] = None
        self._last_delivery_time = 0.0
        self._message_index = 0
        self._in_flight: List[Envelope] = []
        self.stats = ChannelStats()

    def connect(self, deliver: Callable[[Envelope], None]) -> None:
        """Install the receiver-side delivery callback (runtime wiring)."""
        self._deliver = deliver

    @property
    def in_flight(self) -> List[Envelope]:
        """Envelopes currently travelling on this channel (oldest first)."""
        return list(self._in_flight)

    def send(self, kind: MessageKind, payload: object, clock: object = None) -> Envelope:
        """Emit one message from ``src`` toward ``dst``.

        Returns the envelope so callers (event logging) can reference it.
        ``clock`` piggybacks the sender's logical clocks on control traffic.
        """
        if self._deliver is None:
            raise RuntimeError(f"channel {self.id} is not connected")
        envelope = Envelope(
            channel=self.id,
            kind=kind,
            payload=payload,
            send_time=self._kernel.now,
            seq=self._sequences.next(),
            clock=clock,
        )
        self.stats.sent += 1
        self.stats.sent_by_kind[kind] += 1
        if (
            self._loss_probability > 0.0
            and self._loss_rng.random() < self._loss_probability
        ):
            self.stats.dropped += 1
            return envelope
        rng = self._user_rng if kind.is_user else self._control_rng
        delay = self._latency.sample(rng)
        # Strictly increasing per-channel delivery times keep the link FIFO
        # and avoid same-channel ties in the kernel.
        arrival = max(self._kernel.now + delay, self._last_delivery_time + 1e-9)
        self._last_delivery_time = arrival
        self._message_index += 1
        self._in_flight.append(envelope)
        self._kernel.schedule_at(
            arrival,
            lambda env=envelope: self._arrive(env),
            priority=PRIORITY_DELIVERY,
            tiebreak=(str(self.id), self._message_index),
        )
        return envelope

    def _arrive(self, envelope: Envelope) -> None:
        # FIFO clamping guarantees in-order arrival, so the head of
        # _in_flight is always the arriving envelope.
        assert self._in_flight and self._in_flight[0] is envelope, (
            f"FIFO violation on {self.id}"
        )
        self._in_flight.pop(0)
        self.stats.delivered += 1
        self.stats.total_latency += self._kernel.now - envelope.send_time
        assert self._deliver is not None
        self._deliver(envelope)
