"""Channel latency models.

The paper's algorithms must be correct under *any* finite, positive message
delay ("we cannot instantly transmit a command to halt all processes", §1).
Latency models turn that universal quantifier into something testable: the
experiment harnesses sweep models and seeds to cover many interleavings.

Each model is a callable ``(rng) -> delay``; channels draw one delay per
message from their model using the system-wide seeded RNG, so identical
seeds give identical delays — the backbone of the E2 exact-equality check.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.util.validation import require, require_non_negative, require_positive


class LatencyModel(ABC):
    """Distribution of per-message channel delay (virtual time units)."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one message delay. Must be > 0 (messages are never instant)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class FixedLatency(LatencyModel):
    """Every message takes exactly ``delay``."""

    def __init__(self, delay: float = 1.0) -> None:
        self.delay = require_positive(delay, "delay")

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"FixedLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        self.low = require_positive(low, "low")
        self.high = require_positive(high, "high")
        require(low <= high, f"low ({low}) must be <= high ({high})")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency(LatencyModel):
    """Heavy-ish tail: ``floor + Exp(mean)``.

    A positive ``floor`` keeps delays strictly positive and models the
    irreducible propagation cost of a real link.
    """

    def __init__(self, mean: float = 1.0, floor: float = 0.01) -> None:
        self.mean = require_positive(mean, "mean")
        self.floor = require_positive(floor, "floor")

    def sample(self, rng: random.Random) -> float:
        return self.floor + rng.expovariate(1.0 / self.mean)

    def __repr__(self) -> str:
        return f"ExponentialLatency(mean={self.mean}, floor={self.floor})"


class SpikeLatency(LatencyModel):
    """Mostly-fast link with occasional large delay spikes.

    With probability ``spike_probability`` the delay is ``spike`` instead of
    ``base``. This model stresses the halting algorithm with markers that
    badly trail user traffic on *other* channels — the situation that makes
    naive broadcast halting drift (experiment E9).
    """

    def __init__(
        self,
        base: float = 0.5,
        spike: float = 20.0,
        spike_probability: float = 0.05,
    ) -> None:
        self.base = require_positive(base, "base")
        self.spike = require_positive(spike, "spike")
        self.spike_probability = require_non_negative(
            spike_probability, "spike_probability"
        )
        require(spike_probability <= 1.0, "spike_probability must be <= 1")

    def sample(self, rng: random.Random) -> float:
        if rng.random() < self.spike_probability:
            return self.spike
        return self.base

    def __repr__(self) -> str:
        return (
            f"SpikeLatency(base={self.base}, spike={self.spike}, "
            f"p={self.spike_probability})"
        )
