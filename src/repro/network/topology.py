"""Directed communication topologies.

A distributed program in the paper's model (§2.1, Fig. 1) is a finite set of
processes plus a finite set of *directed* channels. Topology matters to the
reproduction because §2.2.2 shows the basic Halting Algorithm fails exactly
when the channel graph is not strongly connected (Fig. 2's producer→consumer
pipeline), and the extended model (§2.2.3) repairs that by adding a debugger
process with channels both ways to every user process.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.util.errors import TopologyError
from repro.util.ids import ChannelId, ProcessId
from repro.util.validation import require_name, require_unique


class Topology:
    """An immutable-after-build directed graph of processes and channels."""

    def __init__(self) -> None:
        self._processes: List[ProcessId] = []
        self._channels: List[ChannelId] = []
        self._out: Dict[ProcessId, List[ChannelId]] = {}
        self._in: Dict[ProcessId, List[ChannelId]] = {}

    # -- construction -----------------------------------------------------

    def add_process(self, name: ProcessId) -> "Topology":
        require_name(name, "process name")
        if name in self._out:
            raise TopologyError(f"process {name!r} already exists")
        self._processes.append(name)
        self._out[name] = []
        self._in[name] = []
        return self

    def add_channel(self, src: ProcessId, dst: ProcessId) -> ChannelId:
        if src not in self._out:
            raise TopologyError(f"unknown process {src!r}")
        if dst not in self._out:
            raise TopologyError(f"unknown process {dst!r}")
        if src == dst:
            raise TopologyError(f"self-channel {src!r}->{dst!r} is not allowed")
        channel = ChannelId(src, dst)
        if channel in self._channels:
            raise TopologyError(f"channel {channel} already exists")
        self._channels.append(channel)
        self._out[src].append(channel)
        self._in[dst].append(channel)
        return channel

    def add_bidirectional(self, a: ProcessId, b: ProcessId) -> Tuple[ChannelId, ChannelId]:
        """Add both directions between ``a`` and ``b``."""
        return self.add_channel(a, b), self.add_channel(b, a)

    # -- queries ------------------------------------------------------------

    @property
    def processes(self) -> Tuple[ProcessId, ...]:
        return tuple(self._processes)

    @property
    def channels(self) -> Tuple[ChannelId, ...]:
        return tuple(self._channels)

    def outgoing(self, process: ProcessId) -> Tuple[ChannelId, ...]:
        """Channels incident on and directed away from ``process`` (§2.1)."""
        self._require_process(process)
        return tuple(self._out[process])

    def incoming(self, process: ProcessId) -> Tuple[ChannelId, ...]:
        self._require_process(process)
        return tuple(self._in[process])

    def neighbors_out(self, process: ProcessId) -> Tuple[ProcessId, ...]:
        return tuple(c.dst for c in self.outgoing(process))

    def neighbors_in(self, process: ProcessId) -> Tuple[ProcessId, ...]:
        return tuple(c.src for c in self.incoming(process))

    def has_channel(self, src: ProcessId, dst: ProcessId) -> bool:
        return ChannelId(src, dst) in set(self._channels)

    def _require_process(self, process: ProcessId) -> None:
        if process not in self._out:
            raise TopologyError(f"unknown process {process!r}")

    # -- graph analyses -----------------------------------------------------

    def reachable_from(self, start: ProcessId) -> Set[ProcessId]:
        """Processes reachable from ``start`` along channel directions.

        Marker-based algorithms can only halt/record the processes in this
        set (markers travel along channels), which is precisely why the basic
        algorithm fails on Fig. 2 when the consumer initiates.
        """
        self._require_process(start)
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for channel in self._out[node]:
                if channel.dst not in seen:
                    seen.add(channel.dst)
                    frontier.append(channel.dst)
        return seen

    def is_strongly_connected(self) -> bool:
        """True iff every process can reach every other (C&L's assumption)."""
        if not self._processes:
            return True
        first = self._processes[0]
        if self.reachable_from(first) != set(self._processes):
            return False
        reverse = Topology()
        for process in self._processes:
            reverse.add_process(process)
        for channel in self._channels:
            reverse.add_channel(channel.dst, channel.src)
        return reverse.reachable_from(first) == set(reverse._processes)

    def with_debugger(self, debugger: ProcessId = "d") -> "Topology":
        """The extended model of §2.2.3: a new topology that adds a debugger
        process with a control channel to and from every user process.

        The result is always strongly connected (Fig. 3), which is the whole
        point: "there always is a message path from a process to any other
        process."
        """
        extended = Topology()
        for process in self._processes:
            extended.add_process(process)
        extended.add_process(debugger)
        for channel in self._channels:
            extended.add_channel(channel.src, channel.dst)
        for process in self._processes:
            extended.add_bidirectional(debugger, process)
        return extended

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(processes={len(self._processes)}, "
            f"channels={len(self._channels)})"
        )


# -- builders for the shapes the experiments sweep over ----------------------


def ring(names: Sequence[ProcessId], bidirectional: bool = False) -> Topology:
    """Unidirectional (or bidirectional) ring — cyclic, strongly connected."""
    topo = Topology()
    names = list(names)
    require_unique(names, "process name")
    for name in names:
        topo.add_process(name)
    for i, name in enumerate(names):
        nxt = names[(i + 1) % len(names)]
        if not topo.has_channel(name, nxt):
            topo.add_channel(name, nxt)
        if bidirectional and not topo.has_channel(nxt, name):
            # A two-station "ring" already has both directions after the
            # forward pass; skip duplicates.
            topo.add_channel(nxt, name)
    return topo


def pipeline(names: Sequence[ProcessId]) -> Topology:
    """Acyclic producer→…→consumer chain — Fig. 2's pathological shape."""
    topo = Topology()
    names = list(names)
    require_unique(names, "process name")
    for name in names:
        topo.add_process(name)
    for src, dst in zip(names, names[1:]):
        topo.add_channel(src, dst)
    return topo


def star(center: ProcessId, leaves: Sequence[ProcessId]) -> Topology:
    """Bidirectional star around ``center`` — strongly connected, sparse."""
    topo = Topology()
    topo.add_process(center)
    for leaf in leaves:
        topo.add_process(leaf)
        topo.add_bidirectional(center, leaf)
    return topo


def complete(names: Sequence[ProcessId]) -> Topology:
    """Fully connected digraph — every ordered pair gets a channel."""
    topo = Topology()
    names = list(names)
    require_unique(names, "process name")
    for name in names:
        topo.add_process(name)
    for src in names:
        for dst in names:
            if src != dst:
                topo.add_channel(src, dst)
    return topo


def random_topology(
    names: Sequence[ProcessId],
    edge_probability: float,
    seed: int,
    ensure_strongly_connected: bool = True,
) -> Topology:
    """Random digraph; optionally overlaid on a ring to guarantee strong
    connectivity (so the basic algorithm is applicable)."""
    rng = random.Random(seed)
    names = list(names)
    topo = ring(names) if ensure_strongly_connected else Topology()
    if not ensure_strongly_connected:
        for name in names:
            topo.add_process(name)
    for src in names:
        for dst in names:
            if src == dst or topo.has_channel(src, dst):
                continue
            if rng.random() < edge_probability:
                topo.add_channel(src, dst)
    return topo


def two_clusters(
    left: Sequence[ProcessId],
    right: Sequence[ProcessId],
    bridges: Iterable[Tuple[ProcessId, ProcessId]] = (),
) -> Topology:
    """Two complete clusters joined by a few bidirectional bridge edges.

    With sparse bridges and low cross-traffic this is the "infrequent
    interactions" scenario of §2.2.2 problem 1 (experiment E4).
    """
    topo = Topology()
    left, right = list(left), list(right)
    require_unique(left + right, "process name")
    for name in left + right:
        topo.add_process(name)
    for group in (left, right):
        for src in group:
            for dst in group:
                if src != dst:
                    topo.add_channel(src, dst)
    for a, b in bridges:
        topo.add_bidirectional(a, b)
    return topo
