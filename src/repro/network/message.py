"""Message model: envelopes and message kinds.

The paper (§3.6) notes that "we can append to every message originated by the
program some kind of tag so that each process can distinguish the genuine
messages from halt markers and predicate markers which are introduced by the
debugging system." :class:`MessageKind` is exactly that tag. Every payload
travels inside an :class:`Envelope` that records routing metadata; envelopes
are immutable so recorded channel states cannot be mutated after the fact.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Any

from repro.util.ids import ChannelId


class MessageKind(enum.Enum):
    """Tag distinguishing program traffic from debugging-system traffic."""

    #: A genuine message of the program under debug.
    USER = "user"
    #: Chandy & Lamport snapshot marker (§2.1).
    SNAPSHOT_MARKER = "snapshot_marker"
    #: Halt marker of the Halting Algorithm (§2.2.1), carries a halt_id.
    HALT_MARKER = "halt_marker"
    #: Predicate marker of the Linked Predicate Detection Algorithm (§3.6).
    PREDICATE_MARKER = "predicate_marker"
    #: Debugger-process control traffic (extended model, §2.2.3):
    #: commands, notifications, resume orders.
    DEBUG_CONTROL = "debug_control"

    @property
    def is_user(self) -> bool:
        return self is MessageKind.USER

    @property
    def is_debug(self) -> bool:
        """True for any message introduced by the debugging system."""
        return self is not MessageKind.USER


@dataclass(frozen=True)
class Envelope:
    """A message in flight on one directed channel.

    ``send_time`` is the virtual time at which the sender emitted the
    envelope; ``seq`` is a per-system unique, per-channel increasing sequence
    number used to verify FIFO delivery and to compare recorded channel
    states structurally.

    ``clock`` piggybacks the sender's logical clocks on *control* messages
    (user messages carry theirs inside :class:`~repro.runtime.payload.UserMessage`).
    Lamport's happened-before is defined over every message of the system —
    markers included — and the Linked Predicate guarantee ("stage i+1 is
    causally after stage i") is established precisely through predicate
    markers, so the instrumentation clocks must see them.
    """

    channel: ChannelId
    kind: MessageKind
    payload: Any
    send_time: float
    seq: int
    #: ``(lamport, vector)`` of the sender at the send, for control traffic.
    clock: Any = None

    @property
    def src(self) -> str:
        return self.channel.src

    @property
    def dst(self) -> str:
        return self.channel.dst

    def __repr__(self) -> str:
        return (
            f"Envelope({self.channel}, {self.kind.value}, seq={self.seq}, "
            f"t={self.send_time:.4f}, payload={self.payload!r})"
        )

    def content_key(self) -> tuple:
        """Identity of the message for cross-run state comparison.

        Experiment E2 compares the channel contents of a *halted* run with
        the recorded channel state of a *snapshot* run. Sequence numbers are
        allocated globally and the two runs inject different control traffic,
        so ``seq`` differs; what must match is the channel, kind and payload
        stream in order.
        """
        return (str(self.channel), self.kind.value, _freeze(self.payload))


def _freeze(value: Any) -> Any:
    """Best-effort conversion of a payload to a hashable comparison key."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (f.name, _freeze(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return tuple(sorted(_freeze(v) for v in value))
    return value
