"""Reliable delivery: earning §2.1's channel model over a faulty wire.

The paper *assumes* channels are error-free, FIFO, and infinite-buffered.
:class:`ReliableChannel` establishes those properties by construction over
a wire that loses, duplicates, and reorders frames (driven by a
:class:`~repro.faults.injection.ChannelFaultInjector`):

* **per-channel sequence numbers** — every logical message gets an rseq;
  the receiver delivers strictly in rseq order (FIFO) and exactly once
  (duplicate suppression), so Lemma 2.2's "markers behind data" argument
  holds again: a halt marker's rseq orders it after every earlier send on
  the channel, regardless of what the wire did to individual frames;
* **cumulative acknowledgements** — each arriving frame triggers an ack of
  the highest in-order rseq received; acks travel the reverse direction of
  the same link and are themselves lossy;
* **timeout + exponential backoff with jitter** — unacked messages are
  retransmitted; backoff doubles per attempt up to a cap, jitter breaks
  retransmit synchronisation between channels;
* **capped retries** — after ``max_retries`` attempts the sender gives up.
  If the receiver never delivered the message the channel is declared
  *failed* (the transport's analogue of a TCP reset); this only happens in
  practice when the far host crashed, and it is what lets a halting run
  over a crashed process terminate instead of retransmitting forever.

The class is interface-compatible with
:class:`~repro.network.channel.Channel` (``send`` / ``connect`` / ``id`` /
``stats`` / ``in_flight``), so the runtime wires whichever the
configuration asks for and every algorithm above is oblivious.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.faults.injection import ChannelFaultInjector
from repro.network.channel import ChannelStats
from repro.network.latency import FixedLatency, LatencyModel
from repro.network.message import Envelope, MessageKind
from repro.simulation.kernel import (
    PRIORITY_DELIVERY,
    PRIORITY_TIMER,
    EventHandle,
    SimulationKernel,
)
from repro.util.errors import DeliveryError
from repro.util.ids import ChannelId, SequenceGenerator
from repro.util.validation import require


@dataclass(frozen=True)
class ReliabilityConfig:
    """Tuning knobs of the ack/retransmit protocol.

    The defaults assume the harness's usual latency scale (mean ~1 virtual
    time unit): the base timeout comfortably exceeds one round trip, and
    twelve retries push the residual per-message failure probability below
    1e-3 even at 50% frame loss.
    """

    base_timeout: float = 4.0
    backoff: float = 2.0
    max_timeout: float = 64.0
    jitter: float = 0.25
    max_retries: int = 12

    def __post_init__(self) -> None:
        require(self.base_timeout > 0, f"base_timeout must be > 0, got {self.base_timeout!r}")
        require(self.backoff >= 1.0, f"backoff must be >= 1, got {self.backoff!r}")
        require(self.max_timeout >= self.base_timeout,
                "max_timeout must be >= base_timeout")
        require(0.0 <= self.jitter <= 1.0, f"jitter must be in [0, 1], got {self.jitter!r}")
        require(self.max_retries >= 0, f"max_retries must be >= 0, got {self.max_retries!r}")

    def timeout_for(self, attempts: int, rng: random.Random) -> float:
        """Backoff schedule: base * backoff^attempts, capped, jittered."""
        timeout = min(self.base_timeout * (self.backoff ** attempts), self.max_timeout)
        if self.jitter > 0.0:
            timeout *= 1.0 + self.jitter * rng.random()
        return timeout


class _Pending:
    """Sender-side state of one not-yet-acknowledged message."""

    __slots__ = ("envelope", "attempts", "retry_handle")

    def __init__(self, envelope: Envelope) -> None:
        self.envelope = envelope
        self.attempts = 0
        self.retry_handle: Optional[EventHandle] = None


class ReliableChannel:
    """One directed link with FIFO-exactly-once semantics over a lossy wire.

    Both protocol endpoints live in this object (the simulator owns both
    hosts); the *wire* between them is where faults are injected. The
    ``endpoint_down`` hook lets the runtime model host crashes: a dead
    receiver neither delivers nor acks, a dead sender stops retransmitting.
    """

    def __init__(
        self,
        channel_id: ChannelId,
        kernel: SimulationKernel,
        user_rng: random.Random,
        control_rng: random.Random,
        sequences: SequenceGenerator,
        latency: Optional[LatencyModel] = None,
        injector: Optional[ChannelFaultInjector] = None,
        config: Optional[ReliabilityConfig] = None,
        retry_rng: Optional[random.Random] = None,
    ) -> None:
        self.id = channel_id
        self._kernel = kernel
        self._user_rng = user_rng
        self._control_rng = control_rng
        self._sequences = sequences
        self._latency = latency or FixedLatency(1.0)
        self._injector = injector
        self.config = config or ReliabilityConfig()
        self._retry_rng = retry_rng or random.Random(f"retry|{channel_id}")
        self._deliver: Optional[Callable[[Envelope], None]] = None
        #: Runtime hook: ``endpoint_down("src"/"dst")`` → is that host dead?
        self.endpoint_down: Callable[[str], bool] = lambda side: False
        #: Called when the wire eats a data frame (recoverable loss).
        self.on_drop: Optional[Callable[[Envelope], None]] = None
        #: Called with the envelope when retransmission gives up on an
        #: undelivered message (the channel is failed at that point).
        self.on_give_up: Optional[Callable[[Envelope], None]] = None
        #: Observability hooks: ``on_retransmit(rseq, envelope, attempts)``
        #: after each retransmitted frame, ``on_recovered(rseq, envelope,
        #: attempts)`` when an ack clears a message that needed retries.
        self.on_retransmit: Optional[Callable[[int, Envelope, int], None]] = None
        self.on_recovered: Optional[Callable[[int, Envelope, int], None]] = None
        self.stats = ChannelStats()
        #: True once an undelivered message exhausted its retries.
        self.failed = False

        # Sender state.
        self._next_rseq = 1
        self._unacked: Dict[int, _Pending] = {}
        # Receiver state.
        self._expected = 1
        self._out_of_order: Dict[int, Envelope] = {}
        # Envelopes sent but not yet handed to the application, by rseq —
        # the channel contents a snapshot would record.
        self._undelivered: Dict[int, Envelope] = {}
        self._frame_index = 0

    # -- Channel-compatible surface ------------------------------------------

    def connect(self, deliver: Callable[[Envelope], None]) -> None:
        self._deliver = deliver

    @property
    def in_flight(self) -> List[Envelope]:
        """Messages sent but not yet delivered to the application, in send
        (== delivery) order — the logical channel contents."""
        return [self._undelivered[rseq] for rseq in sorted(self._undelivered)]

    def send(self, kind: MessageKind, payload: object, clock: object = None) -> Envelope:
        if self._deliver is None:
            raise RuntimeError(f"channel {self.id} is not connected")
        envelope = Envelope(
            channel=self.id,
            kind=kind,
            payload=payload,
            send_time=self._kernel.now,
            seq=self._sequences.next(),
            clock=clock,
        )
        self.stats.sent += 1
        self.stats.sent_by_kind[kind] += 1
        rseq = self._next_rseq
        self._next_rseq += 1
        self._unacked[rseq] = _Pending(envelope)
        self._undelivered[rseq] = envelope
        self._transmit(rseq)
        self._arm_retry(rseq)
        return envelope

    # -- data path -------------------------------------------------------------

    def _transmit(self, rseq: int) -> None:
        pending = self._unacked.get(rseq)
        if pending is None or self.endpoint_down("src"):
            return
        envelope = pending.envelope
        is_user = envelope.kind.is_user
        copies = 1
        if self._injector is not None:
            copies += self._injector.duplicates(is_user)
        for _ in range(copies):
            if self._injector is not None and self._injector.drop_frame(is_user):
                self.stats.frames_dropped += 1
                if self.on_drop is not None:
                    self.on_drop(envelope)
                continue
            rng = self._user_rng if is_user else self._control_rng
            delay = self._latency.sample(rng)
            if self._injector is not None:
                delay += self._injector.extra_delay(is_user)
            self._frame_index += 1
            self._kernel.schedule(
                delay,
                lambda r=rseq, env=envelope: self._frame_arrive(r, env),
                priority=PRIORITY_DELIVERY,
                tiebreak=(str(self.id), self._frame_index),
            )

    def _frame_arrive(self, rseq: int, envelope: Envelope) -> None:
        if self.endpoint_down("dst"):
            # The receiving host is dead: the NIC neither delivers nor acks.
            return
        if rseq < self._expected or rseq in self._out_of_order:
            # Duplicate (wire-made or retransmission of something already
            # received): suppress, but re-ack — the first ack may be lost.
            self.stats.duplicates_suppressed += 1
            self._send_ack(envelope.kind.is_user)
            return
        self._out_of_order[rseq] = envelope
        while self._expected in self._out_of_order:
            head = self._out_of_order.pop(self._expected)
            self._undelivered.pop(self._expected, None)
            self._expected += 1
            self.stats.delivered += 1
            self.stats.total_latency += self._kernel.now - head.send_time
            assert self._deliver is not None
            self._deliver(head)
        self._send_ack(envelope.kind.is_user)

    # -- ack path ---------------------------------------------------------------

    def _send_ack(self, is_user: bool) -> None:
        cumulative = self._expected - 1
        self.stats.acks_sent += 1
        if self._injector is not None and self._injector.drop_ack(is_user):
            self.stats.acks_dropped += 1
            return
        # Acks ride the reverse direction of the same physical link; they
        # draw latency from the control stream (they are transport frames,
        # invisible to the program under debug).
        delay = self._latency.sample(self._control_rng)
        self._frame_index += 1
        self._kernel.schedule(
            delay,
            lambda cum=cumulative: self._ack_arrive(cum),
            priority=PRIORITY_DELIVERY,
            tiebreak=("ack", str(self.id), self._frame_index),
        )

    def _ack_arrive(self, cumulative: int) -> None:
        if self.endpoint_down("src"):
            return
        for rseq in [r for r in self._unacked if r <= cumulative]:
            pending = self._unacked.pop(rseq)
            if pending.retry_handle is not None:
                self._kernel.cancel(pending.retry_handle)
            if pending.attempts > 0 and self.on_recovered is not None:
                self.on_recovered(rseq, pending.envelope, pending.attempts)

    # -- retransmission ----------------------------------------------------------

    def _arm_retry(self, rseq: int) -> None:
        pending = self._unacked.get(rseq)
        if pending is None:
            return
        timeout = self.config.timeout_for(pending.attempts, self._retry_rng)
        pending.retry_handle = self._kernel.schedule(
            timeout,
            lambda r=rseq: self._retry_fire(r),
            priority=PRIORITY_TIMER,
            tiebreak=("rtx", str(self.id), rseq, pending.attempts),
        )

    def _retry_fire(self, rseq: int) -> None:
        pending = self._unacked.get(rseq)
        if pending is None:
            return
        if self.endpoint_down("src"):
            # Dead senders don't retransmit; release the state quietly.
            self._unacked.pop(rseq, None)
            return
        pending.attempts += 1
        if pending.attempts > self.config.max_retries:
            self._give_up(rseq, pending)
            return
        self.stats.retransmits += 1
        if self.on_retransmit is not None:
            self.on_retransmit(rseq, pending.envelope, pending.attempts)
        self._transmit(rseq)
        self._arm_retry(rseq)

    def _give_up(self, rseq: int, pending: _Pending) -> None:
        self._unacked.pop(rseq, None)
        self.stats.gave_up += 1
        delivered = rseq < self._expected or rseq in self._out_of_order
        if delivered:
            # Only the ack was unlucky; the message arrived. Nothing lost.
            return
        # The message never made it and never will: the channel's FIFO
        # promise cannot be kept past this hole — declare it failed.
        self.failed = True
        envelope = pending.envelope
        self.stats.dropped += 1
        self.stats.dropped_by_kind[envelope.kind] += 1
        self._undelivered.pop(rseq, None)
        if self.on_give_up is not None:
            self.on_give_up(envelope)

    # -- introspection ------------------------------------------------------------

    @property
    def unacked_count(self) -> int:
        return len(self._unacked)

    def _check_invariants(self) -> None:  # pragma: no cover - debugging aid
        if self._expected < 1 or self._next_rseq < self._expected:
            raise DeliveryError(
                f"{self.id}: rseq window corrupt "
                f"(next={self._next_rseq}, expected={self._expected})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReliableChannel({self.id}, unacked={len(self._unacked)}, "
            f"expected={self._expected}, failed={self.failed})"
        )
