"""Gossip / rumor-spreading workload.

One process learns a rumor and gossips it with a TTL; every first-time
recipient re-gossips. Produces bursty fan-out traffic (very different in
shape from the steady chatter workload) and a natural Linked-Predicate
scenario: "halt when the rumor reaches pX after passing through pY".
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.network.topology import Topology, random_topology
from repro.runtime.context import ProcessContext
from repro.runtime.process import Process
from repro.util.ids import ProcessId


class GossipProcess(Process):
    """Forwards each fresh rumor to ``fanout`` random neighbours."""

    def __init__(self, fanout: int = 2, origin: bool = False,
                 ttl: int = 6, delay: float = 0.4) -> None:
        self.fanout = fanout
        self.origin = origin
        self.ttl = ttl
        self.delay = delay

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.state["heard"] = False
        ctx.state["relayed"] = 0
        if self.origin:
            ctx.set_timer("start_rumor", self.delay)

    def on_timer(self, ctx: ProcessContext, name: str, payload: object) -> None:
        if name == "start_rumor":
            ctx.state["heard"] = True
            ctx.mark("rumor_started")
            self._spread(ctx, self.ttl)
        elif name == "relay":
            self._spread(ctx, int(payload))  # type: ignore[arg-type]

    def on_message(self, ctx: ProcessContext, src: ProcessId, payload: object) -> None:
        message = dict(payload)  # type: ignore[arg-type]
        ttl = message["ttl"]
        if not ctx.state["heard"]:
            ctx.state["heard"] = True
            ctx.mark("rumor_heard", hop=self.ttl - ttl)
            if ttl > 0:
                ctx.set_timer("relay", self.delay * (0.5 + ctx.rng.random()), payload=ttl - 1)

    def _spread(self, ctx: ProcessContext, ttl: int) -> None:
        neighbours = list(ctx.neighbors_out())
        if not neighbours:
            return
        ctx.rng.shuffle(neighbours)
        for target in neighbours[: self.fanout]:
            ctx.send(target, {"type": "rumor", "ttl": ttl}, tag="rumor")
            ctx.state["relayed"] = ctx.state["relayed"] + 1


def build(
    n: int = 8,
    fanout: int = 2,
    ttl: int = 6,
    edge_probability: float = 0.35,
    seed: int = 0,
    origin: Optional[ProcessId] = None,
    delay: float = 0.4,
) -> Tuple[Topology, Dict[ProcessId, Process]]:
    names = [f"g{i}" for i in range(n)]
    topo = random_topology(names, edge_probability, seed=seed)
    origin = origin or names[0]
    processes: Dict[ProcessId, Process] = {
        name: GossipProcess(fanout=fanout, origin=(name == origin),
                            ttl=ttl, delay=delay)
        for name in names
    }
    return topo, processes
