"""Producer→stages→consumer pipeline — Figure 2's pathological topology.

The channel graph is acyclic, so the basic Halting Algorithm *cannot* halt
upstream processes when a downstream process initiates: "there is no way to
send the halt marker to the producer process" (§2.2.2). Experiment E3 runs
this workload under the basic algorithm (demonstrating the failure) and
under the extended debugger model (demonstrating the fix).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.network.topology import Topology, pipeline
from repro.runtime.context import ProcessContext
from repro.runtime.process import Process
from repro.util.ids import ProcessId


class Producer(Process):
    """Emits ``items`` sequence numbers downstream, one per tick."""

    def __init__(self, items: int, tick: float = 0.5) -> None:
        self.items = items
        self.tick = tick

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.state["produced"] = 0
        ctx.set_timer("produce", self.tick)

    def on_timer(self, ctx: ProcessContext, name: str, payload: object) -> None:
        produced = ctx.state["produced"]
        if produced >= self.items:
            return
        with ctx.procedure("produce"):
            ctx.send(ctx.neighbors_out()[0], produced, tag="item")
            ctx.state["produced"] = produced + 1
        ctx.set_timer("produce", self.tick * (0.5 + ctx.rng.random()))


class Stage(Process):
    """Transforms items (here: +1000) and forwards them."""

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.state["processed"] = 0

    def on_message(self, ctx: ProcessContext, src: ProcessId, payload: object) -> None:
        with ctx.procedure("transform"):
            ctx.state["processed"] = ctx.state["processed"] + 1
            ctx.send(ctx.neighbors_out()[0], int(payload) + 1000, tag="item")  # type: ignore[arg-type]


class Consumer(Process):
    """Accumulates whatever reaches the end of the pipe."""

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.state["consumed"] = 0
        ctx.state["last_item"] = -1

    def on_message(self, ctx: ProcessContext, src: ProcessId, payload: object) -> None:
        with ctx.procedure("consume"):
            ctx.state["consumed"] = ctx.state["consumed"] + 1
            ctx.state["last_item"] = int(payload)  # type: ignore[arg-type]


def build(
    stages: int = 1, items: int = 30, tick: float = 0.5
) -> Tuple[Topology, Dict[ProcessId, Process]]:
    """``producer -> stage1 .. stageN -> consumer`` (``stages`` may be 0)."""
    names = ["producer"] + [f"stage{i}" for i in range(1, stages + 1)] + ["consumer"]
    topo = pipeline(names)
    processes: Dict[ProcessId, Process] = {"producer": Producer(items, tick)}
    for i in range(1, stages + 1):
        processes[f"stage{i}"] = Stage()
    processes["consumer"] = Consumer()
    return topo, processes
