"""Ricart-Agrawala distributed mutual exclusion.

A real coordination protocol for the debugger to chew on. Critical-section
entry and exit are published as ``cs_enter`` / ``cs_exit`` marks, so
breakpoints like "halt when branch A enters the critical section after
branch B did" are one Linked Predicate away, and the mutual-exclusion
safety property is checkable from the event log with vector clocks: any two
critical sections at different processes must be causally ordered.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.network.topology import Topology, complete
from repro.runtime.context import ProcessContext
from repro.runtime.process import Process
from repro.util.ids import ProcessId


class MutexProcess(Process):
    """One Ricart-Agrawala participant wanting the lock ``entries`` times."""

    def __init__(self, entries: int, think: float = 1.0, hold: float = 0.4) -> None:
        self.entries = entries
        self.think = think
        self.hold = hold

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.state["clock"] = 0
        ctx.state["entries_done"] = 0
        ctx.state["in_cs"] = False
        ctx.state["requesting"] = False
        ctx.state["request_ts"] = 0
        ctx.state["replies_pending"] = 0
        ctx.state["deferred"] = []
        ctx.set_timer("want_cs", self.think * (0.5 + ctx.rng.random()))

    # -- protocol ----------------------------------------------------------

    def on_timer(self, ctx: ProcessContext, name: str, payload: object) -> None:
        if name == "want_cs":
            self._request(ctx)
        elif name == "exit_cs":
            self._exit_cs(ctx)

    def _request(self, ctx: ProcessContext) -> None:
        if ctx.state["requesting"] or ctx.state["in_cs"]:
            return
        with ctx.procedure("request_cs"):
            ctx.state["clock"] = ctx.state["clock"] + 1
            ctx.state["requesting"] = True
            ctx.state["request_ts"] = ctx.state["clock"]
            peers = ctx.neighbors_out()
            ctx.state["replies_pending"] = len(peers)
            for peer in peers:
                ctx.send(
                    peer,
                    {"type": "request", "ts": ctx.state["request_ts"], "from": ctx.name},
                    tag="request",
                )

    def on_message(self, ctx: ProcessContext, src: ProcessId, payload: object) -> None:
        message = dict(payload)  # type: ignore[arg-type]
        ctx.state["clock"] = max(ctx.state["clock"], int(message.get("ts", 0))) + 1
        if message["type"] == "request":
            self._on_request(ctx, src, message)
        elif message["type"] == "reply":
            self._on_reply(ctx)

    def _on_request(self, ctx: ProcessContext, src: ProcessId, message: dict) -> None:
        mine = (ctx.state["request_ts"], ctx.name)
        theirs = (message["ts"], message["from"])
        busy = ctx.state["in_cs"] or (ctx.state["requesting"] and mine < theirs)
        if busy:
            deferred = list(ctx.state["deferred"])
            deferred.append(src)
            ctx.state["deferred"] = deferred
        else:
            ctx.send(src, {"type": "reply", "ts": ctx.state["clock"]}, tag="reply")

    def _on_reply(self, ctx: ProcessContext) -> None:
        ctx.state["replies_pending"] = ctx.state["replies_pending"] - 1
        if ctx.state["requesting"] and ctx.state["replies_pending"] == 0:
            self._enter_cs(ctx)

    # -- critical section -----------------------------------------------------

    def _enter_cs(self, ctx: ProcessContext) -> None:
        ctx.state["in_cs"] = True
        ctx.state["requesting"] = False
        ctx.mark("cs_enter", entry=ctx.state["entries_done"])
        ctx.set_timer("exit_cs", self.hold)

    def _exit_cs(self, ctx: ProcessContext) -> None:
        ctx.state["in_cs"] = False
        ctx.state["entries_done"] = ctx.state["entries_done"] + 1
        ctx.mark("cs_exit", entry=ctx.state["entries_done"] - 1)
        deferred = list(ctx.state["deferred"])
        ctx.state["deferred"] = []
        for peer in deferred:
            ctx.send(peer, {"type": "reply", "ts": ctx.state["clock"]}, tag="reply")
        if ctx.state["entries_done"] < self.entries:
            ctx.set_timer("want_cs", self.think * (0.5 + ctx.rng.random()))


def build(
    n: int = 3, entries: int = 3, think: float = 1.0, hold: float = 0.4
) -> Tuple[Topology, Dict[ProcessId, Process]]:
    names = [f"m{i}" for i in range(n)]
    topo = complete(names)
    processes: Dict[ProcessId, Process] = {
        name: MutexProcess(entries=entries, think=think, hold=hold)
        for name in names
    }
    return topo, processes
