"""Echo (wave) algorithm: spanning-tree construction by flooding.

Chang's echo algorithm: an initiator floods a token to all neighbours;
every other process adopts the first sender as its parent, forwards the
token to its remaining neighbours, and echoes back to the parent once all
its neighbours have answered. When the initiator has heard from all its
neighbours, the wave has both built a spanning tree and (implicitly)
detected that every process was reached.

Debugging-wise this workload has two nice properties: a clear multi-stage
causal structure for Linked Predicates ("wave reaches x, then the echo
returns") and a terminating global condition (``done`` at the initiator)
whose detection *is* the algorithm — compare with the debugger detecting
it from outside.

Works on any connected *bidirectional* topology (each flood edge needs its
reverse for the echo).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.network.topology import Topology
from repro.runtime.context import ProcessContext
from repro.runtime.process import Process
from repro.util.ids import ProcessId


class EchoProcess(Process):
    """One node of the wave."""

    def __init__(self, initiator: bool = False, start_delay: float = 0.5) -> None:
        self.initiator = initiator
        self.start_delay = start_delay

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.state["parent"] = None
        ctx.state["pending"] = len(ctx.neighbors_out())
        ctx.state["done"] = False
        ctx.state["children"] = []
        if self.initiator:
            ctx.set_timer("start_wave", self.start_delay)

    def on_timer(self, ctx: ProcessContext, name: str, payload: object) -> None:
        ctx.mark("wave_started")
        ctx.state["parent"] = ctx.name  # roots point at themselves
        for neighbour in ctx.neighbors_out():
            ctx.send(neighbour, {"type": "token"}, tag="token")

    def on_message(self, ctx: ProcessContext, src: ProcessId, payload: object) -> None:
        message = dict(payload)  # type: ignore[arg-type]
        if message["type"] == "token":
            self._on_token(ctx, src)
        elif message["type"] == "echo":
            children = list(ctx.state["children"])
            children.append(src)
            ctx.state["children"] = children
            self._account(ctx)

    def _on_token(self, ctx: ProcessContext, src: ProcessId) -> None:
        if ctx.state["parent"] is None:
            # First token: adopt the sender, flood the rest.
            ctx.state["parent"] = src
            ctx.mark("joined_wave", parent=src)
            for neighbour in ctx.neighbors_out():
                if neighbour != src:
                    ctx.send(neighbour, {"type": "token"}, tag="token")
            if len(ctx.neighbors_out()) == 1:
                # Leaf: echo immediately.
                self._account(ctx, immediate=True)
                return
        self._account(ctx)

    def _account(self, ctx: ProcessContext, immediate: bool = False) -> None:
        # Each neighbour answers exactly once (token or echo); when all
        # have, echo to the parent (or finish, if we are the root).
        ctx.state["pending"] = ctx.state["pending"] - 1
        if ctx.state["pending"] > 0:
            return
        parent = ctx.state["parent"]
        if parent == ctx.name:
            ctx.state["done"] = True
            ctx.mark("wave_done")
        else:
            ctx.send(parent, {"type": "echo"}, tag="echo")
        del immediate


def build(
    topology: Topology = None,
    n: int = 6,
    initiator: ProcessId = None,
    edge_probability: float = 0.4,
    seed: int = 0,
) -> Tuple[Topology, Dict[ProcessId, Process]]:
    """Echo wave over a bidirectional random graph (or a supplied one)."""
    if topology is None:
        import random as _random

        names = [f"n{i}" for i in range(n)]
        topology = Topology()
        for name in names:
            topology.add_process(name)
        rng = _random.Random(seed)
        # Random spanning chain + extra edges, all bidirectional.
        for a, b in zip(names, names[1:]):
            topology.add_bidirectional(a, b)
        for i, a in enumerate(names):
            for b in names[i + 2:]:
                if rng.random() < edge_probability:
                    topology.add_bidirectional(a, b)
    initiator = initiator or topology.processes[0]
    processes: Dict[ProcessId, Process] = {
        name: EchoProcess(initiator=(name == initiator))
        for name in topology.processes
    }
    return topology, processes
