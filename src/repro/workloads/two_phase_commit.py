"""Two-phase commit with injectable faults — a protocol worth debugging.

A coordinator drives ``rounds`` transactions over ``n`` participants:
PREPARE → votes → COMMIT/ABORT → acks. Fault injection:

* ``no_voter`` — that participant votes *no* on every round (all rounds
  abort cleanly; good for testing decision propagation);
* ``silent_voter`` + ``silent_round`` — that participant simply never
  answers one PREPARE. The naive coordinator here has **no vote timeout**
  (the bug), so the protocol wedges with the coordinator stuck in
  ``phase == "collecting"`` — the debugging scenario: the system goes
  quiet, you halt it, and the frozen coordinator state names exactly which
  vote never arrived (`tests` and the 2PC example walk through it).

State vocabulary: coordinator exposes ``round``, ``phase``, ``votes``
(dict), ``decisions`` (list); participants expose ``prepared``,
``decisions`` (list), ``votes_cast``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.network.topology import Topology, star
from repro.runtime.context import ProcessContext
from repro.runtime.process import Process
from repro.util.ids import ProcessId

COORDINATOR: ProcessId = "coord"


class Coordinator(Process):
    """Drives the rounds; deliberately lacks a vote timeout."""

    def __init__(self, participants: List[ProcessId], rounds: int,
                 pause: float = 0.5) -> None:
        self.participants = participants
        self.rounds = rounds
        self.pause = pause

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.state["round"] = 0
        ctx.state["phase"] = "idle"
        ctx.state["votes"] = {}
        ctx.state["acks"] = 0
        ctx.state["decisions"] = []
        ctx.set_timer("next_round", self.pause)

    def on_timer(self, ctx: ProcessContext, name: str, payload: object) -> None:
        with ctx.procedure("begin_round"):
            ctx.state["round"] = ctx.state["round"] + 1
            ctx.state["phase"] = "collecting"
            ctx.state["votes"] = {}
            ctx.state["acks"] = 0
            for participant in self.participants:
                ctx.send(
                    participant,
                    {"type": "prepare", "round": ctx.state["round"]},
                    tag="prepare",
                )

    def on_message(self, ctx: ProcessContext, src: ProcessId, payload: object) -> None:
        message = dict(payload)  # type: ignore[arg-type]
        if message["type"] == "vote":
            self._on_vote(ctx, src, message)
        elif message["type"] == "ack":
            self._on_ack(ctx)

    def _on_vote(self, ctx: ProcessContext, src: ProcessId, message: dict) -> None:
        if message["round"] != ctx.state["round"] or ctx.state["phase"] != "collecting":
            return  # stale vote
        votes = dict(ctx.state["votes"])
        votes[src] = message["vote"]
        ctx.state["votes"] = votes
        if len(votes) == len(self.participants):
            decision = "commit" if all(v == "yes" for v in votes.values()) else "abort"
            with ctx.procedure("decide"):
                ctx.state["phase"] = "deciding"
                ctx.mark("decision", round=ctx.state["round"], decision=decision)
                for participant in self.participants:
                    ctx.send(
                        participant,
                        {"type": decision, "round": ctx.state["round"]},
                        tag=decision,
                    )

    def _on_ack(self, ctx: ProcessContext) -> None:
        ctx.state["acks"] = ctx.state["acks"] + 1
        if ctx.state["acks"] == len(self.participants):
            decisions = list(ctx.state["decisions"])
            decisions.append(ctx.state["round"])
            ctx.state["decisions"] = decisions
            ctx.state["phase"] = "idle"
            if ctx.state["round"] < self.rounds:
                ctx.set_timer("next_round", self.pause)


class Participant(Process):
    """Votes on PREPAREs, applies decisions, acks."""

    def __init__(self, vote_yes: bool = True,
                 silent_round: Optional[int] = None) -> None:
        self.vote_yes = vote_yes
        self.silent_round = silent_round

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.state["prepared"] = False
        ctx.state["votes_cast"] = 0
        ctx.state["decisions"] = []

    def on_message(self, ctx: ProcessContext, src: ProcessId, payload: object) -> None:
        message = dict(payload)  # type: ignore[arg-type]
        if message["type"] == "prepare":
            if message["round"] == self.silent_round:
                ctx.mark("vote_swallowed", round=message["round"])
                return  # the injected bug: never answer
            ctx.state["prepared"] = True
            ctx.state["votes_cast"] = ctx.state["votes_cast"] + 1
            vote = "yes" if self.vote_yes else "no"
            ctx.send(src, {"type": "vote", "round": message["round"], "vote": vote},
                     tag="vote")
        elif message["type"] in ("commit", "abort"):
            ctx.state["prepared"] = False
            decisions = list(ctx.state["decisions"])
            decisions.append((message["round"], message["type"]))
            ctx.state["decisions"] = decisions
            ctx.send(src, {"type": "ack", "round": message["round"]}, tag="ack")


def build(
    n: int = 3,
    rounds: int = 4,
    no_voter: Optional[ProcessId] = None,
    silent_voter: Optional[ProcessId] = None,
    silent_round: Optional[int] = None,
) -> Tuple[Topology, Dict[ProcessId, Process]]:
    """Coordinator ``coord`` plus participants ``part0..part{n-1}``."""
    participants = [f"part{i}" for i in range(n)]
    topo = star(COORDINATOR, participants)
    processes: Dict[ProcessId, Process] = {
        COORDINATOR: Coordinator(participants, rounds)
    }
    for name in participants:
        processes[name] = Participant(
            vote_yes=(name != no_voter),
            silent_round=silent_round if name == silent_voter else None,
        )
    return topo, processes
