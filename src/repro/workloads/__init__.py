"""Workload library: message-passing programs for the debugger to debug.

Each module exposes a ``build(...)`` factory returning ``(topology,
processes)`` (plus per-channel latencies where the scenario needs them).
"""

from repro.workloads import (  # noqa: F401 — re-exported submodules
    bank,
    chatter,
    echo,
    election,
    gossip,
    infrequent,
    mutex,
    philosophers,
    pipeline,
    token_ring,
    two_phase_commit,
)

__all__ = [
    "bank",
    "chatter",
    "echo",
    "election",
    "gossip",
    "infrequent",
    "mutex",
    "philosophers",
    "pipeline",
    "token_ring",
    "two_phase_commit",
]
