"""Chang-Roberts leader election on a unidirectional ring.

A terminating protocol with process-termination events — the workload for
Simple Predicates over process lifecycle (§3.2 lists "a process created or
terminated" among the interprocess event predicates).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.network.topology import Topology, ring
from repro.runtime.context import ProcessContext
from repro.runtime.process import Process
from repro.util.ids import ProcessId


class ElectionProcess(Process):
    """One ring member with a unique numeric id."""

    def __init__(self, uid: int, start_delay: float = 0.3) -> None:
        self.uid = uid
        self.start_delay = start_delay

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.state["uid"] = self.uid
        ctx.state["leader"] = None
        ctx.state["forwarded"] = 0
        ctx.set_timer("candidate", self.start_delay * (0.5 + ctx.rng.random()))

    def on_timer(self, ctx: ProcessContext, name: str, payload: object) -> None:
        with ctx.procedure("announce_candidacy"):
            ctx.send(ctx.neighbors_out()[0], {"type": "elect", "uid": self.uid}, tag="elect")

    def on_message(self, ctx: ProcessContext, src: ProcessId, payload: object) -> None:
        message = dict(payload)  # type: ignore[arg-type]
        nxt = ctx.neighbors_out()[0]
        if message["type"] == "elect":
            uid = message["uid"]
            if uid > self.uid:
                ctx.state["forwarded"] = ctx.state["forwarded"] + 1
                ctx.send(nxt, message, tag="elect")
            elif uid == self.uid:
                # Our candidacy came all the way around: we are the leader.
                ctx.mark("leader_elected", uid=self.uid)
                ctx.state["leader"] = ctx.name
                ctx.send(nxt, {"type": "elected", "leader": ctx.name}, tag="elected")
            # uid < self.uid: swallow the weaker candidacy.
        elif message["type"] == "elected":
            if message["leader"] == ctx.name:
                ctx.terminate()  # announcement circulated fully
            else:
                ctx.state["leader"] = message["leader"]
                ctx.send(nxt, message, tag="elected")
                ctx.terminate()


def build(
    n: int = 5, seed: int = 0, start_delay: float = 0.3
) -> Tuple[Topology, Dict[ProcessId, Process]]:
    """A ring of ``n`` members with shuffled unique ids."""
    import random as _random

    names = [f"e{i}" for i in range(n)]
    uids = list(range(1, n + 1))
    _random.Random(seed).shuffle(uids)
    topo = ring(names)
    processes: Dict[ProcessId, Process] = {
        name: ElectionProcess(uid=uid, start_delay=start_delay)
        for name, uid in zip(names, uids)
    }
    return topo, processes
