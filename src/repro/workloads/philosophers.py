"""Dining philosophers over message-passing forks.

Each fork is a real process (a tiny resource manager); each philosopher
thinks, requests its two forks by message, eats, releases. Two acquisition
policies:

* ``policy="left-first"`` — every philosopher grabs its left fork first.
  With equal think times they all succeed at their left fork and block on
  the right one: a *deterministic deadlock*, which is exactly what a
  distributed debugger is for — halt the (quiet) system and read the
  waits-for cycle out of the frozen states (`examples/deadlock_hunt.py`).
* ``policy="ordered"`` — forks are acquired lowest-id first (the classic
  fix); the run completes.

State vocabulary (used by breakpoints and the waits-for analysis):
philosophers expose ``meals``, ``holding`` (list), ``waiting_for`` (fork or
None); forks expose ``holder`` and ``queue``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.network.topology import Topology
from repro.runtime.context import ProcessContext
from repro.runtime.process import Process
from repro.util.ids import ProcessId


class Fork(Process):
    """A fork: grants itself to one holder, queues the rest."""

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.state["holder"] = None
        ctx.state["queue"] = []

    def on_message(self, ctx: ProcessContext, src: ProcessId, payload: object) -> None:
        request = dict(payload)  # type: ignore[arg-type]
        if request["type"] == "acquire":
            if ctx.state["holder"] is None:
                ctx.state["holder"] = src
                ctx.send(src, {"type": "granted", "fork": ctx.name}, tag="granted")
            else:
                queue = list(ctx.state["queue"])
                queue.append(src)
                ctx.state["queue"] = queue
        elif request["type"] == "release":
            assert ctx.state["holder"] == src, "release by non-holder"
            queue = list(ctx.state["queue"])
            if queue:
                nxt = queue.pop(0)
                ctx.state["queue"] = queue
                ctx.state["holder"] = nxt
                ctx.send(nxt, {"type": "granted", "fork": ctx.name}, tag="granted")
            else:
                ctx.state["holder"] = None


class Philosopher(Process):
    """Thinks, acquires two forks (policy-dependent order), eats, repeats."""

    def __init__(self, left: ProcessId, right: ProcessId, meals: int,
                 policy: str = "ordered", think: float = 1.0,
                 eat: float = 0.5) -> None:
        if policy not in ("ordered", "left-first"):
            raise ValueError(f"unknown policy {policy!r}")
        self.left = left
        self.right = right
        self.meals = meals
        self.policy = policy
        self.think = think
        self.eat = eat

    def _acquisition_order(self) -> Tuple[ProcessId, ProcessId]:
        if self.policy == "ordered":
            return tuple(sorted((self.left, self.right)))  # type: ignore[return-value]
        return (self.left, self.right)

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.state["meals"] = 0
        ctx.state["holding"] = []
        ctx.state["waiting_for"] = None
        ctx.set_timer("think", self.think)

    def on_timer(self, ctx: ProcessContext, name: str, payload: object) -> None:
        if name == "think":
            first, _ = self._acquisition_order()
            ctx.state["waiting_for"] = first
            ctx.send(first, {"type": "acquire"}, tag="acquire")
        elif name == "eat_done":
            with ctx.procedure("release_forks"):
                for fork in ctx.state["holding"]:
                    ctx.send(fork, {"type": "release"}, tag="release")
                ctx.state["holding"] = []
                ctx.state["meals"] = ctx.state["meals"] + 1
                ctx.mark("meal_finished", count=ctx.state["meals"])
            if ctx.state["meals"] < self.meals:
                ctx.set_timer("think", self.think)

    def on_message(self, ctx: ProcessContext, src: ProcessId, payload: object) -> None:
        message = dict(payload)  # type: ignore[arg-type]
        if message["type"] != "granted":
            return
        holding = list(ctx.state["holding"])
        holding.append(message["fork"])
        ctx.state["holding"] = holding
        first, second = self._acquisition_order()
        if len(holding) == 1:
            ctx.state["waiting_for"] = second
            ctx.send(second, {"type": "acquire"}, tag="acquire")
        else:
            ctx.state["waiting_for"] = None
            ctx.mark("eating", meal=ctx.state["meals"])
            ctx.set_timer("eat_done", self.eat)


def build(
    n: int = 5, meals: int = 3, policy: str = "ordered",
    think: float = 1.0, eat: float = 0.5,
) -> Tuple[Topology, Dict[ProcessId, Process]]:
    """``n`` philosophers ``ph*`` around ``n`` forks ``fork*``."""
    topo = Topology()
    philosophers = [f"ph{i}" for i in range(n)]
    forks = [f"fork{i}" for i in range(n)]
    for name in philosophers + forks:
        topo.add_process(name)
    processes: Dict[ProcessId, Process] = {}
    for i, name in enumerate(philosophers):
        left = forks[i]
        right = forks[(i + 1) % n]
        topo.add_bidirectional(name, left)
        topo.add_bidirectional(name, right)
        processes[name] = Philosopher(
            left=left, right=right, meals=meals, policy=policy,
            think=think, eat=eat,
        )
    for name in forks:
        processes[name] = Fork()
    return topo, processes


def deadlocked(state) -> bool:
    """Stable property for :class:`repro.snapshot.monitor.SnapshotMonitor`:
    the dining table is deadlocked — there is a waits-for cycle among the
    frozen states and no message is in flight that could break it.

    Deadlock is stable (nothing un-deadlocks by itself), so snapshot-based
    detection is sound: if a consistent snapshot shows it, it holds now.
    """
    if state.total_pending_messages() > 0:
        return False
    states = {name: snap.state for name, snap in state.processes.items()}
    return waits_for_cycle(states) is not None


def waits_for_cycle(states: Dict[ProcessId, Dict]) -> Optional[List[ProcessId]]:
    """Extract a waits-for cycle from frozen states, if one exists.

    Edges: philosopher → holder of the fork it is waiting for. Returns the
    cycle as a list of philosophers, or None.
    """
    edges: Dict[ProcessId, ProcessId] = {}
    for name, state in states.items():
        waiting_for = state.get("waiting_for")
        if not waiting_for:
            continue
        fork_state = states.get(waiting_for)
        if not fork_state:
            continue
        holder = fork_state.get("holder")
        if holder and holder != name:
            edges[name] = holder
    for start in edges:
        path = [start]
        seen = {start}
        node = start
        while node in edges:
            node = edges[node]
            if node == start:
                return path
            if node in seen:
                break
            seen.add(node)
            path.append(node)
    return None
