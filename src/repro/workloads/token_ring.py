"""Token-ring workload: one token circulates, each holder does local work.

The classic cyclic, strongly-connected program — the friendliest case for
the basic Halting Algorithm (markers always reach everyone). Each process
holds the token for a short random "work" delay before forwarding, so
halting usually catches the token in flight, exercising channel-state
capture.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.network.topology import Topology, ring
from repro.runtime.context import ProcessContext
from repro.runtime.process import Process
from repro.util.ids import ProcessId


class TokenRingProcess(Process):
    """One station on the ring."""

    def __init__(self, max_hops: int, hold_time: float = 0.5) -> None:
        self.max_hops = max_hops
        self.hold_time = hold_time

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.state["tokens_seen"] = 0
        ctx.state["last_value"] = -1
        ctx.state["holding"] = False
        if ctx.name.endswith("0"):
            # The ring's first station injects the token. The flag lets a
            # restore distinguish "not yet injected" from "in flight".
            ctx.state["injected"] = False
            ctx.set_timer("inject", self.hold_time, payload=0)

    def on_restore(self, ctx: ProcessContext) -> None:
        # If we were holding the token when the state was captured, the
        # pending forward timer died with the old incarnation — re-arm it
        # from the restored state.
        if ctx.state["holding"]:
            ctx.set_timer("forward", self.hold_time,
                          payload=ctx.state["last_value"] + 1)
        elif ctx.state.get("injected") is False:
            # Restored from a cut taken before the token ever existed:
            # the inject timer is not part of anyone's state, so the
            # injector must re-arm it or the ring stays empty forever.
            ctx.set_timer("inject", self.hold_time, payload=0)

    def on_message(self, ctx: ProcessContext, src: ProcessId, payload: object) -> None:
        with ctx.procedure("receive_token"):
            value = int(payload)  # type: ignore[arg-type]
            ctx.state["tokens_seen"] = ctx.state["tokens_seen"] + 1
            ctx.state["last_value"] = value
            if value < self.max_hops:
                # Hold the token for a random work period, then forward.
                ctx.state["holding"] = True
                delay = self.hold_time * (0.5 + ctx.rng.random())
                ctx.set_timer("forward", delay, payload=value + 1)

    def on_timer(self, ctx: ProcessContext, name: str, payload: object) -> None:
        with ctx.procedure("forward_token"):
            ctx.state["holding"] = False
            if name == "inject":
                ctx.state["injected"] = True
            ctx.send(ctx.neighbors_out()[0], payload, tag="token")


def build(
    n: int = 4, max_hops: int = 40, hold_time: float = 0.5
) -> Tuple[Topology, Dict[ProcessId, Process]]:
    """A ring of ``n`` stations passing one token ``max_hops`` times."""
    names = [f"p{i}" for i in range(n)]
    topo = ring(names)
    processes: Dict[ProcessId, Process] = {
        name: TokenRingProcess(max_hops=max_hops, hold_time=hold_time)
        for name in names
    }
    return topo, processes
