"""Infrequent-communicators workload — §2.2.2's first problem.

Two dense clusters chat internally at a high rate; a single bridge pair
exchanges messages only rarely. Under the basic Halting Algorithm a halt
initiated in one cluster reaches the other only when a marker crosses the
bridge — immediately when initiated (markers are sent on *all* outgoing
channels at halt, including quiet ones), but a process with *no* channel
from the halted region can only halt via whatever path exists. The painful
variant is when bridge channels exist but the marker must queue behind
nothing (channels are FIFO but empty) — the halt still arrives at
propagation speed, while in a real system with connection-oriented
transports an unused connection might not even exist. We model the paper's
concern directly: the cross-cluster *latency* is much larger than the
intra-cluster latency, so the far cluster keeps executing long after the
near cluster froze. The extended model does not make the marker faster —
it makes the *debugger* a one-hop neighbour of everyone, bounding the halt
latency by one debugger-channel delay instead of a multi-hop path through
quiet bridges (experiment E4).
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.network.latency import FixedLatency, LatencyModel
from repro.network.topology import Topology, two_clusters
from repro.util.ids import ChannelId, ProcessId
from repro.workloads.chatter import ChatterProcess


def build(
    cluster_size: int = 3,
    budget: int = 40,
    tick: float = 0.5,
    bridge_latency: float = 25.0,
    local_latency: float = 0.8,
) -> Tuple[Topology, Dict[ProcessId, ChatterProcess], Mapping[ChannelId, LatencyModel]]:
    """Two complete clusters ``a*`` and ``b*`` joined by one slow bridge.

    Returns ``(topology, processes, channel_latencies)`` — pass the latter
    to :class:`~repro.runtime.system.System` as ``channel_latencies``.
    """
    left = [f"a{i}" for i in range(cluster_size)]
    right = [f"b{i}" for i in range(cluster_size)]
    topo = two_clusters(left, right, bridges=[(left[0], right[0])])
    processes = {
        name: ChatterProcess(budget=budget, tick=tick) for name in left + right
    }
    slow = FixedLatency(bridge_latency)
    fast = FixedLatency(local_latency)
    latencies: Dict[ChannelId, LatencyModel] = {}
    for channel in topo.channels:
        crosses = (channel.src[0] != channel.dst[0])
        latencies[channel] = slow if crosses else fast
    return topo, processes, latencies
