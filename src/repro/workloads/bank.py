"""Bank workload: accounts wiring money — the canonical snapshot demo.

The global invariant is conservation of money: at any *consistent* cut,

    sum(balances at the cut) + sum(amounts in transit) == initial total.

An inconsistent observation (e.g. reading balances at arbitrary different
times) breaks the equation; a C&L snapshot or a Halting-Algorithm freeze
satisfies it. Several tests and the quickstart example audit exactly this.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.network.topology import Topology, complete
from repro.runtime.context import ProcessContext
from repro.runtime.process import Process
from repro.util.ids import ProcessId

INITIAL_BALANCE = 1000


class BankBranch(Process):
    """A branch holding a balance and wiring random amounts to peers."""

    def __init__(self, transfers: int, tick: float = 0.6,
                 initial_balance: int = INITIAL_BALANCE) -> None:
        self.transfers = transfers
        self.tick = tick
        self.initial_balance = initial_balance

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.state["balance"] = self.initial_balance
        ctx.state["transfers_made"] = 0
        ctx.set_timer("wire", self.tick * (0.5 + ctx.rng.random()))

    def on_message(self, ctx: ProcessContext, src: ProcessId, payload: object) -> None:
        with ctx.procedure("receive_wire"):
            amount = int(payload)  # type: ignore[arg-type]
            ctx.state["balance"] = ctx.state["balance"] + amount

    def on_restore(self, ctx: ProcessContext) -> None:
        # Timers are not part of a global state; a resurrected branch
        # re-arms its wire timer from its own (restored) progress counter.
        if ctx.state["transfers_made"] < self.transfers:
            ctx.set_timer("wire", self.tick * (0.5 + ctx.rng.random()))

    def on_timer(self, ctx: ProcessContext, name: str, payload: object) -> None:
        if ctx.state["transfers_made"] >= self.transfers:
            return
        balance = ctx.state["balance"]
        neighbours = ctx.neighbors_out()
        if balance > 0 and neighbours:
            with ctx.procedure("send_wire"):
                amount = 1 + ctx.rng.randrange(max(1, balance // 4))
                target = neighbours[ctx.rng.randrange(len(neighbours))]
                ctx.state["balance"] = balance - amount
                ctx.send(target, amount, tag="wire")
                ctx.state["transfers_made"] = ctx.state["transfers_made"] + 1
        if ctx.state["transfers_made"] < self.transfers:
            ctx.set_timer("wire", self.tick * (0.5 + ctx.rng.random()))


def build(
    n: int = 4, transfers: int = 25, tick: float = 0.6,
    initial_balance: int = INITIAL_BALANCE,
) -> Tuple[Topology, Dict[ProcessId, Process]]:
    """``n`` fully-connected branches, each making ``transfers`` wires."""
    names = [f"branch{i}" for i in range(n)]
    topo = complete(names)
    processes: Dict[ProcessId, Process] = {
        name: BankBranch(transfers=transfers, tick=tick,
                         initial_balance=initial_balance)
        for name in names
    }
    return topo, processes


def total_money(state_or_balances, channel_states=None) -> int:
    """Balances at a cut plus in-transit amounts.

    Accepts a :class:`~repro.snapshot.state.GlobalState` (preferred) or a
    plain mapping of balances plus an iterable of channel states.
    """
    from repro.snapshot.state import GlobalState

    if isinstance(state_or_balances, GlobalState):
        balances = sum(
            snap.state.get("balance", 0)
            for snap in state_or_balances.processes.values()
        )
        in_transit = sum(
            int(message.payload)
            for channel_state in state_or_balances.channels.values()
            for message in channel_state.messages
        )
        return balances + in_transit
    balances = sum(state_or_balances.values())
    in_transit = sum(channel_states or ())
    return balances + in_transit
