"""Chatter workload: every process streams messages to random neighbours.

The stress workload for snapshot/halting experiments — lots of concurrent
traffic on every channel means the interesting cases (messages in flight
across the cut) occur constantly. Finite by construction: each process has
a send budget, so the system quiesces naturally when not halted.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.network.topology import Topology, random_topology
from repro.runtime.context import ProcessContext
from repro.runtime.process import Process
from repro.util.ids import ProcessId


class ChatterProcess(Process):
    """Sends ``budget`` messages, one per timer tick, to random neighbours."""

    def __init__(self, budget: int, tick: float = 0.7) -> None:
        self.budget = budget
        self.tick = tick

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.state["sent"] = 0
        ctx.state["received"] = 0
        ctx.state["checksum"] = 0
        ctx.set_timer("chat", self.tick * (0.5 + ctx.rng.random()))

    def on_restore(self, ctx: ProcessContext) -> None:
        if ctx.state["sent"] < self.budget:
            ctx.set_timer("chat", self.tick * (0.5 + ctx.rng.random()))

    def on_message(self, ctx: ProcessContext, src: ProcessId, payload: object) -> None:
        ctx.state["received"] = ctx.state["received"] + 1
        ctx.state["checksum"] = (ctx.state["checksum"] * 31 + int(payload)) % 1_000_003  # type: ignore[arg-type]

    def on_timer(self, ctx: ProcessContext, name: str, payload: object) -> None:
        if ctx.state["sent"] >= self.budget:
            return
        neighbours = ctx.neighbors_out()
        if not neighbours:
            return
        target = neighbours[ctx.rng.randrange(len(neighbours))]
        value = ctx.rng.randrange(1_000_000)
        ctx.send(target, value, tag="chat")
        ctx.state["sent"] = ctx.state["sent"] + 1
        if ctx.state["sent"] < self.budget:
            ctx.set_timer("chat", self.tick * (0.5 + ctx.rng.random()))


def build(
    n: int = 5,
    budget: int = 30,
    tick: float = 0.7,
    edge_probability: float = 0.4,
    seed: int = 0,
    topology: Optional[Topology] = None,
) -> Tuple[Topology, Dict[ProcessId, Process]]:
    """``n`` processes on a random strongly-connected digraph."""
    names = [f"p{i}" for i in range(n)]
    topo = topology or random_topology(names, edge_probability, seed=seed)
    processes: Dict[ProcessId, Process] = {
        name: ChatterProcess(budget=budget, tick=tick) for name in names
    }
    return topo, processes
