"""Runtime substrate: processes, controllers, and the DES system backend."""

from repro.runtime.context import ProcessContext, TrackedState
from repro.runtime.controller import ProcessController
from repro.runtime.interfaces import ControlPlugin
from repro.runtime.payload import UserMessage
from repro.runtime.process import Process
from repro.runtime.state_capture import ProcessStateSnapshot, capture
from repro.runtime.system import System

__all__ = [
    "ControlPlugin",
    "Process",
    "ProcessContext",
    "ProcessController",
    "ProcessStateSnapshot",
    "System",
    "TrackedState",
    "UserMessage",
    "capture",
]
