"""The per-process instrumentation shim.

Every user process is wrapped by one :class:`ProcessController`. The
controller is "the debugging system" seen from that process's side of the
fence:

* it turns the process's actions into recorded :class:`~repro.events.Event`s
  (the paper's 5-tuples) with logical-clock stamps;
* it routes control messages (markers, debugger commands) to the installed
  :class:`~repro.runtime.interfaces.ControlPlugin` agents;
* it implements *halt* mechanically: a halted process executes no user code,
  and user messages that keep arriving are buffered per incoming channel —
  those buffers **are** the channel states of the halted global state
  ``S_h`` (§2.2.1: "each outgoing channel contains undelivered messages with
  a halt marker as the last one").
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.events.clocks import LamportClock, VectorClock
from repro.events.event import Event, EventKind
from repro.network.message import Envelope, MessageKind
from repro.runtime.context import ProcessContext
from repro.runtime.interfaces import ControlPlugin
from repro.runtime.payload import UserMessage
from repro.runtime.process import Process
from repro.runtime.state_capture import ProcessStateSnapshot, capture
from repro.simulation.kernel import PRIORITY_INTERNAL, PRIORITY_TIMER
from repro.util.errors import RuntimeStateError, TopologyError
from repro.util.ids import ChannelId, ProcessId

# Shared empty attrs mapping for events recorded without attributes — the
# majority — so the hot recording path allocates no throwaway dict. Events
# are immutable; nothing may write through this.
_NO_ATTRS: Dict[str, Any] = {}

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.system import System


class ProcessController:
    """Instrumentation wrapper around one user process."""

    def __init__(
        self,
        system: "System",
        name: ProcessId,
        process: Process,
        vector_clock: VectorClock,
        user_rng: random.Random,
        never_halts: bool = False,
    ) -> None:
        self.system = system
        self.name = name
        self.process = process
        self.never_halts = never_halts
        self.user_rng = user_rng
        self.lamport = LamportClock()
        self.vector = vector_clock
        self.ctx = ProcessContext(self)
        self.halted = False
        self.terminated = False
        #: Fail-stop fault: the host is dead. Unlike ``terminated`` (a clean
        #: user-level exit whose host still acks transport frames), a crashed
        #: process's whole network stack is gone.
        self.crashed = False
        #: Transient freeze (fault injection): buffering like halt, but
        #: invisible to the debugging system — no capture, no plugins.
        self.stalled = False
        self._stall_until = 0.0
        self._stall_buffer: List[Envelope] = []
        self._stall_timers: List[Tuple[str, Any]] = []
        self.halted_snapshot: Optional[ProcessStateSnapshot] = None
        #: User envelopes that arrived while halted, in arrival order,
        #: grouped per incoming channel — the S_h channel states.
        self.halt_buffers: Dict[ChannelId, List[Envelope]] = {}
        #: Arrival order across all channels (used to replay on resume).
        self._halt_buffer_order: List[Envelope] = []
        #: Channels whose halt marker arrived after we halted: the channel
        #: is known drained — nothing sent before the sender's halt is still
        #: in flight (§2.2.1 Lemma 2.2; the determinability metric of E9).
        self.closed_channels: set = set()
        self._deferred_timers: List[Tuple[str, Any]] = []
        self._timer_handles: Dict[str, object] = {}
        self._timer_seq = 0
        self._local_seq = 0
        self._muted = False
        self._restored = False
        self._plugins: List[ControlPlugin] = []

    # -- wiring ----------------------------------------------------------------

    def install(self, plugin: ControlPlugin) -> None:
        plugin.attach(self)
        self._plugins.append(plugin)

    def plugin_of(self, cls: type) -> Optional[ControlPlugin]:
        for plugin in self._plugins:
            if isinstance(plugin, cls):
                return plugin
        return None

    # -- environment surface used by ProcessContext ----------------------------

    @property
    def now(self) -> float:
        return self.system.kernel.now

    def neighbors_out(self) -> Tuple[ProcessId, ...]:
        """Application-visible out-neighbours. Debugger processes are
        control-plane endpoints — their channels exist for markers and
        commands, and must be invisible to the program under debug (or
        attaching a debugger would change the program's behaviour)."""
        return tuple(
            c.dst for c in self.system.outgoing_channels(self.name)
            if not self.system.controller(c.dst).never_halts
        )

    def neighbors_in(self) -> Tuple[ProcessId, ...]:
        return tuple(
            c.src for c in self.system.incoming_channels(self.name)
            if not self.system.controller(c.src).never_halts
        )

    def outgoing_channels(self) -> Tuple[ChannelId, ...]:
        """Channels incident on and directed away from this process — the
        set every marker-sending rule iterates over."""
        return self.system.outgoing_channels(self.name)

    def incoming_channels(self) -> Tuple[ChannelId, ...]:
        return self.system.incoming_channels(self.name)

    # -- start / lifecycle -------------------------------------------------------

    def preload(self, snapshot: ProcessStateSnapshot) -> None:
        """Load a previously captured state before the system starts —
        the restoration half of halting (see :mod:`repro.halting.restore`).
        State, clocks, and counters resume where the capture left them; the
        first events of the new incarnation continue the old causal
        history."""
        if self._local_seq or self.ctx.state:
            raise RuntimeStateError(
                f"{self.name} already has history; preload before start"
            )
        self._muted = True
        try:
            self.ctx.state.update(snapshot.state)
        finally:
            self._muted = False
        self.lamport.load(snapshot.lamport)
        self.vector.load(snapshot.vector)
        self._local_seq = snapshot.local_seq
        self.terminated = snapshot.terminated
        self._restored = True

    def start(self) -> None:
        if self._restored:
            # A resurrected process continues, it is not created anew.
            self.process.on_restore(self.ctx)
            return
        self._record(EventKind.PROCESS_CREATED)
        self.process.on_start(self.ctx)

    def user_terminate(self) -> None:
        self._require_live("terminate")
        self._record(EventKind.PROCESS_TERMINATED)
        self.terminated = True

    # -- user sends ---------------------------------------------------------------

    def user_send(self, dst: ProcessId, payload: Any, tag: Optional[str]) -> None:
        self._require_live("send")
        channel_id = ChannelId(self.name, dst)
        channel = self.system.channel(channel_id)
        if channel is None:
            raise TopologyError(
                f"{self.name!r} has no outgoing channel to {dst!r}"
            )
        if self.system.controller(dst).never_halts:
            raise TopologyError(
                f"{dst!r} is a debugger process; user messages may not "
                "travel on control channels"
            )
        self.lamport.tick()
        self.vector.tick()
        message = UserMessage(
            payload=payload,
            tag=tag,
            lamport=self.lamport.value,
            vector=self.vector.snapshot(),
        )
        channel.send(MessageKind.USER, message)
        self._record(
            EventKind.SEND,
            message=payload,
            channel=channel_id,
            detail=tag,
            tick=False,
        )

    def user_create_channel(self, dst: ProcessId) -> None:
        self._require_live("create a channel")
        channel_id = self.system.create_channel(self.name, dst)
        self._record(EventKind.CHANNEL_CREATED, channel=channel_id)

    def user_destroy_channel(self, dst: ProcessId) -> None:
        self._require_live("destroy a channel")
        channel_id = ChannelId(self.name, dst)
        self.system.destroy_channel(channel_id)
        self._record(EventKind.CHANNEL_DESTROYED, channel=channel_id)

    def defer(self, action: Callable[[], None], label: str = "defer") -> None:
        """Run ``action`` after the current handler step completes.

        Algorithms use this when a decision made *inside* a user handler
        (e.g. a breakpoint's final stage matching) must take effect at a
        clean instant — the boundary between two atomic handler steps.
        Backend-specific: here it is a zero-delay kernel entry; the threaded
        backend posts to the process's own mailbox.
        """
        self.system.kernel.schedule(
            0.0,
            action,
            priority=PRIORITY_INTERNAL,
            tiebreak=(label, self.name),
        )

    # -- control-plane sends (no clocks, no user events) ---------------------------

    def send_control(self, channel_id: ChannelId, kind: MessageKind, payload: Any) -> None:
        """Send a debugging-system message along an existing channel.

        Control sends piggyback the current logical clocks (no user-level
        event is recorded): happened-before is defined over *all* messages,
        and the Linked Predicate detector's ordering guarantee travels
        through these very markers. The sender's clock is *not* ticked —
        receivers merge (which ticks them), which suffices for the causal
        chain and keeps the sender's captured state independent of whether
        it records before (C&L) or after (Halt Routine) sending markers.
        """
        channel = self.system.channel(channel_id)
        if channel is None:
            raise TopologyError(f"no channel {channel_id} for control send")
        channel.send(kind, payload, clock=(self.lamport.value, self.vector.snapshot()))

    def broadcast_control(self, kind: MessageKind, payload: Any) -> None:
        """Send a control message on every outgoing channel."""
        for channel_id in self.outgoing_channels():
            self.send_control(channel_id, kind, payload)

    # -- timers ----------------------------------------------------------------------

    def user_set_timer(self, name: str, delay: float, payload: Any) -> None:
        self._require_live("set a timer")
        self.user_cancel_timer(name)
        self._timer_seq += 1
        handle = self.system.kernel.schedule(
            delay,
            lambda: self._timer_fired(name, payload),
            priority=PRIORITY_TIMER,
            tiebreak=(self.name, name, self._timer_seq),
        )
        self._timer_handles[name] = handle

    def user_cancel_timer(self, name: str) -> bool:
        handle = self._timer_handles.pop(name, None)
        if handle is None:
            return False
        return self.system.kernel.cancel(handle)  # type: ignore[arg-type]

    def _timer_fired(self, name: str, payload: Any) -> None:
        self._timer_handles.pop(name, None)
        if self.terminated or self.crashed:
            return
        if self.stalled:
            self._stall_timers.append((name, payload))
            return
        if self.halted:
            # Frozen processes accumulate their expirations; they replay on
            # resume so the program's logic is suspended, not lost.
            self._deferred_timers.append((name, payload))
            return
        event = self._record(EventKind.TIMER, detail=name)
        self.process.on_timer(self.ctx, name, payload)
        del event

    # -- deliveries --------------------------------------------------------------------

    def deliver(self, envelope: Envelope) -> None:
        """Entry point for everything arriving on an incoming channel."""
        if self.crashed:
            # Raw channels still deliver frames at a dead host's address;
            # they fall on the floor. (Reliable channels stop earlier, at
            # the endpoint_down check, so they also withhold the ack.)
            return
        if self.stalled:
            # A frozen host processes nothing — control plane included.
            # Everything replays in arrival order when the stall ends.
            self._stall_buffer.append(envelope)
            return
        if envelope.kind is MessageKind.USER:
            self._deliver_user(envelope)
            return
        if envelope.clock is not None:
            lamport, vector = envelope.clock
            self.lamport.merge(lamport)
            self.vector.merge(vector)
        routed = False
        for plugin in self._plugins:
            if envelope.kind in plugin.kinds:
                plugin.on_control(envelope)
                routed = True
        if not routed:
            raise RuntimeStateError(
                f"{self.name}: no plugin handles {envelope.kind.value} "
                f"(install the matching coordinator before running)"
            )

    def _deliver_user(self, envelope: Envelope) -> None:
        if self.halted or self.terminated:
            # §2.2.1: a halted process preserves its state; arrivals queue in
            # the channel. These buffers are the channel states of S_h.
            self.halt_buffers.setdefault(envelope.channel, []).append(envelope)
            self._halt_buffer_order.append(envelope)
            for plugin in self._plugins:
                plugin.on_user_delivered(envelope, None)
            return
        event = self._process_user_envelope(envelope)
        for plugin in self._plugins:
            plugin.on_user_delivered(envelope, event)

    def _process_user_envelope(self, envelope: Envelope) -> Event:
        message = envelope.payload
        assert isinstance(message, UserMessage), (
            f"user envelope without UserMessage wrapper: {envelope!r}"
        )
        self.lamport.merge(message.lamport)
        if message.vector:
            self.vector.merge(message.vector)
        else:
            # A clock-less message (e.g. restored from a trace without
            # clock metadata) still counts as a receive event.
            self.vector.tick()
        event = self._record(
            EventKind.RECEIVE,
            message=message.payload,
            channel=envelope.channel,
            detail=message.tag,
            tick=False,
        )
        self.process.on_message(self.ctx, envelope.src, message.payload)
        return event

    # -- fault injection ------------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: this process (and its host) executes nothing ever
        again. Unlike :meth:`halt`, nothing is captured and nothing resumes;
        unlike :meth:`user_terminate`, the network stack dies too — channels
        touching this process stop delivering and acknowledging (the owning
        system wires ``endpoint_down`` to this flag). Idempotent: fault
        schedules may race with an earlier crash."""
        if self.crashed:
            return
        self._record(EventKind.PROCESS_CRASHED)
        self.crashed = True
        for name in list(self._timer_handles):
            self.user_cancel_timer(name)
        self._deferred_timers = []
        self._stall_buffer = []
        self._stall_timers = []

    def stall(self, duration: float) -> None:
        """Freeze for ``duration`` of virtual time — a long GC pause.
        Arrivals and timer expirations buffer and replay afterwards in
        order: the program is delayed, not changed. Overlapping stalls
        extend the window."""
        if self.crashed or self.terminated or duration <= 0:
            return
        self._stall_until = max(self._stall_until, self.now + duration)
        if not self.stalled:
            self.stalled = True
            self._arm_unstall()

    def _arm_unstall(self) -> None:
        self.system.kernel.schedule_at(
            self._stall_until,
            self._maybe_unstall,
            priority=PRIORITY_INTERNAL,
            tiebreak=("unstall", self.name),
        )

    def _maybe_unstall(self) -> None:
        if not self.stalled or self.crashed:
            return
        if self.now < self._stall_until:
            # The window was extended while we slept; sleep again.
            self._arm_unstall()
            return
        self.stalled = False
        replay = self._stall_buffer
        self._stall_buffer = []
        timers = self._stall_timers
        self._stall_timers = []
        for envelope in replay:
            if self.stalled or self.crashed:
                self._stall_buffer.append(envelope)
                continue
            self.deliver(envelope)
        for name, payload in timers:
            if self.stalled or self.crashed:
                self._stall_timers.append((name, payload))
                continue
            self._timer_fired(name, payload)

    # -- halting mechanics ----------------------------------------------------------------

    def halt(self, **meta: Any) -> ProcessStateSnapshot:
        """Freeze this process and capture its state (the Halt Routine's
        final "Halt;" step). Idempotent halting is a caller bug — the
        algorithm guarantees a process halts once per cycle."""
        if self.never_halts:
            raise RuntimeStateError(f"{self.name} is a debugger process; it never halts")
        if self.crashed:
            raise RuntimeStateError(f"{self.name} has crashed; there is nothing to halt")
        if self.halted:
            raise RuntimeStateError(f"{self.name} is already halted")
        snapshot = self.capture_state(**meta)
        self.halted = True
        self.halted_snapshot = snapshot
        for plugin in self._plugins:
            plugin.on_halted()
        self._muted = True
        try:
            self.process.on_halt(self.ctx)
        finally:
            self._muted = False
        return snapshot

    def rehalt(self, **meta: Any) -> ProcessStateSnapshot:
        """Adopt a newer halt generation while already frozen.

        A process halted at generation M can legitimately see a marker
        for generation N > M: its halt notification (or its resume
        command) was lost — e.g. a partition ate it — and the rest of
        the system moved on. The frozen snapshot is *exactly* this
        process's state for the new cut, because it has executed no
        user event since halting; only the generation metadata changes.
        Channel closures are reset — survivors resumed and may have
        sent since, so each channel re-closes when its new-generation
        marker arrives behind any such traffic (FIFO).
        """
        if not self.halted:
            raise RuntimeStateError(
                f"{self.name} is not halted; rehalt is only for adopting "
                "a newer generation while frozen"
            )
        assert self.halted_snapshot is not None
        self.halted_snapshot.meta.update(meta)
        self.closed_channels = set()
        for plugin in self._plugins:
            plugin.on_halted()
        return self.halted_snapshot

    def resume(self) -> None:
        """Un-freeze: replay buffered arrivals (per-channel FIFO preserved,
        cross-channel arrival order preserved) and deferred timers."""
        if not self.halted:
            raise RuntimeStateError(f"{self.name} is not halted")
        self.halted = False
        self.halted_snapshot = None
        self.halt_buffers = {}
        self.closed_channels = set()
        replay = self._halt_buffer_order
        self._halt_buffer_order = []
        timers = self._deferred_timers
        self._deferred_timers = []
        self._muted = True
        try:
            self.process.on_resume(self.ctx)
        finally:
            self._muted = False
        for plugin in self._plugins:
            plugin.on_resumed()
        for envelope in replay:
            if self.halted:
                # A plugin or handler may legitimately re-halt mid-replay
                # (a new breakpoint fired immediately); re-buffer the rest.
                self.halt_buffers.setdefault(envelope.channel, []).append(envelope)
                self._halt_buffer_order.append(envelope)
                continue
            event = self._process_user_envelope(envelope)
            for plugin in self._plugins:
                plugin.on_user_delivered(envelope, event)
        for name, payload in timers:
            if self.terminated:
                break
            if self.halted:
                self._deferred_timers.append((name, payload))
                continue
            self._record(EventKind.TIMER, detail=name)
            self.process.on_timer(self.ctx, name, payload)

    def step_one(self, channel: Optional[str] = None) -> Optional[Envelope]:
        """Deliver exactly one buffered arrival while remaining halted.

        Single-step semantics for a frozen process: pop the oldest
        buffered envelope (the oldest on ``channel`` when one is named,
        by ``str(channel_id)``), briefly un-freeze to run its handler so
        sends and timer arming work normally, then freeze again with a
        freshly captured snapshot carrying the same halt generation
        metadata. Returns the delivered envelope, or ``None`` when no
        buffered message matched. If the delivery itself trips a halt
        (a breakpoint firing mid-step), that newer snapshot wins.
        """
        if not self.halted:
            raise RuntimeStateError(f"{self.name} is not halted; nothing to step")
        pick: Optional[Envelope] = None
        for envelope in self._halt_buffer_order:
            if channel is None or str(envelope.channel) == str(channel):
                pick = envelope
                break
        if pick is None:
            return None
        self._halt_buffer_order.remove(pick)
        bucket = self.halt_buffers.get(pick.channel, [])
        if pick in bucket:
            bucket.remove(pick)
            if not bucket:
                del self.halt_buffers[pick.channel]
        assert self.halted_snapshot is not None
        meta = {
            key: self.halted_snapshot.meta[key]
            for key in ("halt_id", "halt_path")
            if key in self.halted_snapshot.meta
        }
        self.halted = False
        try:
            event = self._process_user_envelope(pick)
            for plugin in self._plugins:
                plugin.on_user_delivered(pick, event)
        finally:
            if not self.halted:
                self.halted = True
                self.halted_snapshot = self.capture_state(**meta)
        return pick

    def capture_state(self, **meta: Any) -> ProcessStateSnapshot:
        """Deep-copy the process's current state (C&L "record its state").

        ``armed_timers`` rides along in the metadata: a process with no
        pending timers is *passive* (it can only act on a message), which
        is what stable-property detectors (termination) need to know.
        """
        meta.setdefault("armed_timers", len(self._timer_handles))
        return capture(
            process=self.name,
            state=self.ctx.state,
            local_seq=self._local_seq,
            lamport=self.lamport.value,
            vector=self.vector.snapshot(),
            vector_index=self.vector.owner_index,
            time=self.now,
            terminated=self.terminated,
            **meta,
        )

    def note_channel_closed(self, channel_id: ChannelId) -> None:
        """The halt marker arrived on ``channel_id`` after we halted: that
        channel's buffered contents are complete."""
        self.closed_channels.add(channel_id)

    # -- event recording -------------------------------------------------------------------

    def note_state_change(self, key: str, value: Any, deleted: bool = False) -> None:
        if self._muted:
            return
        attrs = {"key": key, "value": value, "deleted": deleted}
        self._record(EventKind.STATE_CHANGE, detail=key, attrs=attrs)

    def note_procedure_entry(self, name: str) -> None:
        if self._muted:
            return
        self._record(EventKind.PROCEDURE_ENTRY, detail=name)

    def note_procedure_exit(self, name: str) -> None:
        if self._muted:
            return
        self._record(EventKind.PROCEDURE_EXIT, detail=name)

    def note_mark(self, detail: str, attrs: Dict[str, Any]) -> None:
        if self._muted:
            return
        self._record(EventKind.STATE_CHANGE, detail=detail, attrs=attrs)

    def _record(
        self,
        kind: EventKind,
        message: Any = None,
        channel: Optional[ChannelId] = None,
        detail: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
        tick: bool = True,
    ) -> Event:
        """Record one user-level event: tick clocks, log, notify plugins.

        ``tick=False`` is used when the caller already advanced the clocks
        (send/receive paths, which must stamp the *message* with the same
        timestamp as the event).
        """
        if tick:
            self.lamport.tick()
            self.vector.advance()
        self._local_seq += 1
        state_before = None
        state_after = None
        if self.system.capture_states:
            state_before = dict(self.ctx.state)
        event = Event(
            eid=self.system.next_event_id(),
            process=self.name,
            kind=kind,
            time=self.now,
            lamport=self.lamport.value,
            vector=self.vector.snapshot(),
            vector_index=self.vector.owner_index,
            state_before=state_before,
            state_after=state_after,
            message=message,
            channel=channel,
            detail=detail,
            local_seq=self._local_seq,
            attrs=attrs if attrs is not None else _NO_ATTRS,
        )
        self.system.log.append(event)
        for plugin in self._plugins:
            plugin.on_local_event(event)
        return event

    def _require_live(self, action: str) -> None:
        if self.crashed:
            raise RuntimeStateError(f"{self.name} has crashed and cannot {action}")
        if self.terminated:
            raise RuntimeStateError(f"{self.name} is terminated and cannot {action}")
        if self.halted:
            raise RuntimeStateError(f"{self.name} is halted and cannot {action}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "halted" if self.halted else ("terminated" if self.terminated else "running")
        return f"ProcessController({self.name}, {status}, events={self._local_seq})"
