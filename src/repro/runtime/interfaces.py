"""Protocols that decouple the debugging algorithms from the runtime.

The snapshot, halting, and breakpoint algorithms are written against these
interfaces only. That keeps each algorithm a faithful transcription of the
paper's rules ("Marker-Sending Rule for a Process p", …) instead of being
entangled with simulator details, and lets the same algorithm code run on
the deterministic DES backend and the threaded backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.events.event import Event
from repro.network.message import Envelope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.controller import ProcessController


class ControlPlugin:
    """Per-process agent of a debugging-system algorithm.

    One instance is attached to each process controller. The controller
    calls the hooks below at well-defined points; default implementations
    do nothing so plugins override only what they need.
    """

    #: Which :class:`MessageKind` values this plugin consumes, e.g.
    #: ``{MessageKind.HALT_MARKER}``. Control envelopes are routed to the
    #: plugin(s) whose mask contains the envelope kind.
    kinds: frozenset = frozenset()

    def attach(self, controller: "ProcessController") -> None:
        """Called once when the plugin is installed on a controller."""
        self.controller = controller

    def on_control(self, envelope: Envelope) -> None:
        """A control envelope of a subscribed kind arrived.

        Called even while the process is halted — halt markers and debugger
        control must keep flowing (§2.2.3: "user processes are always
        willing to accept a message from the debugger process").
        """

    def on_local_event(self, event: Event) -> None:
        """A user-level event was recorded at this process (send, receive,
        procedure entry, …). This is where predicate detection watches the
        execution. Not called while halted."""

    def on_user_delivered(self, envelope: Envelope, event: Optional[Event]) -> None:
        """A user envelope finished arriving on an incoming channel.

        Called for *every* user arrival, including ones buffered because the
        process already halted (then ``event`` is None). Snapshot channel
        recording hangs off this hook.
        """

    def on_halted(self) -> None:
        """The process just halted (its state is frozen as of now)."""

    def on_resumed(self) -> None:
        """The process just resumed after a halt."""
