"""Frozen captures of a single process's state.

Both the C&L snapshot ("each process records its own state") and the Halting
Algorithm ("the state of each process is preserved", §2.2.1) reduce to
taking one of these captures at the right instant. Keeping one shared type
makes the Theorem-2 comparison (`S_h` = `S_r`, experiment E2) a structural
equality test.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.util.ids import ProcessId


@dataclass(frozen=True)
class ProcessStateSnapshot:
    """Deep-copied user state plus instrumentation counters at one instant."""

    process: ProcessId
    #: Deep copy of the process's ``ctx.state`` dict.
    state: Dict[str, Any]
    #: Number of user-level events the process had executed.
    local_seq: int
    #: Logical clocks at the capture instant. Identical user executions give
    #: identical clocks, so these make the E2 comparison strictly stronger.
    lamport: int
    vector: Tuple[int, ...]
    #: This process's component position within ``vector``.
    vector_index: int
    #: Virtual time of capture (reporting only — never compared, because the
    #: halted run and the snapshot run may capture at different wall points).
    time: float
    #: Whether the process had terminated before capture.
    terminated: bool = False
    #: Free-form extras (e.g. who initiated, halt_id).
    meta: Dict[str, Any] = field(default_factory=dict)

    def comparable(self) -> tuple:
        """Everything Theorem 2 says must match between ``S_h`` and ``S_r``."""
        return (
            self.process,
            _canonical(self.state),
            self.local_seq,
            self.lamport,
            self.vector,
            self.terminated,
        )


def capture(process: ProcessId, state: Dict[str, Any], local_seq: int,
            lamport: int, vector: Tuple[int, ...], vector_index: int,
            time: float, terminated: bool = False,
            **meta: Any) -> ProcessStateSnapshot:
    """Take a deep-copied snapshot of ``state`` right now."""
    return ProcessStateSnapshot(
        process=process,
        state=copy.deepcopy(dict(state)),
        local_seq=local_seq,
        lamport=lamport,
        vector=vector,
        vector_index=vector_index,
        time=time,
        terminated=terminated,
        meta=dict(meta),
    )


def _canonical(value: Any) -> Any:
    """Recursively convert to a comparable, order-insensitive form."""
    if isinstance(value, dict):
        return tuple(sorted((k, _canonical(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    if isinstance(value, set):
        return tuple(sorted(_canonical(v) for v in value))
    return value
