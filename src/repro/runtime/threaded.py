"""Threaded backend: the same programs and algorithms on real threads.

The DES backend proves the algorithms correct under *controlled*
nondeterminism (seeded interleavings). This backend removes the control:
every process is an OS thread, channels are queue-fed forwarder threads
with real (small) sleeps, and the scheduler is the operating system. The
marker algorithms run unchanged — they only use the controller surface
(``send_control``, ``halt``, ``outgoing_channels``, ``defer``, …), which
this module re-implements over threads.

What can be asserted here is what the paper asserts: every halted cut is
*consistent* (checked by the same oracle), money is conserved, markers
close channels — not bitwise equality between runs, which genuine
nondeterminism forecloses. The GIL is irrelevant: message-passing programs
block on queues, and correctness never depends on parallel speedup.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.events.clocks import ClockFrame
from repro.events.event import Event, EventKind
from repro.events.log import EventLog
from repro.network.message import Envelope, MessageKind
from repro.runtime.context import ProcessContext
from repro.runtime.interfaces import ControlPlugin
from repro.runtime.payload import UserMessage
from repro.runtime.process import Process
from repro.runtime.state_capture import ProcessStateSnapshot, capture
from repro.network.topology import Topology
from repro.util.errors import ConfigurationError, RuntimeStateError, TopologyError
from repro.util.ids import ChannelId, ProcessId, SequenceGenerator

_STOP = object()


class ThreadedChannel:
    """FIFO link: a queue drained by one forwarder thread that sleeps the
    sampled latency before handing the envelope to the receiver's mailbox.
    Serial forwarding makes FIFO structural, exactly like the DES clamp."""

    def __init__(self, channel_id: ChannelId, system: "ThreadedSystem",
                 latency_range: Tuple[float, float], seed: str) -> None:
        self.id = channel_id
        self._system = system
        self._latency_range = latency_range
        self._rng = random.Random(seed)
        self._queue: "queue.Queue" = queue.Queue()
        self._thread = threading.Thread(
            target=self._forward_loop, name=f"chan-{channel_id}", daemon=True
        )
        self.sent_by_kind: Dict[MessageKind, int] = {k: 0 for k in MessageKind}
        self._lock = threading.Lock()

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._queue.put(_STOP)

    def join(self, timeout: float = 1.0) -> None:
        self._thread.join(timeout)

    def send(self, kind: MessageKind, payload: object, clock: object = None) -> Envelope:
        envelope = Envelope(
            channel=self.id,
            kind=kind,
            payload=payload,
            send_time=self._system.now,
            seq=self._system.next_message_seq(),
            clock=clock,
        )
        with self._lock:
            self.sent_by_kind[kind] += 1
        self._system.note_activity(+1)
        self._queue.put(envelope)
        return envelope

    def _forward_loop(self) -> None:
        receiver = self._system.controller(self.id.dst)
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            low, high = self._latency_range
            time.sleep(self._rng.uniform(low, high))
            # The +1 from send() transfers to the mailbox item; the
            # receiver's main loop decrements after processing it.
            receiver.inbox.put(("env", item))


class ThreadedController:
    """Thread-hosted counterpart of the DES ProcessController. Exposes the
    same surface the algorithm plugins use."""

    def __init__(self, system: "ThreadedSystem", name: ProcessId,
                 process: Process, never_halts: bool = False) -> None:
        self.system = system
        self.name = name
        self.process = process
        self.never_halts = never_halts
        self.user_rng = random.Random(f"{system.seed}|proc|{name}")
        self.lamport = _Lamport()
        self.vector = system.clock_frame.clock_for(name)
        self.ctx = ProcessContext(self)
        self.halted = False
        self.terminated = False
        self.halted_snapshot: Optional[ProcessStateSnapshot] = None
        self.halt_buffers: Dict[ChannelId, List[Envelope]] = {}
        self._halt_buffer_order: List[Envelope] = []
        self.closed_channels: set = set()
        self._deferred_timers: List[Tuple[str, object]] = []
        self._timers: Dict[str, threading.Timer] = {}
        self._timer_gen: Dict[str, int] = {}
        self._local_seq = 0
        self._muted = False
        self._plugins: List[ControlPlugin] = []
        self.inbox: "queue.Queue" = queue.Queue()
        self._thread = threading.Thread(
            target=self._main_loop, name=f"proc-{name}", daemon=True
        )

    # -- wiring ------------------------------------------------------------

    def install(self, plugin: ControlPlugin) -> None:
        plugin.attach(self)
        self._plugins.append(plugin)

    def plugin_of(self, cls: type) -> Optional[ControlPlugin]:
        for plugin in self._plugins:
            if isinstance(plugin, cls):
                return plugin
        return None

    # -- surface used by ProcessContext and plugins ---------------------------

    @property
    def now(self) -> float:
        return self.system.now

    def neighbors_out(self) -> Tuple[ProcessId, ...]:
        return tuple(
            c.dst for c in self.system.outgoing_channels(self.name)
            if not self.system.controller(c.dst).never_halts
        )

    def neighbors_in(self) -> Tuple[ProcessId, ...]:
        return tuple(
            c.src for c in self.system.incoming_channels(self.name)
            if not self.system.controller(c.src).never_halts
        )

    def outgoing_channels(self) -> Tuple[ChannelId, ...]:
        return self.system.outgoing_channels(self.name)

    def incoming_channels(self) -> Tuple[ChannelId, ...]:
        return self.system.incoming_channels(self.name)

    def defer(self, action: Callable[[], None], label: str = "defer") -> None:
        self.system.note_activity(+1)
        self.inbox.put(("call", action))

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def join(self, timeout: float = 2.0) -> None:
        self._thread.join(timeout)

    def _main_loop(self) -> None:
        self._record(EventKind.PROCESS_CREATED)
        self.process.on_start(self.ctx)
        self.system.note_activity(-1)  # balances the start credit
        while True:
            item = self.inbox.get()
            if item is _STOP:
                return
            try:
                self._dispatch(item)
            finally:
                self.system.note_activity(-1)

    def _dispatch(self, item: Tuple) -> None:
        kind = item[0]
        if kind == "env":
            self._deliver(item[1])
        elif kind == "timer":
            self._timer_fired(item[1], item[2], item[3])
        elif kind == "call":
            item[1]()
        else:  # pragma: no cover - defensive
            raise RuntimeStateError(f"unknown mailbox item {item!r}")

    # -- deliveries -------------------------------------------------------------------

    def _deliver(self, envelope: Envelope) -> None:
        if envelope.kind is MessageKind.USER:
            self._deliver_user(envelope)
            return
        if envelope.clock is not None:
            lamport, vector = envelope.clock
            self.lamport.merge(lamport)
            self.vector.merge(vector)
        routed = False
        for plugin in self._plugins:
            if envelope.kind in plugin.kinds:
                plugin.on_control(envelope)
                routed = True
        if not routed:
            raise RuntimeStateError(
                f"{self.name}: no plugin handles {envelope.kind.value}"
            )

    def _deliver_user(self, envelope: Envelope) -> None:
        if self.halted or self.terminated:
            self.halt_buffers.setdefault(envelope.channel, []).append(envelope)
            self._halt_buffer_order.append(envelope)
            for plugin in self._plugins:
                plugin.on_user_delivered(envelope, None)
            return
        event = self._process_user_envelope(envelope)
        for plugin in self._plugins:
            plugin.on_user_delivered(envelope, event)

    def _process_user_envelope(self, envelope: Envelope) -> Event:
        message = envelope.payload
        assert isinstance(message, UserMessage)
        self.lamport.merge(message.lamport)
        if message.vector:
            self.vector.merge(message.vector)
        else:
            self.vector.tick()
        event = self._record(
            EventKind.RECEIVE,
            message=message.payload,
            channel=envelope.channel,
            detail=message.tag,
            tick=False,
        )
        self.process.on_message(self.ctx, envelope.src, message.payload)
        return event

    # -- user actions (via ProcessContext) ------------------------------------------------

    def user_send(self, dst: ProcessId, payload: object, tag: Optional[str]) -> None:
        self._require_live("send")
        channel = self.system.channel(ChannelId(self.name, dst))
        if channel is None:
            raise TopologyError(f"{self.name!r} has no outgoing channel to {dst!r}")
        if self.system.controller(dst).never_halts:
            raise TopologyError(f"{dst!r} is a debugger/monitor process")
        self.lamport.tick()
        self.vector.tick()
        message = UserMessage(
            payload=payload, tag=tag,
            lamport=self.lamport.value, vector=self.vector.snapshot(),
        )
        channel.send(MessageKind.USER, message)
        self._record(
            EventKind.SEND, message=payload,
            channel=channel.id, detail=tag, tick=False,
        )

    def user_create_channel(self, dst: ProcessId) -> None:
        raise ConfigurationError("dynamic channels are DES-backend-only")

    def user_destroy_channel(self, dst: ProcessId) -> None:
        raise ConfigurationError("dynamic channels are DES-backend-only")

    def user_set_timer(self, name: str, delay: float, payload: object) -> None:
        self._require_live("set a timer")
        self.user_cancel_timer(name)
        scaled = delay * self.system.time_scale
        generation = self._timer_gen.get(name, 0) + 1
        self._timer_gen[name] = generation
        timer = threading.Timer(
            scaled, self._timer_post, args=(name, payload, generation)
        )
        timer.daemon = True
        self._timers[name] = timer
        timer.start()

    def _timer_post(self, name: str, payload: object, generation: int) -> None:
        # Armed timers are tracked via self._timers for quiescence; the
        # activity credit starts only when the expiration enters the mailbox.
        self.system.note_activity(+1)
        self.inbox.put(("timer", name, payload, generation))

    def user_cancel_timer(self, name: str) -> bool:
        timer = self._timers.pop(name, None)
        if timer is None:
            return False
        timer.cancel()
        return True

    def _timer_fired(self, name: str, payload: object, generation: int) -> None:
        if self._timer_gen.get(name) != generation:
            return  # stale expiration of a cancelled/re-armed timer
        self._timers.pop(name, None)
        if self.terminated:
            return
        if self.halted:
            self._deferred_timers.append((name, payload))
            return
        self._record(EventKind.TIMER, detail=name)
        self.process.on_timer(self.ctx, name, payload)

    def user_terminate(self) -> None:
        self._require_live("terminate")
        self._record(EventKind.PROCESS_TERMINATED)
        self.terminated = True

    # -- control plane ------------------------------------------------------------------------

    def send_control(self, channel_id: ChannelId, kind: MessageKind, payload: object) -> None:
        channel = self.system.channel(channel_id)
        if channel is None:
            raise TopologyError(f"no channel {channel_id} for control send")
        # No tick on control sends — see the DES controller's send_control.
        channel.send(kind, payload, clock=(self.lamport.value, self.vector.snapshot()))

    # -- halting ----------------------------------------------------------------------------------

    def halt(self, **meta: object) -> ProcessStateSnapshot:
        if self.never_halts:
            raise RuntimeStateError(f"{self.name} never halts")
        if self.halted:
            raise RuntimeStateError(f"{self.name} already halted")
        snapshot = self.capture_state(**meta)
        self.halted = True
        self.halted_snapshot = snapshot
        for plugin in self._plugins:
            plugin.on_halted()
        self._muted = True
        try:
            self.process.on_halt(self.ctx)
        finally:
            self._muted = False
        return snapshot

    def resume(self) -> None:
        if not self.halted:
            raise RuntimeStateError(f"{self.name} is not halted")
        self.halted = False
        self.halted_snapshot = None
        self.halt_buffers = {}
        self.closed_channels = set()
        replay = self._halt_buffer_order
        self._halt_buffer_order = []
        timers = self._deferred_timers
        self._deferred_timers = []
        self._muted = True
        try:
            self.process.on_resume(self.ctx)
        finally:
            self._muted = False
        for plugin in self._plugins:
            plugin.on_resumed()
        for envelope in replay:
            if self.halted:
                self.halt_buffers.setdefault(envelope.channel, []).append(envelope)
                self._halt_buffer_order.append(envelope)
                continue
            event = self._process_user_envelope(envelope)
            for plugin in self._plugins:
                plugin.on_user_delivered(envelope, event)
        for name, payload in timers:
            if self.terminated or self.halted:
                self._deferred_timers.append((name, payload))
                continue
            self._record(EventKind.TIMER, detail=name)
            self.process.on_timer(self.ctx, name, payload)

    def capture_state(self, **meta: object) -> ProcessStateSnapshot:
        return capture(
            process=self.name,
            state=self.ctx.state,
            local_seq=self._local_seq,
            lamport=self.lamport.value,
            vector=self.vector.snapshot(),
            vector_index=self.vector.owner_index,
            time=self.now,
            terminated=self.terminated,
            **meta,
        )

    def note_channel_closed(self, channel_id: ChannelId) -> None:
        self.closed_channels.add(channel_id)

    # -- event recording ------------------------------------------------------------------------------

    def note_state_change(self, key: str, value: object, deleted: bool = False) -> None:
        if self._muted:
            return
        self._record(
            EventKind.STATE_CHANGE, detail=key,
            attrs={"key": key, "value": value, "deleted": deleted},
        )

    def note_procedure_entry(self, name: str) -> None:
        if not self._muted:
            self._record(EventKind.PROCEDURE_ENTRY, detail=name)

    def note_procedure_exit(self, name: str) -> None:
        if not self._muted:
            self._record(EventKind.PROCEDURE_EXIT, detail=name)

    def note_mark(self, detail: str, attrs: Dict[str, object]) -> None:
        if not self._muted:
            self._record(EventKind.STATE_CHANGE, detail=detail, attrs=attrs)

    def _record(self, kind: EventKind, message: object = None,
                channel: Optional[ChannelId] = None, detail: Optional[str] = None,
                attrs: Optional[Dict[str, object]] = None, tick: bool = True) -> Event:
        if tick:
            self.lamport.tick()
            self.vector.tick()
        self._local_seq += 1
        event_args = dict(
            process=self.name,
            kind=kind,
            time=self.now,
            lamport=self.lamport.value,
            vector=self.vector.snapshot(),
            vector_index=self.vector.owner_index,
            message=message,
            channel=channel,
            detail=detail,
            local_seq=self._local_seq,
            attrs=attrs or {},
        )
        event = self.system.record_event(event_args)
        for plugin in self._plugins:
            plugin.on_local_event(event)
        return event

    def _require_live(self, action: str) -> None:
        if self.terminated:
            raise RuntimeStateError(f"{self.name} is terminated and cannot {action}")
        if self.halted:
            raise RuntimeStateError(f"{self.name} is halted and cannot {action}")


class _Lamport:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def tick(self) -> int:
        self.value += 1
        return self.value

    def merge(self, received: int) -> int:
        self.value = max(self.value, received) + 1
        return self.value


class ThreadedSystem:
    """Thread-per-process runtime with the System API subset plugins use."""

    def __init__(
        self,
        topology: Topology,
        processes: Mapping[ProcessId, Process],
        seed: int = 0,
        latency_range: Tuple[float, float] = (0.0005, 0.003),
        time_scale: float = 0.01,
        never_halt: Iterable[ProcessId] = (),
    ) -> None:
        missing = set(topology.processes) - set(processes)
        if missing:
            raise ConfigurationError(f"no Process supplied for {sorted(missing)}")
        self.topology = topology
        self.seed = seed
        self.time_scale = time_scale
        self.capture_states = False
        self.clock_frame = ClockFrame(topology.processes)
        self.log = EventLog()
        self._log_lock = threading.Lock()
        self._event_ids = SequenceGenerator(start=1)
        self._message_seqs = SequenceGenerator(start=1)
        self._activity = 0
        self._activity_lock = threading.Lock()
        self._epoch = time.monotonic()

        never_halt = set(never_halt)
        self.controllers: Dict[ProcessId, ThreadedController] = {
            name: ThreadedController(
                self, name, processes[name], never_halts=name in never_halt
            )
            for name in topology.processes
        }
        self._channels: Dict[ChannelId, ThreadedChannel] = {
            channel_id: ThreadedChannel(
                channel_id, self, latency_range, f"{seed}|chan|{channel_id}"
            )
            for channel_id in topology.channels
        }
        self._out: Dict[ProcessId, List[ChannelId]] = {p: [] for p in topology.processes}
        self._in: Dict[ProcessId, List[ChannelId]] = {p: [] for p in topology.processes}
        for channel_id in topology.channels:
            self._out[channel_id.src].append(channel_id)
            self._in[channel_id.dst].append(channel_id)
        self._started = False

    # -- surface shared with the DES System -----------------------------------

    @property
    def now(self) -> float:
        return time.monotonic() - self._epoch

    def controller(self, name: ProcessId) -> ThreadedController:
        return self.controllers[name]

    def channel(self, channel_id: ChannelId) -> Optional[ThreadedChannel]:
        return self._channels.get(channel_id)

    def outgoing_channels(self, process: ProcessId) -> Tuple[ChannelId, ...]:
        return tuple(self._out[process])

    def incoming_channels(self, process: ProcessId) -> Tuple[ChannelId, ...]:
        return tuple(self._in[process])

    def find_path(self, src: ProcessId, dst: ProcessId) -> Optional[List[ProcessId]]:
        if src == dst:
            return [src]
        frontier = [src]
        parent = {src: src}
        while frontier:
            node = frontier.pop(0)
            for channel_id in self._out[node]:
                nxt = channel_id.dst
                if nxt in parent:
                    continue
                parent[nxt] = node
                if nxt == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                frontier.append(nxt)
        return None

    @property
    def user_process_names(self) -> Tuple[ProcessId, ...]:
        return tuple(
            n for n in self.topology.processes
            if not self.controllers[n].never_halts
        )

    def all_user_processes_halted(self) -> bool:
        return all(self.controllers[n].halted for n in self.user_process_names)

    def state_of(self, name: ProcessId) -> dict:
        return dict(self.controllers[name].ctx.state)

    def message_totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for channel in self._channels.values():
            for kind, count in channel.sent_by_kind.items():
                totals[kind.value] = totals.get(kind.value, 0) + count
        return totals

    # -- bookkeeping ----------------------------------------------------------------

    def record_event(self, event_args: Dict) -> Event:
        with self._log_lock:
            event = Event(eid=self._event_ids.next(), **event_args)
            self.log.append(event)
        return event

    def next_message_seq(self) -> int:
        return self._message_seqs.next()

    def note_activity(self, delta: int) -> None:
        with self._activity_lock:
            self._activity += delta

    @property
    def pending_activity(self) -> int:
        with self._activity_lock:
            return self._activity

    # -- execution ----------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise ConfigurationError("already started")
        self._started = True
        for channel in self._channels.values():
            channel.start()
        for name in self.topology.processes:
            # Credit one activity unit per on_start so quiescence detection
            # cannot trigger before startup completes.
            self.note_activity(+1)
            self.controllers[name].start()

    def run_until(self, condition: Callable[[], bool], timeout: float = 30.0,
                  poll: float = 0.002) -> bool:
        """Wait until ``condition()`` holds. Returns False on timeout."""
        if not self._started:
            self.start()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if condition():
                return True
            time.sleep(poll)
        return condition()

    def settle(self, quiet: float = 0.05, timeout: float = 30.0) -> bool:
        """Wait for quiescence: no in-flight messages, empty mailboxes, no
        armed timers, stable for ``quiet`` seconds."""
        if not self._started:
            self.start()
        deadline = time.monotonic() + timeout
        quiet_since: Optional[float] = None
        while time.monotonic() < deadline:
            busy = self.pending_activity > 0 or any(
                not c.inbox.empty() for c in self.controllers.values()
            ) or any(c._timers for c in self.controllers.values())
            if busy:
                quiet_since = None
            elif quiet_since is None:
                quiet_since = time.monotonic()
            elif time.monotonic() - quiet_since >= quiet:
                return True
            time.sleep(0.005)
        return False

    def shutdown(self) -> None:
        for channel in self._channels.values():
            channel.stop()
        for controller in self.controllers.values():
            for timer in list(controller._timers.values()):
                timer.cancel()
            controller.inbox.put(_STOP)
        for controller in self.controllers.values():
            controller.join()
        for channel in self._channels.values():
            channel.join()
