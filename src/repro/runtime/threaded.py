"""Threaded backend: the same programs and algorithms on real threads.

The DES backend proves the algorithms correct under *controlled*
nondeterminism (seeded interleavings). This backend removes the control:
every process is an OS thread, channels are queue-fed forwarder threads
with real (small) sleeps, and the scheduler is the operating system. The
marker algorithms run unchanged — they only use the controller surface
(``send_control``, ``halt``, ``outgoing_channels``, ``defer``, …), which
this module re-implements over threads.

What can be asserted here is what the paper asserts: every halted cut is
*consistent* (checked by the same oracle), money is conserved, markers
close channels — not bitwise equality between runs, which genuine
nondeterminism forecloses. The GIL is irrelevant: message-passing programs
block on queues, and correctness never depends on parallel speedup.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.events.clocks import ClockFrame
from repro.events.event import Event, EventKind
from repro.events.log import EventLog
from repro.faults.injection import ChannelFaultInjector, CrashAfterEvents, injector_for
from repro.faults.plan import FaultPlan
from repro.network.channel import ChannelStats
from repro.network.message import Envelope, MessageKind
from repro.network.reliable import ReliabilityConfig
from repro.runtime.context import ProcessContext
from repro.runtime.interfaces import ControlPlugin
from repro.runtime.payload import UserMessage
from repro.runtime.process import Process
from repro.runtime.state_capture import ProcessStateSnapshot, capture
from repro.network.topology import Topology
from repro.util.errors import (
    ConfigurationError,
    FaultError,
    RuntimeStateError,
    TopologyError,
)
from repro.util.ids import ChannelId, ProcessId, SequenceGenerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe.integrate import Observability

_STOP = object()


class _PendingFrame:
    """Sender-side state of one unacknowledged message (reliable mode)."""

    __slots__ = ("envelope", "attempts", "timer")

    def __init__(self, envelope: Envelope) -> None:
        self.envelope = envelope
        self.attempts = 0
        self.timer: Optional[threading.Timer] = None


class ThreadedChannel:
    """FIFO link: a queue drained by one forwarder thread that sleeps the
    sampled latency before handing the envelope to the receiver's mailbox.
    Serial forwarding makes FIFO structural, exactly like the DES clamp.

    With an injector, the wire loses/duplicates frames (reorder shows up
    only as extra delay here — the serial forwarder keeps frames in order,
    so true reordering is a DES-only fault). With ``reliability`` set, the
    same ack/retransmit protocol as the DES
    :class:`~repro.network.reliable.ReliableChannel` runs over this wire:
    sequence numbers, cumulative acks (applied directly to sender state —
    the reverse path of a threaded link is a method call), retransmission
    via real timers (scaled by the system's ``time_scale``), capped retries.

    Activity accounting for ``settle()``: the ``+1`` taken at ``send``
    belongs to the *logical message* and is released by the receiver's main
    loop after it processes the delivery. A wire drop in raw mode releases
    it in the forwarder (the message will never arrive); in reliable mode
    the credit stays held across retransmissions until the message is
    delivered or given up, so ``settle()`` cannot declare quiescence while
    a retransmission is still owed.
    """

    def __init__(self, channel_id: ChannelId, system: "ThreadedSystem",
                 latency_range: Tuple[float, float], seed: str,
                 injector: Optional[ChannelFaultInjector] = None,
                 reliability: Optional[ReliabilityConfig] = None) -> None:
        self.id = channel_id
        self._system = system
        self._latency_range = latency_range
        self._rng = random.Random(seed)
        self._retry_rng = random.Random(f"{seed}|retry")
        self._injector = None if (injector is not None and injector.is_noop) else injector
        self._reliability = reliability
        self._queue: "queue.Queue" = queue.Queue()
        self._thread = threading.Thread(
            target=self._forward_loop, name=f"chan-{channel_id}", daemon=True
        )
        self.stats = ChannelStats()
        # Legacy alias (message_totals and older tests read this).
        self.sent_by_kind = self.stats.sent_by_kind
        self.failed = False
        #: Observability hooks, same contract as ``ReliableChannel``'s:
        #: invoked outside ``_lock`` (they may re-enter channel state).
        self.on_retransmit: Optional[Callable[[int, Envelope, int], None]] = None
        self.on_recovered: Optional[Callable[[int, Envelope, int], None]] = None
        self.on_give_up: Optional[Callable[[Envelope], None]] = None
        self._lock = threading.Lock()
        self._stopping = False
        # Reliable-mode protocol state (all guarded by _lock).
        self._next_rseq = 1
        self._unacked: Dict[int, _PendingFrame] = {}
        self._expected = 1
        self._out_of_order: Dict[int, Envelope] = {}

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        with self._lock:
            self._stopping = True
            for pending in self._unacked.values():
                if pending.timer is not None:
                    pending.timer.cancel()
            self._unacked.clear()
        self._queue.put(_STOP)

    def join(self, timeout: float = 1.0) -> None:
        self._thread.join(timeout)

    def send(self, kind: MessageKind, payload: object, clock: object = None) -> Envelope:
        envelope = Envelope(
            channel=self.id,
            kind=kind,
            payload=payload,
            send_time=self._system.now,
            seq=self._system.next_message_seq(),
            clock=clock,
        )
        self._system.note_activity(+1)
        with self._lock:
            self.stats.sent += 1
            self.stats.sent_by_kind[kind] += 1
            if self._reliability is None:
                rseq = None
            else:
                rseq = self._next_rseq
                self._next_rseq += 1
                self._unacked[rseq] = _PendingFrame(envelope)
        self._queue.put((rseq, envelope))
        if rseq is not None:
            self._arm_retry(rseq)
        return envelope

    # -- forwarder (wire + receiver-side protocol endpoint) -------------------

    def _forward_loop(self) -> None:
        receiver = self._system.controller(self.id.dst)
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            rseq, envelope = item
            is_user = envelope.kind.is_user
            low, high = self._latency_range
            delay = self._rng.uniform(low, high)
            if self._injector is not None:
                # Reorder degrades to extra delay on this backend: the
                # serial forwarder is structurally FIFO.
                delay += self._injector.extra_delay(is_user) * self._system.time_scale
            time.sleep(delay)
            copies = 1
            if self._injector is not None:
                copies += self._injector.duplicates(is_user)
            arrived = 0
            for _ in range(copies):
                # drop_frame first, unconditionally: it consumes the loss
                # RNG stream, so partitions don't perturb probabilistic loss.
                if self._injector is not None and (
                    self._injector.drop_frame(is_user)
                    or self._injector.partitioned(
                        self._system.now / (self._system.time_scale or 1.0)
                    )
                ):
                    with self._lock:
                        self.stats.frames_dropped += 1
                    self._system.note_drop(envelope)
                    continue
                arrived += 1
            if self._reliability is None:
                if arrived == 0:
                    # Raw wire: the message is gone for good. Release the
                    # logical-message credit taken at send.
                    with self._lock:
                        self.stats.dropped += 1
                        self.stats.dropped_by_kind[envelope.kind] += 1
                    self._system.note_activity(-1)
                    continue
                if receiver.crashed:
                    # Frames addressed at a dead host fall on the floor.
                    self._system.note_activity(-1)
                    continue
                with self._lock:
                    self.stats.delivered += 1
                    self.stats.total_latency += self._system.now - envelope.send_time
                # The +1 from send() transfers to the mailbox item; the
                # receiver's main loop decrements after processing it.
                receiver.inbox.put(("env", envelope))
                for _ in range(arrived - 1):
                    # Wire-made duplicates each need their own credit.
                    with self._lock:
                        self.stats.delivered += 1
                    self._system.note_activity(+1)
                    receiver.inbox.put(("env", envelope))
                continue
            # Reliable mode: the surviving copies reach the protocol
            # endpoint; duplicates collapse there.
            for _ in range(arrived):
                self._protocol_receive(rseq, envelope, receiver)

    def _protocol_receive(self, rseq: int, envelope: Envelope,
                          receiver: "ThreadedController") -> None:
        if receiver.crashed:
            return  # dead host: neither delivers nor acks
        deliveries = []
        with self._lock:
            if rseq < self._expected or rseq in self._out_of_order:
                self.stats.duplicates_suppressed += 1
            else:
                self._out_of_order[rseq] = envelope
                while self._expected in self._out_of_order:
                    head = self._out_of_order.pop(self._expected)
                    self._expected += 1
                    self.stats.delivered += 1
                    self.stats.total_latency += self._system.now - head.send_time
                    deliveries.append(head)
            cumulative = self._expected - 1
        for head in deliveries:
            # Each in-order delivery carries the credit taken at its send.
            receiver.inbox.put(("env", head))
        self._send_ack(cumulative, envelope.kind.is_user)

    # -- ack + retransmit (reliable mode) --------------------------------------

    def _send_ack(self, cumulative: int, is_user: bool) -> None:
        with self._lock:
            self.stats.acks_sent += 1
        if self._injector is not None and self._injector.drop_ack(is_user):
            with self._lock:
                self.stats.acks_dropped += 1
            return
        if self._system.controller(self.id.src).crashed:
            return  # a dead sender has no transport state to update
        recovered: List[Tuple[int, Envelope, int]] = []
        with self._lock:
            for rseq in [r for r in self._unacked if r <= cumulative]:
                pending = self._unacked.pop(rseq)
                if pending.timer is not None:
                    pending.timer.cancel()
                if pending.attempts > 0:
                    recovered.append((rseq, pending.envelope, pending.attempts))
        if self.on_recovered is not None:
            for rseq, envelope, attempts in recovered:
                self.on_recovered(rseq, envelope, attempts)

    def _arm_retry(self, rseq: int) -> None:
        assert self._reliability is not None
        with self._lock:
            pending = self._unacked.get(rseq)
            if pending is None or self._stopping:
                return
            timeout = self._reliability.timeout_for(pending.attempts, self._retry_rng)
            timer = threading.Timer(
                timeout * self._system.time_scale, self._retry_fire, args=(rseq,)
            )
            timer.daemon = True
            pending.timer = timer
        timer.start()

    def _retry_fire(self, rseq: int) -> None:
        assert self._reliability is not None
        gave_up: Optional[Envelope] = None
        retransmit = False
        with self._lock:
            pending = self._unacked.get(rseq)
            if pending is None or self._stopping:
                return
            if self._system.controller(self.id.src).crashed:
                # Dead senders don't retransmit. Release the credit if the
                # message never made it, so settle() can still quiesce.
                self._unacked.pop(rseq, None)
                undelivered = rseq >= self._expected and rseq not in self._out_of_order
                if undelivered:
                    self.stats.dropped += 1
                    self.stats.dropped_by_kind[pending.envelope.kind] += 1
                    self._system.note_activity(-1)
                return
            pending.attempts += 1
            if pending.attempts > self._reliability.max_retries:
                self._unacked.pop(rseq, None)
                self.stats.gave_up += 1
                undelivered = rseq >= self._expected and rseq not in self._out_of_order
                if undelivered:
                    self.failed = True
                    self.stats.dropped += 1
                    self.stats.dropped_by_kind[pending.envelope.kind] += 1
                    self._system.note_activity(-1)
                    gave_up = pending.envelope
            else:
                self.stats.retransmits += 1
                envelope = pending.envelope
                attempts = pending.attempts
                retransmit = True
        if gave_up is not None and self.on_give_up is not None:
            self.on_give_up(gave_up)
        if not retransmit:
            return
        if self.on_retransmit is not None:
            self.on_retransmit(rseq, envelope, attempts)
        self._queue.put((rseq, envelope))
        self._arm_retry(rseq)


class ThreadedController:
    """Thread-hosted counterpart of the DES ProcessController. Exposes the
    same surface the algorithm plugins use."""

    def __init__(self, system: "ThreadedSystem", name: ProcessId,
                 process: Process, never_halts: bool = False) -> None:
        self.system = system
        self.name = name
        self.process = process
        self.never_halts = never_halts
        self.user_rng = random.Random(f"{system.seed}|proc|{name}")
        self.lamport = _Lamport()
        self.vector = system.clock_frame.clock_for(name)
        self.ctx = ProcessContext(self)
        self.halted = False
        self.terminated = False
        #: Fail-stop fault: the host is dead (see the DES controller).
        self.crashed = False
        #: Transient freeze (fault injection): buffers like halt, invisible
        #: to the debugging system.
        self.stalled = False
        self._stall_until = 0.0
        self._stall_credit = False
        self._stall_buffer: List[Envelope] = []
        self._stall_timers: List[Tuple[str, object]] = []
        self.halted_snapshot: Optional[ProcessStateSnapshot] = None
        self.halt_buffers: Dict[ChannelId, List[Envelope]] = {}
        self._halt_buffer_order: List[Envelope] = []
        self.closed_channels: set = set()
        self._deferred_timers: List[Tuple[str, object]] = []
        self._timers: Dict[str, threading.Timer] = {}
        self._timer_gen: Dict[str, int] = {}
        # Gate mode only: mirrors the DES controller's per-set_timer
        # counter so staged-timer tiebreaks match across backends.
        self._timer_seq = 0
        self._local_seq = 0
        self._muted = False
        self._restored = False
        self._plugins: List[ControlPlugin] = []
        self.inbox: "queue.Queue" = queue.Queue()
        self._thread = threading.Thread(
            target=self._main_loop, name=f"proc-{name}", daemon=True
        )

    # -- wiring ------------------------------------------------------------

    def install(self, plugin: ControlPlugin) -> None:
        plugin.attach(self)
        self._plugins.append(plugin)

    def plugin_of(self, cls: type) -> Optional[ControlPlugin]:
        for plugin in self._plugins:
            if isinstance(plugin, cls):
                return plugin
        return None

    # -- surface used by ProcessContext and plugins ---------------------------

    @property
    def now(self) -> float:
        return self.system.now

    def neighbors_out(self) -> Tuple[ProcessId, ...]:
        return tuple(
            c.dst for c in self.system.outgoing_channels(self.name)
            if not self.system.controller(c.dst).never_halts
        )

    def neighbors_in(self) -> Tuple[ProcessId, ...]:
        return tuple(
            c.src for c in self.system.incoming_channels(self.name)
            if not self.system.controller(c.src).never_halts
        )

    def outgoing_channels(self) -> Tuple[ChannelId, ...]:
        return self.system.outgoing_channels(self.name)

    def incoming_channels(self) -> Tuple[ChannelId, ...]:
        return self.system.incoming_channels(self.name)

    def defer(self, action: Callable[[], None], label: str = "defer") -> None:
        # getattr: the distributed HostRuntime reuses this controller and
        # has no gate attribute (gating there happens at the frame layer).
        gate = getattr(self.system, "gate", None)
        if gate is not None:
            # Gate mode: the action becomes an explorable internal step
            # with the DES backend's label, instead of an immediate post.
            gate.stage_internal(label, self, action)
            return
        self.system.note_activity(+1)
        self.inbox.put(("call", action))

    # -- lifecycle ----------------------------------------------------------------

    def preload(self, snapshot: ProcessStateSnapshot) -> None:
        """Load a previously captured state before the thread starts — the
        restoration half of halting, mirroring the DES controller's
        ``preload``. State, clocks, and counters resume where the capture
        left them; the new incarnation continues the old causal history."""
        if self._local_seq or self.ctx.state:
            raise RuntimeStateError(
                f"{self.name} already has history; preload before start"
            )
        self._muted = True
        try:
            self.ctx.state.update(snapshot.state)
        finally:
            self._muted = False
        self.lamport.load(snapshot.lamport)
        self.vector.load(snapshot.vector)
        self._local_seq = snapshot.local_seq
        self.terminated = snapshot.terminated
        self._restored = True

    def start(self) -> None:
        self._thread.start()

    def join(self, timeout: float = 2.0) -> None:
        self._thread.join(timeout)

    def _main_loop(self) -> None:
        if self._restored:
            # A resurrected process continues, it is not created anew.
            self.process.on_restore(self.ctx)
        else:
            self._record(EventKind.PROCESS_CREATED)
            self.process.on_start(self.ctx)
        self.system.note_activity(-1)  # balances the start credit
        while True:
            item = self.inbox.get()
            if item is _STOP:
                return
            try:
                self._dispatch(item)
            finally:
                self.system.note_activity(-1)

    def _dispatch(self, item: Tuple) -> None:
        kind = item[0]
        if kind == "env":
            self._deliver(item[1])
        elif kind == "timer":
            self._timer_fired(item[1], item[2], item[3])
        elif kind == "call":
            item[1]()
        else:  # pragma: no cover - defensive
            raise RuntimeStateError(f"unknown mailbox item {item!r}")

    # -- deliveries -------------------------------------------------------------------

    def _deliver(self, envelope: Envelope) -> None:
        if self.crashed:
            return  # frames at a dead host fall on the floor
        if self.stalled:
            # A frozen host processes nothing — control plane included.
            self._stall_buffer.append(envelope)
            return
        if envelope.kind is MessageKind.USER:
            self._deliver_user(envelope)
            return
        if envelope.clock is not None:
            lamport, vector = envelope.clock
            self.lamport.merge(lamport)
            self.vector.merge(vector)
        routed = False
        for plugin in self._plugins:
            if envelope.kind in plugin.kinds:
                plugin.on_control(envelope)
                routed = True
        if not routed:
            raise RuntimeStateError(
                f"{self.name}: no plugin handles {envelope.kind.value}"
            )

    def _deliver_user(self, envelope: Envelope) -> None:
        if self.halted or self.terminated:
            self.halt_buffers.setdefault(envelope.channel, []).append(envelope)
            self._halt_buffer_order.append(envelope)
            for plugin in self._plugins:
                plugin.on_user_delivered(envelope, None)
            return
        event = self._process_user_envelope(envelope)
        for plugin in self._plugins:
            plugin.on_user_delivered(envelope, event)

    def _process_user_envelope(self, envelope: Envelope) -> Event:
        message = envelope.payload
        assert isinstance(message, UserMessage)
        self.lamport.merge(message.lamport)
        if message.vector:
            self.vector.merge(message.vector)
        else:
            self.vector.tick()
        event = self._record(
            EventKind.RECEIVE,
            message=message.payload,
            channel=envelope.channel,
            detail=message.tag,
            tick=False,
        )
        self.process.on_message(self.ctx, envelope.src, message.payload)
        return event

    # -- user actions (via ProcessContext) ------------------------------------------------

    def user_send(self, dst: ProcessId, payload: object, tag: Optional[str]) -> None:
        self._require_live("send")
        channel = self.system.channel(ChannelId(self.name, dst))
        if channel is None:
            raise TopologyError(f"{self.name!r} has no outgoing channel to {dst!r}")
        if self.system.controller(dst).never_halts:
            raise TopologyError(f"{dst!r} is a debugger/monitor process")
        self.lamport.tick()
        self.vector.tick()
        message = UserMessage(
            payload=payload, tag=tag,
            lamport=self.lamport.value, vector=self.vector.snapshot(),
        )
        channel.send(MessageKind.USER, message)
        self._record(
            EventKind.SEND, message=payload,
            channel=channel.id, detail=tag, tick=False,
        )

    def user_create_channel(self, dst: ProcessId) -> None:
        raise ConfigurationError("dynamic channels are DES-backend-only")

    def user_destroy_channel(self, dst: ProcessId) -> None:
        raise ConfigurationError("dynamic channels are DES-backend-only")

    def user_set_timer(self, name: str, delay: float, payload: object) -> None:
        self._require_live("set a timer")
        self.user_cancel_timer(name)
        generation = self._timer_gen.get(name, 0) + 1
        self._timer_gen[name] = generation
        gate = getattr(self.system, "gate", None)
        if gate is not None:
            # Gate mode: the expiration is staged at virtual ``now +
            # delay`` (unscaled — there is no wall clock to stretch) with
            # the DES controller's tiebreak, making it an explorable step.
            self._timer_seq += 1
            gate.stage_timer(self, name, delay, payload, generation,
                             self._timer_seq)
            return
        scaled = delay * self.system.time_scale
        timer = threading.Timer(
            scaled, self._timer_post, args=(name, payload, generation)
        )
        timer.daemon = True
        self._timers[name] = timer
        timer.start()

    def _timer_post(self, name: str, payload: object, generation: int) -> None:
        # Armed timers are tracked via self._timers for quiescence; the
        # activity credit starts only when the expiration enters the mailbox.
        self.system.note_activity(+1)
        self.inbox.put(("timer", name, payload, generation))

    def user_cancel_timer(self, name: str) -> bool:
        gate = getattr(self.system, "gate", None)
        if gate is not None:
            return gate.cancel_timer(self.name, name)
        timer = self._timers.pop(name, None)
        if timer is None:
            return False
        timer.cancel()
        return True

    def _timer_fired(self, name: str, payload: object, generation: int) -> None:
        if self._timer_gen.get(name) != generation:
            return  # stale expiration of a cancelled/re-armed timer
        self._timers.pop(name, None)
        if self.terminated or self.crashed:
            return
        if self.stalled:
            self._stall_timers.append((name, payload))
            return
        if self.halted:
            self._deferred_timers.append((name, payload))
            return
        self._record(EventKind.TIMER, detail=name)
        self.process.on_timer(self.ctx, name, payload)

    # -- fault injection ------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop this process. Runs on the process's own thread (posted
        via ``defer``/the fault scheduler), so it lands on a handler
        boundary. The mailbox keeps draining (to release activity credits)
        but nothing is processed ever again."""
        if self.crashed:
            return
        self._record(EventKind.PROCESS_CRASHED)
        self.crashed = True
        gate = getattr(self.system, "gate", None)
        if gate is not None:
            # Staged timers die with the host, matching the DES
            # controller's handle cancellation.
            gate.cancel_process_timers(self.name)
        for name in list(self._timers):
            self.user_cancel_timer(name)
        self._deferred_timers = []
        self._stall_buffer = []
        self._stall_timers = []

    def stall(self, duration: float) -> None:
        """Freeze for ``duration`` (virtual units, scaled like timers).
        Buffered arrivals/timers replay afterwards in order."""
        if self.crashed or self.terminated or duration <= 0:
            return
        scaled = duration * self.system.time_scale
        self._stall_until = max(self._stall_until, time.monotonic() + scaled)
        if not self.stalled:
            self.stalled = True
            if not self._stall_credit:
                # Hold one activity credit for the whole window so settle()
                # cannot declare quiescence while replays are still owed.
                self._stall_credit = True
                self.system.note_activity(+1)
            self._arm_unstall(scaled)

    def _arm_unstall(self, delay: float) -> None:
        timer = threading.Timer(delay, self._post_unstall)
        timer.daemon = True
        timer.start()

    def _post_unstall(self) -> None:
        self.system.note_activity(+1)
        self.inbox.put(("call", self._maybe_unstall))

    def _maybe_unstall(self) -> None:
        if not self.stalled or self.crashed:
            self._release_stall_credit()
            return
        remaining = self._stall_until - time.monotonic()
        if remaining > 0:
            self._arm_unstall(remaining)  # window was extended
            return
        self.stalled = False
        replay = self._stall_buffer
        self._stall_buffer = []
        timers = self._stall_timers
        self._stall_timers = []
        for envelope in replay:
            if self.stalled or self.crashed:
                self._stall_buffer.append(envelope)
                continue
            self._deliver(envelope)
        for name, payload in timers:
            if self.stalled or self.crashed:
                self._stall_timers.append((name, payload))
                continue
            self._timer_fired(name, payload, self._timer_gen.get(name, 0))
        if not self.stalled:
            self._release_stall_credit()

    def _release_stall_credit(self) -> None:
        if self._stall_credit:
            self._stall_credit = False
            self.system.note_activity(-1)

    def user_terminate(self) -> None:
        self._require_live("terminate")
        self._record(EventKind.PROCESS_TERMINATED)
        self.terminated = True

    # -- control plane ------------------------------------------------------------------------

    def send_control(self, channel_id: ChannelId, kind: MessageKind, payload: object) -> None:
        channel = self.system.channel(channel_id)
        if channel is None:
            raise TopologyError(f"no channel {channel_id} for control send")
        # No tick on control sends — see the DES controller's send_control.
        channel.send(kind, payload, clock=(self.lamport.value, self.vector.snapshot()))

    # -- halting ----------------------------------------------------------------------------------

    def halt(self, **meta: object) -> ProcessStateSnapshot:
        if self.never_halts:
            raise RuntimeStateError(f"{self.name} never halts")
        if self.crashed:
            raise RuntimeStateError(f"{self.name} has crashed; there is nothing to halt")
        if self.halted:
            raise RuntimeStateError(f"{self.name} already halted")
        snapshot = self.capture_state(**meta)
        self.halted = True
        self.halted_snapshot = snapshot
        for plugin in self._plugins:
            plugin.on_halted()
        self._muted = True
        try:
            self.process.on_halt(self.ctx)
        finally:
            self._muted = False
        return snapshot

    def rehalt(self, **meta: object) -> ProcessStateSnapshot:
        # See the DES controller's rehalt: a frozen process adopting a
        # newer halt generation after a partition ate its notification
        # or resume. State is untouched (nothing ran since the halt);
        # generation metadata updates and channels re-drain.
        if not self.halted:
            raise RuntimeStateError(
                f"{self.name} is not halted; rehalt is only for adopting "
                "a newer generation while frozen"
            )
        assert self.halted_snapshot is not None
        self.halted_snapshot.meta.update(meta)
        self.closed_channels = set()
        for plugin in self._plugins:
            plugin.on_halted()
        return self.halted_snapshot

    def resume(self) -> None:
        if not self.halted:
            raise RuntimeStateError(f"{self.name} is not halted")
        self.halted = False
        self.halted_snapshot = None
        self.halt_buffers = {}
        self.closed_channels = set()
        replay = self._halt_buffer_order
        self._halt_buffer_order = []
        timers = self._deferred_timers
        self._deferred_timers = []
        self._muted = True
        try:
            self.process.on_resume(self.ctx)
        finally:
            self._muted = False
        for plugin in self._plugins:
            plugin.on_resumed()
        for envelope in replay:
            if self.halted:
                self.halt_buffers.setdefault(envelope.channel, []).append(envelope)
                self._halt_buffer_order.append(envelope)
                continue
            event = self._process_user_envelope(envelope)
            for plugin in self._plugins:
                plugin.on_user_delivered(envelope, event)
        for name, payload in timers:
            if self.terminated or self.halted:
                self._deferred_timers.append((name, payload))
                continue
            self._record(EventKind.TIMER, detail=name)
            self.process.on_timer(self.ctx, name, payload)

    def step_one(self, channel: Optional[str] = None) -> Optional[Envelope]:
        """Deliver exactly one buffered arrival while remaining halted.

        Mirrors the DES controller's ``step_one`` — pop the oldest
        buffered envelope (optionally restricted to ``str(channel)``),
        briefly un-freeze for the handler, then re-freeze with a fresh
        snapshot carrying the same halt generation metadata. Runs on
        this controller's own thread (the debugger defers it into the
        mailbox), so no extra locking is needed.
        """
        if not self.halted:
            raise RuntimeStateError(f"{self.name} is not halted; nothing to step")
        pick: Optional[Envelope] = None
        for envelope in self._halt_buffer_order:
            if channel is None or str(envelope.channel) == str(channel):
                pick = envelope
                break
        if pick is None:
            return None
        self._halt_buffer_order.remove(pick)
        bucket = self.halt_buffers.get(pick.channel, [])
        if pick in bucket:
            bucket.remove(pick)
            if not bucket:
                del self.halt_buffers[pick.channel]
        assert self.halted_snapshot is not None
        meta = {
            key: self.halted_snapshot.meta[key]
            for key in ("halt_id", "halt_path")
            if key in self.halted_snapshot.meta
        }
        self.halted = False
        try:
            event = self._process_user_envelope(pick)
            for plugin in self._plugins:
                plugin.on_user_delivered(pick, event)
        finally:
            if not self.halted:
                self.halted = True
                self.halted_snapshot = self.capture_state(**meta)
        return pick

    def capture_state(self, **meta: object) -> ProcessStateSnapshot:
        return capture(
            process=self.name,
            state=self.ctx.state,
            local_seq=self._local_seq,
            lamport=self.lamport.value,
            vector=self.vector.snapshot(),
            vector_index=self.vector.owner_index,
            time=self.now,
            terminated=self.terminated,
            **meta,
        )

    def note_channel_closed(self, channel_id: ChannelId) -> None:
        self.closed_channels.add(channel_id)

    # -- event recording ------------------------------------------------------------------------------

    def note_state_change(self, key: str, value: object, deleted: bool = False) -> None:
        if self._muted:
            return
        self._record(
            EventKind.STATE_CHANGE, detail=key,
            attrs={"key": key, "value": value, "deleted": deleted},
        )

    def note_procedure_entry(self, name: str) -> None:
        if not self._muted:
            self._record(EventKind.PROCEDURE_ENTRY, detail=name)

    def note_procedure_exit(self, name: str) -> None:
        if not self._muted:
            self._record(EventKind.PROCEDURE_EXIT, detail=name)

    def note_mark(self, detail: str, attrs: Dict[str, object]) -> None:
        if not self._muted:
            self._record(EventKind.STATE_CHANGE, detail=detail, attrs=attrs)

    def _record(self, kind: EventKind, message: object = None,
                channel: Optional[ChannelId] = None, detail: Optional[str] = None,
                attrs: Optional[Dict[str, object]] = None, tick: bool = True) -> Event:
        if tick:
            self.lamport.tick()
            self.vector.tick()
        self._local_seq += 1
        event_args = dict(
            process=self.name,
            kind=kind,
            time=self.now,
            lamport=self.lamport.value,
            vector=self.vector.snapshot(),
            vector_index=self.vector.owner_index,
            message=message,
            channel=channel,
            detail=detail,
            local_seq=self._local_seq,
            attrs=attrs or {},
        )
        event = self.system.record_event(event_args)
        for plugin in self._plugins:
            plugin.on_local_event(event)
        return event

    def _require_live(self, action: str) -> None:
        if self.crashed:
            raise RuntimeStateError(f"{self.name} has crashed and cannot {action}")
        if self.terminated:
            raise RuntimeStateError(f"{self.name} is terminated and cannot {action}")
        if self.halted:
            raise RuntimeStateError(f"{self.name} is halted and cannot {action}")


class _Lamport:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def tick(self) -> int:
        self.value += 1
        return self.value

    def merge(self, received: int) -> int:
        self.value = max(self.value, received) + 1
        return self.value

    def load(self, value: int) -> None:
        """Adopt a restored clock value (see ``preload``)."""
        self.value = value


class ThreadedSystem:
    """Thread-per-process runtime with the System API subset plugins use."""

    def __init__(
        self,
        topology: Topology,
        processes: Mapping[ProcessId, Process],
        seed: int = 0,
        latency_range: Tuple[float, float] = (0.0005, 0.003),
        time_scale: float = 0.01,
        never_halt: Iterable[ProcessId] = (),
        fault_plan: Optional[FaultPlan] = None,
        reliability: Optional[ReliabilityConfig] = None,
        reliable: bool = False,
        observe: Optional["Observability"] = None,
        gate: Optional[object] = None,
    ) -> None:
        missing = set(topology.processes) - set(processes)
        if missing:
            raise ConfigurationError(f"no Process supplied for {sorted(missing)}")
        #: Optional cooperative step gate (:class:`repro.check.gate.
        #: ThreadedStepGate`). When set, channels stage deliveries with the
        #: gate instead of running forwarder threads, timers stage instead
        #: of arming wall clocks, and ``now`` is the gate's virtual clock —
        #: the schedule checker picks which thread advances.
        self.gate = gate
        if gate is not None:
            if reliability is not None or reliable:
                raise ConfigurationError(
                    "gate mode drives raw channels only (the reliable "
                    "layer's retransmission clock is wall time)"
                )
            self._validate_gated_plan(fault_plan)
            gate.bind(self)
        #: Optional live-observability hub (metrics + spans), shared with
        #: the DES backend's ``System.observe``.
        self.observe = observe
        self.topology = topology
        self.seed = seed
        self.time_scale = time_scale
        self.fault_plan = fault_plan
        self._reliability = reliability or (ReliabilityConfig() if reliable else None)
        self.capture_states = False
        self.clock_frame = ClockFrame(topology.processes)
        self.log = EventLog()
        self._log_lock = threading.Lock()
        self._event_ids = SequenceGenerator(start=1)
        self._message_seqs = SequenceGenerator(start=1)
        self._activity = 0
        self._activity_lock = threading.Lock()
        self._idle = threading.Condition(self._activity_lock)
        self._epoch = time.monotonic()

        never_halt = set(never_halt)
        self.controllers: Dict[ProcessId, ThreadedController] = {
            name: ThreadedController(
                self, name, processes[name], never_halts=name in never_halt
            )
            for name in topology.processes
        }
        self._channels: Dict[ChannelId, ThreadedChannel] = {
            channel_id: (
                gate.make_channel(channel_id, self) if gate is not None
                else ThreadedChannel(
                    channel_id, self, latency_range,
                    f"{seed}|chan|{channel_id}",
                    injector=(
                        injector_for(fault_plan, channel_id)
                        if fault_plan is not None else None
                    ),
                    reliability=self._reliability,
                )
            )
            for channel_id in topology.channels
        }
        if observe is not None:
            for channel in self._channels.values():
                observe.wire_channel(channel)
            observe.attach_system(self)
        self._fault_timers: List[threading.Timer] = []
        if fault_plan is not None:
            self._prepare_faults(fault_plan)
        self._out: Dict[ProcessId, List[ChannelId]] = {p: [] for p in topology.processes}
        self._in: Dict[ProcessId, List[ChannelId]] = {p: [] for p in topology.processes}
        for channel_id in topology.channels:
            self._out[channel_id.src].append(channel_id)
            self._in[channel_id.dst].append(channel_id)
        self._started = False

    # -- surface shared with the DES System -----------------------------------

    @property
    def now(self) -> float:
        if self.gate is not None:
            # Virtual time: the clock follows committed gate steps, so
            # timestamps are deterministic and DES-comparable.
            return self.gate.now
        return time.monotonic() - self._epoch

    def _validate_gated_plan(self, plan: Optional[FaultPlan]) -> None:
        """Gate mode supports crash faults only.

        Loss/duplication/reorder and partitions act on the *wire*, which
        gate mode replaces with a staging buffer; stalls are wall-clock
        windows. Rejecting them here beats silently not injecting them.
        """
        if plan is None:
            return
        noisy = [
            name for name, spec in dict(plan.channels).items()
            if not spec.is_noop
        ]
        if not plan.channel_defaults.is_noop:
            noisy.append("<defaults>")
        if noisy or plan.stalls or plan.partitions:
            raise ConfigurationError(
                "gate mode supports crash faults only; this plan has "
                f"channel faults on {noisy!r}, {len(plan.stalls)} stalls, "
                f"{len(plan.partitions)} partitions"
            )

    def controller(self, name: ProcessId) -> ThreadedController:
        return self.controllers[name]

    def channel(self, channel_id: ChannelId) -> Optional[ThreadedChannel]:
        return self._channels.get(channel_id)

    def channels(self) -> List[ThreadedChannel]:
        return list(self._channels.values())

    def outgoing_channels(self, process: ProcessId) -> Tuple[ChannelId, ...]:
        return tuple(self._out[process])

    def incoming_channels(self, process: ProcessId) -> Tuple[ChannelId, ...]:
        return tuple(self._in[process])

    def find_path(self, src: ProcessId, dst: ProcessId) -> Optional[List[ProcessId]]:
        if src == dst:
            return [src]
        frontier = [src]
        parent = {src: src}
        while frontier:
            node = frontier.pop(0)
            for channel_id in self._out[node]:
                nxt = channel_id.dst
                if nxt in parent:
                    continue
                parent[nxt] = node
                if nxt == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                frontier.append(nxt)
        return None

    @property
    def user_process_names(self) -> Tuple[ProcessId, ...]:
        return tuple(
            n for n in self.topology.processes
            if not self.controllers[n].never_halts
        )

    def all_user_processes_halted(self) -> bool:
        return all(self.controllers[n].halted for n in self.user_process_names)

    def all_live_user_processes_halted(self) -> bool:
        """Partial-halt convergence: every user process halted or dead."""
        return all(
            self.controllers[n].halted or self.controllers[n].crashed
            for n in self.user_process_names
        )

    def crashed_process_names(self) -> Tuple[ProcessId, ...]:
        return tuple(
            n for n in self.topology.processes if self.controllers[n].crashed
        )

    def state_of(self, name: ProcessId) -> dict:
        return dict(self.controllers[name].ctx.state)

    def message_totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for channel in self._channels.values():
            for kind, count in channel.sent_by_kind.items():
                totals[kind.value] = totals.get(kind.value, 0) + count
        return totals

    # -- fault scheduling ------------------------------------------------------------

    def _prepare_faults(self, plan: FaultPlan) -> None:
        """Validate the plan and stage its crash/stall schedule. Wall-clock
        timers start in :meth:`start` (plan times are virtual units, scaled
        by ``time_scale`` like everything else on this backend)."""
        self._staged_faults: List[Tuple[float, ProcessId, str, Callable[["ThreadedController"], None]]] = []
        for crash in plan.crashes:
            controller = self.controllers.get(crash.process)
            if controller is None:
                raise FaultError(f"crash spec names unknown process {crash.process!r}")
            if controller.never_halts:
                raise FaultError(
                    f"refusing to crash debugger process {crash.process!r}; "
                    "the paper's debugger d is outside the failure model"
                )
            if crash.at_time is not None:
                self._staged_faults.append(
                    (crash.at_time, crash.process, "crash",
                     lambda c: c.crash())
                )
            else:
                controller.install(CrashAfterEvents(crash.after_events))
        for stall in plan.stalls:
            if stall.process not in self.controllers:
                raise FaultError(f"stall spec names unknown process {stall.process!r}")
            self._staged_faults.append(
                (stall.at_time, stall.process, "stall",
                 lambda c, d=stall.duration: c.stall(d))
            )
        known = {str(c) for c in self.topology.channels}
        for partition in plan.partitions:
            unknown = sorted(set(partition.channels) - known)
            if unknown:
                raise FaultError(
                    f"partition names unknown channels {unknown!r}"
                )

    def _start_fault_timers(self) -> None:
        for at_time, process, label, action in getattr(self, "_staged_faults", []):
            controller = self.controllers[process]
            if self.gate is not None:
                # Gate mode: the fault is a staged internal step at its
                # virtual time (the DES tiebreak), explorable like any
                # other — no wall clock involved.
                self.gate.stage_fault(
                    at_time, label, controller,
                    lambda c=controller, act=action: act(c),
                )
                continue

            def fire(c: "ThreadedController" = controller,
                     act: Callable = action) -> None:
                # Post onto the process's own thread so faults land on
                # handler boundaries, exactly like the DES backend.
                self.note_activity(+1)
                c.inbox.put(("call", lambda: act(c)))

            timer = threading.Timer(at_time * self.time_scale, fire)
            timer.daemon = True
            timer.start()
            self._fault_timers.append(timer)

    def note_drop(self, envelope: Envelope) -> None:
        """Record a wire loss in the event log (system-level record; the
        sender's clocks are read without ticking — best-effort under
        threading, good enough for forensics)."""
        sender = self.controllers[envelope.channel.src]
        self.record_event(dict(
            process=envelope.channel.src,
            kind=EventKind.MESSAGE_DROPPED,
            time=self.now,
            lamport=sender.lamport.value,
            vector=sender.vector.snapshot(),
            vector_index=sender.vector.owner_index,
            channel=envelope.channel,
            detail=envelope.kind.value,
            local_seq=0,
            attrs={"seq": envelope.seq},
        ))

    # -- bookkeeping ----------------------------------------------------------------

    def record_event(self, event_args: Dict) -> Event:
        with self._log_lock:
            event = Event(eid=self._event_ids.next(), **event_args)
            self.log.append(event)
        return event

    def next_message_seq(self) -> int:
        return self._message_seqs.next()

    def note_activity(self, delta: int) -> None:
        with self._activity_lock:
            self._activity += delta
            if self._activity <= 0:
                self._idle.notify_all()

    @property
    def pending_activity(self) -> int:
        with self._activity_lock:
            return self._activity

    def wait_idle(self, timeout: float = 30.0) -> None:
        """Block until the activity count drains to zero.

        The gate's turnstile: a committed step posts one mailbox item
        (+1 credit); the handler may stage further work with the gate
        (no credit), so once the count returns to zero nothing can raise
        it again until the next commit. A timeout means a handler is
        wedged in user code — surfaced, never swallowed.
        """
        with self._activity_lock:
            if not self._idle.wait_for(lambda: self._activity <= 0, timeout):
                raise RuntimeStateError(
                    f"system did not go idle within {timeout}s "
                    f"(activity={self._activity})"
                )

    # -- execution ----------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise ConfigurationError("already started")
        self._started = True
        for channel in self._channels.values():
            channel.start()
        for name in self.topology.processes:
            # Credit one activity unit per on_start so quiescence detection
            # cannot trigger before startup completes.
            self.note_activity(+1)
            self.controllers[name].start()
        self._start_fault_timers()

    def run_until(self, condition: Callable[[], bool], timeout: float = 30.0,
                  poll: float = 0.002) -> bool:
        """Wait until ``condition()`` holds. Returns False on timeout."""
        if not self._started:
            self.start()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if condition():
                return True
            time.sleep(poll)
        return condition()

    def settle(self, quiet: float = 0.05, timeout: float = 30.0) -> bool:
        """Wait for quiescence: no in-flight messages, empty mailboxes, no
        armed timers, stable for ``quiet`` seconds."""
        if not self._started:
            self.start()
        deadline = time.monotonic() + timeout
        quiet_since: Optional[float] = None
        while time.monotonic() < deadline:
            busy = self.pending_activity > 0 or any(
                not c.inbox.empty() for c in self.controllers.values()
            ) or any(c._timers for c in self.controllers.values())
            if busy:
                quiet_since = None
            elif quiet_since is None:
                quiet_since = time.monotonic()
            elif time.monotonic() - quiet_since >= quiet:
                return True
            time.sleep(0.005)
        return False

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop every thread and wait for it to exit.

        Joins are bounded by one shared ``timeout`` budget; any thread still
        alive afterwards is a real bug (a handler stuck in user code, a
        forwarder wedged mid-sleep) and is surfaced as
        :class:`~repro.util.errors.RuntimeStateError` naming the stuck
        threads, instead of leaking daemon threads silently.
        """
        for timer in self._fault_timers:
            timer.cancel()
        for channel in self._channels.values():
            channel.stop()
        for controller in self.controllers.values():
            for timer in list(controller._timers.values()):
                timer.cancel()
            controller.inbox.put(_STOP)
        deadline = time.monotonic() + timeout
        stuck: List[str] = []
        for controller in self.controllers.values():
            controller.join(max(0.01, deadline - time.monotonic()))
            if controller._thread.is_alive():
                stuck.append(controller._thread.name)
        for channel in self._channels.values():
            channel.join(max(0.01, deadline - time.monotonic()))
            # Gate-mode channels have no forwarder thread to wait on.
            thread = getattr(channel, "_thread", None)
            if thread is not None and thread.is_alive():
                stuck.append(thread.name)
        if stuck:
            raise RuntimeStateError(
                f"shutdown did not converge within {timeout}s; "
                f"stuck threads: {', '.join(sorted(stuck))}"
            )
