"""Base class for user processes.

Subclass :class:`Process` and override the ``on_*`` hooks. All interaction
with the system goes through the :class:`~repro.runtime.context.ProcessContext`
passed to every hook.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.context import ProcessContext
from repro.util.ids import ProcessId


class Process:
    """One user process of the distributed program under debug.

    Hooks (all optional):

    ``on_start``
        Called once when the system starts; kick off timers / first sends.
    ``on_message``
        Called for each genuine program message, in channel-FIFO order.
    ``on_timer``
        Called when a timer armed with ``ctx.set_timer`` fires.
    ``on_halt`` / ``on_resume``
        Notifications from the debugging system; most workloads ignore them.
        ``on_halt`` runs *after* the halted state was captured, so it cannot
        perturb what the debugger observes.
    """

    def on_start(self, ctx: ProcessContext) -> None:
        """Initialization hook."""

    def on_message(self, ctx: ProcessContext, src: ProcessId, payload: Any) -> None:
        """A program message from ``src`` was delivered."""

    def on_timer(self, ctx: ProcessContext, name: str, payload: Any) -> None:
        """Timer ``name`` fired."""

    def on_halt(self, ctx: ProcessContext) -> None:
        """The debugging system halted this process."""

    def on_resume(self, ctx: ProcessContext) -> None:
        """The debugging system resumed this process."""

    def on_restore(self, ctx: ProcessContext) -> None:
        """Called instead of ``on_start`` when this process is resurrected
        from a captured global state (:mod:`repro.halting.restore`).
        ``ctx.state`` is already loaded; the hook's job is to re-arm any
        timers the old incarnation relied on — pending timers are *not*
        part of a global state (they are local scheduler artifacts, not
        process state or channel contents)."""
