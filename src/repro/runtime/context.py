"""The API handed to user process code.

User processes never see the controller, the kernel, or the debugging
algorithms; everything they may do goes through :class:`ProcessContext`.
Every action that the paper's §3.2 lists as a detectable occurrence
(sending, receiving, entering a procedure, creating/destroying a channel,
terminating) is funnelled through here so the instrumentation layer can
record the corresponding event.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Any, Iterator, Optional, Tuple

from repro.util.ids import ProcessId

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

    from repro.runtime.controller import ProcessController


class TrackedState(dict):
    """The process's local state: a dict that reports mutations.

    Assignments emit ``STATE_CHANGE`` events (the hook State Predicates
    listen on). Reads are plain dict reads.
    """

    def __init__(self, controller: "ProcessController") -> None:
        super().__init__()
        self._controller = controller

    def __setitem__(self, key: str, value: Any) -> None:
        super().__setitem__(key, value)
        self._controller.note_state_change(key, value)

    def __delitem__(self, key: str) -> None:
        super().__delitem__(key)
        self._controller.note_state_change(key, None, deleted=True)

    def update(self, *args: Any, **kwargs: Any) -> None:  # type: ignore[override]
        staged = dict(*args, **kwargs)
        for key, value in staged.items():
            self[key] = value


class ProcessContext:
    """Capability object for one user process."""

    def __init__(self, controller: "ProcessController") -> None:
        self._controller = controller
        self.state: TrackedState = TrackedState(controller)

    # -- identity and environment ------------------------------------------

    @property
    def name(self) -> ProcessId:
        return self._controller.name

    @property
    def now(self) -> float:
        """Current virtual time. Provided for workload logic (timeouts);
        remember the paper's point that no *global* time exists — the
        debugging algorithms never consult this."""
        return self._controller.now

    @property
    def rng(self) -> "random.Random":
        """Per-process deterministic random source."""
        return self._controller.user_rng

    def neighbors_out(self) -> Tuple[ProcessId, ...]:
        """Processes this one currently has an outgoing channel to."""
        return self._controller.neighbors_out()

    def neighbors_in(self) -> Tuple[ProcessId, ...]:
        return self._controller.neighbors_in()

    # -- communication -------------------------------------------------------

    def send(self, dst: ProcessId, payload: Any, tag: Optional[str] = None) -> None:
        """Send a genuine program message on the channel to ``dst``.

        Raises :class:`~repro.util.errors.TopologyError` if no such channel
        exists — the paper's model has explicit directed channels, not
        implicit any-to-any messaging.
        """
        self._controller.user_send(dst, payload, tag)

    def create_channel(self, dst: ProcessId) -> None:
        """Dynamically open a channel to ``dst`` (a §3.2 detectable event)."""
        self._controller.user_create_channel(dst)

    def destroy_channel(self, dst: ProcessId) -> None:
        """Close the channel to ``dst``; in-flight messages still arrive."""
        self._controller.user_destroy_channel(dst)

    # -- timers ---------------------------------------------------------------

    def set_timer(self, name: str, delay: float, payload: Any = None) -> None:
        """Arm (or re-arm) a named one-shot timer."""
        self._controller.user_set_timer(name, delay, payload)

    def cancel_timer(self, name: str) -> bool:
        return self._controller.user_cancel_timer(name)

    # -- detectable occurrences ----------------------------------------------

    @contextlib.contextmanager
    def procedure(self, name: str) -> Iterator[None]:
        """Record procedure entry/exit — the canonical Simple Predicate
        ("stop when procedure X is entered", §1)."""
        self._controller.note_procedure_entry(name)
        try:
            yield
        finally:
            self._controller.note_procedure_exit(name)

    def mark(self, detail: str, **attrs: Any) -> None:
        """Record an application-defined local event (a labelled point in
        the execution that predicates can reference by name)."""
        self._controller.note_mark(detail, attrs)

    def terminate(self) -> None:
        """Terminate this process: it stops receiving user messages and
        timers. A §3.2 detectable event."""
        self._controller.user_terminate()
