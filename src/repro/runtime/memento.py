"""In-place mementos of a live object graph: capture once, rewind many.

The worker-resident explorer (:mod:`repro.check.engine`) keeps one built
``System`` alive per worker and *backtracks* it: instead of rebuilding the
scenario and replaying a decision prefix from scratch, it captures the
world at a branch point and later restores that capture in place, then
diverges. That only works if restore reproduces the captured state
**exactly**, aliasing included — channel handlers assert identity on the
envelopes they delivered (``_in_flight[0] is envelope``), closures capture
container references, the kernel's label cache is keyed by sequence
numbers the restored counter must re-issue. ``copy.deepcopy`` snapshots
break all of that (every restore would mint a parallel universe of new
objects), so this module takes the opposite route:

* **Capture** walks the graph once, recording for every *mutable* object
  the values it holds right now — dict items, list slots, set members,
  instance ``__dict__``/``__slots__`` attributes, RNG states, closure
  cell contents. References are recorded as-is, never copied.
* **Restore** writes those values back into the *same* objects: dicts are
  cleared and refilled, lists spliced, attributes reassigned. Objects
  created after the capture simply become unreachable again; objects
  mutated after it get their fields rewound. Identity is preserved by
  construction because no object is ever replaced.

Two graph citizens need special handling:

* ``random.Random`` is captured via ``getstate`` and rewound via
  ``setstate`` — in place, so every closure holding the RNG sees the
  rewound stream.
* ``itertools.count`` cannot be rewound, so the capture parses its value
  out of ``repr()`` and restore swaps a *fresh* count into the parent
  slot. Counts stay counts (``repro.util.ids.SequenceGenerator`` relies
  on C-level atomicity for the threaded backend); only the slot that
  names one is rebound.

Frozen dataclasses (``Envelope``, log events, ids, …) are traversed — a
frozen shell can still hold a mutable payload — but produce no restore
ops: their fields are never rebound after ``__post_init__``, which keeps
capture cost proportional to the *mutable* frontier of the graph, not to
the event log's length.

Graphs containing live execution state that cannot be rewound (generator
frames, threads, locks, open files) are rejected with
:class:`MementoError`; callers treat that as "this world is not
resident-capable" and fall back to rebuild-per-run.
"""

from __future__ import annotations

import ast
import itertools
import random
import types
from collections import deque
from enum import Enum
from typing import Any, Dict, List, Tuple

from repro.util.errors import ReproError

__all__ = ["Memento", "MementoError", "capture"]


class MementoError(ReproError):
    """The object graph holds state that cannot be captured in place."""


class _Count:
    """Stored stand-in for an ``itertools.count`` value: restore rebinds
    the parent slot to a fresh count starting where the capture saw it."""

    __slots__ = ("args",)

    def __init__(self, args: Tuple[Any, ...]) -> None:
        self.args = args

    def thaw(self) -> "itertools.count":
        return itertools.count(*self.args)


class _Missing:
    """Sentinel for a declared-but-unset ``__slots__`` attribute."""

    __slots__ = ()


_MISSING = _Missing()

# Restore op codes (first element of every recorded op).
_OP_DICT = 0       # (op, dict, items tuple)          clear + refill
_OP_LIST = 1       # (op, list, values tuple)         splice
_OP_SET = 2        # (op, set, members frozenset)     clear + refill
_OP_DEQUE = 3      # (op, deque, values tuple)        clear + refill
_OP_ATTRS = 4      # (op, obj, __dict__ items tuple)  clear + refill
_OP_SLOTS = 5      # (op, obj, (name, value) tuple)   object.__setattr__
_OP_RNG = 6        # (op, rng, state)                 setstate
_OP_CELL = 7       # (op, cell, contents)             cell_contents = v
_OP_BYTEARRAY = 8  # (op, bytearray, bytes)           splice

#: Exact types that hold no references and never change: skip entirely.
_ATOMIC = frozenset({
    str, bytes, int, float, bool, complex, type(None), range, slice,
    type(Ellipsis), type(NotImplemented),
})

#: Live execution state a memento cannot rewind — fail loud, callers
#: fall back to rebuild-per-run.
_UNSUPPORTED = (
    types.GeneratorType,
    types.CoroutineType,
    types.AsyncGeneratorType,
    types.FrameType,
)


def _parse_count(counter: "itertools.count") -> _Count:
    """Read a count's current value out of its ``repr``.

    ``repr(itertools.count(5))`` is ``"count(5)"`` (``"count(2, 3)"``
    with a step); the arguments are literals by construction.
    """
    text = repr(counter)
    inner = text[text.index("(") + 1:text.rindex(")")]
    args = ast.literal_eval(f"({inner},)") if inner else ()
    return _Count(args)


def _freeze(value: Any) -> Any:
    """Transform a to-be-stored value; identity for everything except
    counts, which are recorded by value (they cannot be rewound)."""
    if type(value) is itertools.count:
        return _parse_count(value)
    return value


def _thaw(value: Any) -> Any:
    if type(value) is _Count:
        return value.thaw()
    return value


class _ClassInfo:
    """Cached per-type capture plan for generic instances."""

    __slots__ = ("slot_names", "frozen")

    def __init__(self, tp: type) -> None:
        names: List[str] = []
        for klass in tp.__mro__:
            declared = klass.__dict__.get("__slots__", ())
            if isinstance(declared, str):
                declared = (declared,)
            for name in declared:
                if name in ("__dict__", "__weakref__"):
                    continue
                # Honor name mangling for private slots.
                if name.startswith("__") and not name.endswith("__"):
                    name = f"_{klass.__name__.lstrip('_')}{name}"
                names.append(name)
        self.slot_names: Tuple[str, ...] = tuple(names)
        params = getattr(tp, "__dataclass_params__", None)
        self.frozen: bool = bool(params is not None and params.frozen)


class Memento:
    """One captured graph state; :meth:`restore` rewinds it in place.

    The memento keeps strong references to every captured object, both so
    restore targets stay alive and so ``id()``-based bookkeeping in the
    walker can never collide with a recycled address.
    """

    __slots__ = ("_ops", "objects")

    def __init__(self, ops: List[tuple], objects: int) -> None:
        self._ops = ops
        #: Objects visited by the capture walk (accounting/tests).
        self.objects = objects

    @property
    def ops(self) -> int:
        """Number of restore operations this memento will apply."""
        return len(self._ops)

    def restore(self) -> None:
        """Write every captured value back into its original object.

        Container writes go through the *base-class* methods
        (``dict.__setitem__`` et al.), never the instance's own: subclass
        hooks like ``TrackedState.__setitem__`` emit local events, and a
        rewind must not re-execute the world it is rewinding.
        """
        for op in self._ops:
            code = op[0]
            target = op[1]
            saved = op[2]
            if code == _OP_DICT or code == _OP_ATTRS:
                if code == _OP_ATTRS:
                    target = target.__dict__
                dict.clear(target)
                for key, value in saved:
                    dict.__setitem__(
                        target, key,
                        value if type(value) is not _Count else value.thaw(),
                    )
            elif code == _OP_LIST:
                list.__setitem__(
                    target, slice(None), [_thaw(v) for v in saved]
                )
            elif code == _OP_SET:
                set.clear(target)
                set.update(target, saved)
            elif code == _OP_DEQUE:
                deque.clear(target)
                deque.extend(target, tuple(_thaw(v) for v in saved))
            elif code == _OP_SLOTS:
                for name, value in saved:
                    if value is _MISSING:
                        try:
                            object.__delattr__(target, name)
                        except AttributeError:
                            pass
                    else:
                        object.__setattr__(target, name, _thaw(value))
            elif code == _OP_RNG:
                target.setstate(saved)
            elif code == _OP_CELL:
                if saved is _MISSING:
                    try:
                        del target.cell_contents
                    except (AttributeError, ValueError):
                        pass
                else:
                    target.cell_contents = saved
            elif code == _OP_BYTEARRAY:
                target[:] = saved


def capture(*roots: Any) -> Memento:
    """Walk the graph reachable from ``roots`` and record every mutable
    object's current state.

    Traversal covers containers, instance attributes (``__dict__`` and
    ``__slots__``), bound methods, and function closures/defaults —
    everything a scenario world reaches — but deliberately *not* function
    ``__globals__``: module globals are shared program state, not world
    state, and walking them would drag the whole interpreter in.
    """
    ops: List[tuple] = []
    visited: Dict[int, Any] = {}
    stack: List[Any] = [r for r in roots if r is not None]
    # This loop touches every reachable value in the world once per
    # snapshot, so it is written for speed: helpers are hoisted into
    # locals, ``_freeze`` is inlined as a ``count``-type check, and
    # atomic values are filtered *before* they hit the stack (most dict
    # values are strings/ints — pushing them just to pop-and-skip
    # roughly triples the stack traffic).
    atomic = _ATOMIC
    push = stack.append
    push_all = stack.extend
    emit = ops.append
    count_type = itertools.count
    class_info = _CLASS_INFO

    while stack:
        obj = stack.pop()
        tp = type(obj)
        if tp in atomic:
            continue
        key = id(obj)
        if key in visited:
            continue
        visited[key] = obj

        if tp is dict:
            emit((_OP_DICT, obj, tuple(
                (k, v if type(v) is not count_type else _parse_count(v))
                for k, v in obj.items()
            )))
            for k, v in obj.items():
                if type(k) not in atomic:
                    push(k)
                if type(v) not in atomic:
                    push(v)
        elif tp is list:
            emit((_OP_LIST, obj, tuple(
                v if type(v) is not count_type else _parse_count(v)
                for v in obj
            )))
            for v in obj:
                if type(v) not in atomic:
                    push(v)
        elif tp is tuple:
            for v in obj:
                if type(v) not in atomic:
                    push(v)
        elif tp is set:
            emit((_OP_SET, obj, frozenset(obj)))
            for v in obj:
                if type(v) not in atomic:
                    push(v)
        elif tp is frozenset:
            for v in obj:
                if type(v) not in atomic:
                    push(v)
        elif tp is deque:
            emit((_OP_DEQUE, obj, tuple(
                v if type(v) is not count_type else _parse_count(v)
                for v in obj
            )))
            push_all(obj)
        elif tp is bytearray:
            emit((_OP_BYTEARRAY, obj, bytes(obj)))
        elif tp is random.Random:
            emit((_OP_RNG, obj, obj.getstate()))
        elif tp is count_type:
            # Reached directly (e.g. as a list element): nothing to do —
            # the slot naming it recorded a _Count via _freeze.
            continue
        elif tp is types.FunctionType or tp is types.LambdaType:
            if obj.__closure__:
                push_all(obj.__closure__)
            if obj.__defaults__:
                push_all(obj.__defaults__)
            if obj.__kwdefaults__:
                push_all(obj.__kwdefaults__.values())
        elif tp is types.CellType:
            try:
                contents = obj.cell_contents
            except ValueError:
                emit((_OP_CELL, obj, _MISSING))
            else:
                emit((_OP_CELL, obj, _freeze(contents)))
                push(contents)
        elif tp is types.MethodType:
            push(obj.__self__)
            push(obj.__func__)
        elif tp is types.BuiltinFunctionType or tp is types.MethodWrapperType:
            bound_to = getattr(obj, "__self__", None)
            if bound_to is not None and not isinstance(
                bound_to, types.ModuleType
            ):
                push(bound_to)
        elif isinstance(obj, _UNSUPPORTED):
            raise MementoError(
                f"cannot capture live execution state: {tp.__name__}"
            )
        elif isinstance(obj, (type, types.ModuleType, Enum)):
            continue
        elif isinstance(obj, dict):
            # dict subclass: container contents plus any instance attrs.
            # Read through the base class too — symmetry with restore.
            pairs = tuple(dict.items(obj))
            emit(
                (_OP_DICT, obj, tuple((k, _freeze(v)) for k, v in pairs))
            )
            for k, v in pairs:
                if type(k) not in atomic:
                    push(k)
                if type(v) not in atomic:
                    push(v)
            inst = getattr(obj, "__dict__", None)
            if inst:
                emit((
                    _OP_ATTRS, obj,
                    tuple((k, _freeze(v)) for k, v in inst.items()),
                ))
                push_all(inst.values())
        elif isinstance(obj, (list, deque)):
            code = _OP_LIST if isinstance(obj, list) else _OP_DEQUE
            emit((code, obj, tuple(_freeze(v) for v in obj)))
            push_all(obj)
        elif isinstance(obj, (set, frozenset)):
            if isinstance(obj, set):
                emit((_OP_SET, obj, frozenset(obj)))
            push_all(obj)
        elif isinstance(obj, random.Random):
            emit((_OP_RNG, obj, obj.getstate()))
        else:
            info = class_info.get(tp)
            if info is None:
                info = _ClassInfo(tp)
                class_info[tp] = info
            inst = getattr(obj, "__dict__", None)
            if inst is not None:
                if not info.frozen:
                    emit((_OP_ATTRS, obj, tuple(
                        (k,
                         v if type(v) is not count_type else _parse_count(v))
                        for k, v in inst.items()
                    )))
                for v in inst.values():
                    if type(v) not in atomic:
                        push(v)
            if info.slot_names:
                if info.frozen:
                    for name in info.slot_names:
                        value = getattr(obj, name, _MISSING)
                        if (value is not _MISSING
                                and type(value) not in atomic):
                            push(value)
                else:
                    saved = []
                    append_saved = saved.append
                    for name in info.slot_names:
                        value = getattr(obj, name, _MISSING)
                        if value is not _MISSING:
                            if type(value) not in atomic:
                                push(value)
                            if type(value) is count_type:
                                value = _parse_count(value)
                        append_saved((name, value))
                    emit((_OP_SLOTS, obj, tuple(saved)))

    return Memento(ops, len(visited))


_CLASS_INFO: Dict[type, _ClassInfo] = {}
