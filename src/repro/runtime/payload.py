"""Wire format of user messages.

User payloads travel wrapped in :class:`UserMessage`, which piggybacks the
sender's logical clocks. The paper suggests exactly this kind of tagging
(§3.6); the clocks are consumed only by the instrumentation layer and the
analysis oracles — the halting/snapshot/predicate algorithms never read
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


@dataclass(frozen=True)
class UserMessage:
    """A genuine program message plus piggybacked instrumentation metadata."""

    #: The application payload, exactly as the sender passed to ``ctx.send``.
    payload: Any
    #: Optional application-level tag; Simple Predicates can match on it
    #: (``send(tag)@p``).
    tag: Optional[str] = None
    #: Sender's Lamport timestamp at the send event.
    lamport: int = 0
    #: Sender's vector clock at the send event.
    vector: Tuple[int, ...] = field(default=())

    def content_key(self) -> tuple:
        """Application-visible identity (excludes clocks).

        Channel-state comparisons (experiment E2) compare what the *program*
        put on the wire. Clocks are identical across the compared runs
        anyway, but excluding them keeps the comparison honest about what it
        claims to compare.
        """
        return ("user", self.tag, _freeze(self.payload))


def _freeze(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return tuple(sorted(_freeze(v) for v in value))
    return value
