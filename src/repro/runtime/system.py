"""The DES backend: a whole distributed program wired onto one kernel.

A :class:`System` owns the kernel, the channels, one controller per process,
and the event log. Determinism contract: two systems built with the same
topology, processes, latency models, and seed execute identical user-level
histories — even if different debugging-system traffic is injected into
them. That contract is what turns Theorem 2 into an executable assertion
(experiment E2).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.events.clocks import ClockFrame
from repro.events.event import Event, EventKind
from repro.events.log import EventLog
from repro.faults.injection import CrashAfterEvents, injector_for
from repro.faults.plan import FaultPlan
from repro.network.channel import Channel
from repro.network.latency import FixedLatency, LatencyModel
from repro.network.message import Envelope
from repro.network.reliable import ReliabilityConfig, ReliableChannel
from repro.network.topology import Topology
from repro.runtime.controller import ProcessController
from repro.runtime.interfaces import ControlPlugin
from repro.runtime.process import Process
from repro.simulation.kernel import PRIORITY_INTERNAL, SimulationKernel
from repro.util.errors import ConfigurationError, FaultError, TopologyError
from repro.util.ids import ChannelId, ProcessId, SequenceGenerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe.integrate import Observability


class System:
    """A runnable distributed program under instrumentation."""

    def __init__(
        self,
        topology: Topology,
        processes: Mapping[ProcessId, Process],
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        channel_latencies: Optional[Mapping[ChannelId, LatencyModel]] = None,
        capture_states: bool = False,
        never_halt: Iterable[ProcessId] = (),
        loss_probability: float = 0.0,
        fault_plan: Optional[FaultPlan] = None,
        reliability: Optional[ReliabilityConfig] = None,
        reliable: bool = False,
        observe: Optional["Observability"] = None,
    ) -> None:
        missing = set(topology.processes) - set(processes)
        if missing:
            raise ConfigurationError(f"no Process supplied for {sorted(missing)}")
        extra = set(processes) - set(topology.processes)
        if extra:
            raise ConfigurationError(f"Process supplied for unknown names {sorted(extra)}")

        #: Optional live-observability hub (metrics + spans). Set before
        #: channel wiring so every channel — including ones created later
        #: at runtime — gets its hooks installed.
        self.observe = observe
        self.topology = topology
        self.seed = seed
        self.capture_states = capture_states
        self.kernel = SimulationKernel()
        self.log = EventLog()
        self.clock_frame = ClockFrame(topology.processes)
        self._event_ids = SequenceGenerator(start=1)
        self._message_seqs = SequenceGenerator(start=1)
        self._default_latency = latency or FixedLatency(1.0)
        self._channel_latencies = dict(channel_latencies or {})
        # Violates the §2.1 reliable-channel assumption on purpose; only
        # the ablation experiments set this.
        self._loss_probability = loss_probability
        #: Seeded fault schedule (loss/dup/reorder + crash/stall), or None.
        self.fault_plan = fault_plan
        #: When set (or ``reliable=True``), channels are
        #: :class:`~repro.network.reliable.ReliableChannel` — ack/retransmit
        #: re-establishes FIFO-exactly-once over whatever the plan injects.
        self._reliability = reliability or (ReliabilityConfig() if reliable else None)

        # Values are Channel or ReliableChannel (same surface).
        self._channels: Dict[ChannelId, Channel] = {}
        self._retired_channels: List[Channel] = []
        self._out: Dict[ProcessId, List[ChannelId]] = {p: [] for p in topology.processes}
        self._in: Dict[ProcessId, List[ChannelId]] = {p: [] for p in topology.processes}

        never_halt = set(never_halt)
        self.controllers: Dict[ProcessId, ProcessController] = {}
        for name in topology.processes:
            controller = ProcessController(
                system=self,
                name=name,
                process=processes[name],
                vector_clock=self.clock_frame.clock_for(name),
                user_rng=random.Random(f"{seed}|proc|{name}"),
                never_halts=name in never_halt,
            )
            self.controllers[name] = controller

        for channel_id in topology.channels:
            self._wire_channel(channel_id)

        if fault_plan is not None:
            self._schedule_faults(fault_plan)

        if observe is not None:
            observe.attach_system(self)

        self._started = False

    # -- channel management -------------------------------------------------

    def _wire_channel(self, channel_id: ChannelId) -> Channel:
        injector = None
        if self.fault_plan is not None:
            injector = injector_for(self.fault_plan, channel_id)
            if injector.is_noop:
                injector = None
        if self._reliability is not None:
            channel = ReliableChannel(
                channel_id=channel_id,
                kernel=self.kernel,
                user_rng=random.Random(f"{self.seed}|chan|{channel_id}|user"),
                control_rng=random.Random(f"{self.seed}|chan|{channel_id}|ctrl"),
                sequences=self._message_seqs,
                latency=self._channel_latencies.get(channel_id, self._default_latency),
                injector=injector,
                config=self._reliability,
                retry_rng=random.Random(f"{self.seed}|chan|{channel_id}|retry"),
            )
            channel.endpoint_down = self._endpoint_probe(channel_id)
        else:
            channel = Channel(
                channel_id=channel_id,
                kernel=self.kernel,
                user_rng=random.Random(f"{self.seed}|chan|{channel_id}|user"),
                control_rng=random.Random(f"{self.seed}|chan|{channel_id}|ctrl"),
                sequences=self._message_seqs,
                latency=self._channel_latencies.get(channel_id, self._default_latency),
                loss_probability=self._loss_probability,
                loss_rng=random.Random(f"{self.seed}|chan|{channel_id}|loss"),
                injector=injector,
            )
        channel.on_drop = self._log_drop
        receiver = self.controllers[channel_id.dst]
        channel.connect(receiver.deliver)
        if self.observe is not None:
            self.observe.wire_channel(channel)
        self._channels[channel_id] = channel
        self._out[channel_id.src].append(channel_id)
        self._in[channel_id.dst].append(channel_id)
        return channel

    def _endpoint_probe(self, channel_id: ChannelId) -> Callable[[str], bool]:
        """Crash visibility for the transport: a dead host neither delivers,
        acks, nor retransmits (see ``ReliableChannel.endpoint_down``)."""
        src = self.controllers[channel_id.src]
        dst = self.controllers[channel_id.dst]
        return lambda side: (src if side == "src" else dst).crashed

    def _log_drop(self, envelope: Envelope) -> None:
        """Record a wire loss in the event log (system-level: no process
        observes it, no clock ticks, but traces must explain the gap)."""
        sender = self.controllers[envelope.channel.src]
        self.log.append(Event(
            eid=self.next_event_id(),
            process=envelope.channel.src,
            kind=EventKind.MESSAGE_DROPPED,
            time=self.kernel.now,
            lamport=sender.lamport.value,
            vector=sender.vector.snapshot(),
            vector_index=sender.vector.owner_index,
            channel=envelope.channel,
            detail=envelope.kind.value,
            local_seq=0,
            attrs={"seq": envelope.seq},
        ))

    # -- fault scheduling ------------------------------------------------------

    def _schedule_faults(self, plan: FaultPlan) -> None:
        for crash in plan.crashes:
            controller = self.controllers.get(crash.process)
            if controller is None:
                raise FaultError(f"crash spec names unknown process {crash.process!r}")
            if controller.never_halts:
                raise FaultError(
                    f"refusing to crash debugger process {crash.process!r}; "
                    "the paper's debugger d is outside the failure model"
                )
            if crash.at_time is not None:
                self.kernel.schedule_at(
                    crash.at_time,
                    controller.crash,
                    priority=PRIORITY_INTERNAL,
                    tiebreak=("crash", crash.process),
                )
            else:
                controller.install(CrashAfterEvents(crash.after_events))
        for stall in plan.stalls:
            controller = self.controllers.get(stall.process)
            if controller is None:
                raise FaultError(f"stall spec names unknown process {stall.process!r}")
            self.kernel.schedule_at(
                stall.at_time,
                lambda c=controller, d=stall.duration: c.stall(d),
                priority=PRIORITY_INTERNAL,
                tiebreak=("stall", stall.process),
            )
        known = {str(c) for c in self.topology.channels}
        for partition in plan.partitions:
            unknown = sorted(set(partition.channels) - known)
            if unknown:
                raise FaultError(
                    f"partition names unknown channels {unknown!r}"
                )

    def create_channel(self, src: ProcessId, dst: ProcessId) -> ChannelId:
        """Open a new directed channel at runtime."""
        channel_id = ChannelId(src, dst)
        if channel_id in self._channels:
            raise TopologyError(f"channel {channel_id} already exists")
        if src not in self.controllers or dst not in self.controllers:
            raise TopologyError(f"unknown endpoint in {channel_id}")
        if src == dst:
            raise TopologyError("self-channels are not allowed")
        self._wire_channel(channel_id)
        return channel_id

    def destroy_channel(self, channel_id: ChannelId) -> None:
        """Remove a channel from the topology. In-flight messages still
        arrive (closing a link does not vaporise packets already sent)."""
        if channel_id not in self._channels:
            raise TopologyError(f"no channel {channel_id}")
        self._out[channel_id.src].remove(channel_id)
        self._in[channel_id.dst].remove(channel_id)
        # The Channel object stays alive for in-flight deliveries but is no
        # longer reachable for new sends. Keep it for stats aggregation.
        self._retired_channels.append(self._channels.pop(channel_id))

    def channel(self, channel_id: ChannelId) -> Optional[Channel]:
        return self._channels.get(channel_id)

    def channels(self) -> Tuple[Channel, ...]:
        return tuple(self._channels.values())

    def outgoing_channels(self, process: ProcessId) -> Tuple[ChannelId, ...]:
        return tuple(self._out[process])

    def find_path(self, src: ProcessId, dst: ProcessId) -> Optional[List[ProcessId]]:
        """Shortest hop path along current channels, or None. Used to relay
        predicate markers between processes with no direct channel."""
        if src == dst:
            return [src]
        frontier = [src]
        parent: Dict[ProcessId, ProcessId] = {src: src}
        while frontier:
            node = frontier.pop(0)
            for channel_id in self._out[node]:
                nxt = channel_id.dst
                if nxt in parent:
                    continue
                parent[nxt] = node
                if nxt == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                frontier.append(nxt)
        return None

    def incoming_channels(self, process: ProcessId) -> Tuple[ChannelId, ...]:
        return tuple(self._in[process])

    # -- plugin installation --------------------------------------------------

    def install_on_all(self, factory: Callable[[ProcessController], ControlPlugin]) -> Dict[ProcessId, ControlPlugin]:
        """Create one plugin per process (via ``factory``) and install it."""
        installed = {}
        for name, controller in self.controllers.items():
            plugin = factory(controller)
            controller.install(plugin)
            installed[name] = plugin
        return installed

    # -- execution ---------------------------------------------------------------

    def controller(self, name: ProcessId) -> ProcessController:
        try:
            return self.controllers[name]
        except KeyError:
            raise TopologyError(f"unknown process {name!r}") from None

    def start(self) -> None:
        """Run every process's ``on_start`` (in deterministic name order)."""
        if self._started:
            raise ConfigurationError("system already started")
        self._started = True
        for name in self.topology.processes:
            self.controllers[name].start()

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Start (if needed) and drive the kernel. See ``SimulationKernel.run``."""
        if not self._started:
            self.start()
        return self.kernel.run(until=until, max_events=max_events, stop_when=stop_when)

    def run_to_quiescence(self, max_events: int = 1_000_000) -> int:
        """Run until no scheduled work remains (or the safety cap trips)."""
        if not self._started:
            self.start()
        executed = self.kernel.run(max_events=max_events)
        if self.kernel.pending and executed >= max_events:
            raise ConfigurationError(
                f"system did not quiesce within {max_events} events; "
                "the workload probably runs forever — use run(until=...)"
            )
        return executed

    # -- inspection -----------------------------------------------------------------

    @property
    def user_process_names(self) -> Tuple[ProcessId, ...]:
        return tuple(
            name for name in self.topology.processes
            if not self.controllers[name].never_halts
        )

    def all_user_processes_halted(self) -> bool:
        return all(
            self.controllers[name].halted for name in self.user_process_names
        )

    def all_live_user_processes_halted(self) -> bool:
        """Partial-halt convergence: every user process is halted or dead.
        This is the best a halting run can achieve once a process crashed
        (the halt-watchdog's stopping condition)."""
        return all(
            self.controllers[name].halted or self.controllers[name].crashed
            for name in self.user_process_names
        )

    def crashed_process_names(self) -> Tuple[ProcessId, ...]:
        return tuple(
            name for name in self.topology.processes
            if self.controllers[name].crashed
        )

    def state_of(self, name: ProcessId) -> dict:
        return dict(self.controller(name).ctx.state)

    def next_event_id(self) -> int:
        return self._event_ids.next()

    def message_totals(self) -> Dict[str, int]:
        """Aggregate sent-message counts by kind over all channels."""
        totals: Dict[str, int] = {}
        for channel in list(self._channels.values()) + self._retired_channels:
            for kind, count in channel.stats.sent_by_kind.items():
                totals[kind.value] = totals.get(kind.value, 0) + count
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"System(processes={len(self.controllers)}, "
            f"channels={len(self._channels)}, t={self.kernel.now:.3f})"
        )
