"""Shared plumbing: errors, identifiers, validation."""

from repro.util.errors import (
    AnalysisError,
    ConfigurationError,
    HaltingError,
    PredicateError,
    PredicateSyntaxError,
    ReproError,
    RuntimeStateError,
    SimulationError,
    SnapshotError,
    TopologyError,
    TraceError,
)
from repro.util.ids import ChannelId, ProcessId, SequenceGenerator

__all__ = [
    "AnalysisError",
    "ChannelId",
    "ConfigurationError",
    "HaltingError",
    "PredicateError",
    "PredicateSyntaxError",
    "ProcessId",
    "ReproError",
    "RuntimeStateError",
    "SequenceGenerator",
    "SimulationError",
    "SnapshotError",
    "TopologyError",
    "TraceError",
]
