"""Exception hierarchy shared by every repro subsystem.

Keeping one root exception type (:class:`ReproError`) lets callers opt into
catching "anything this library raises" without swallowing unrelated bugs
such as ``TypeError`` from their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of the library's exception hierarchy."""


class ConfigurationError(ReproError):
    """A system, topology, or algorithm was configured inconsistently."""


class TopologyError(ConfigurationError):
    """A channel or process reference does not exist, or a graph rule broke."""


class SimulationError(ReproError):
    """The simulation kernel was driven incorrectly (e.g. time went backward)."""


class RuntimeStateError(ReproError):
    """A runtime operation was attempted in the wrong lifecycle state."""


class HaltingError(ReproError):
    """The halting machinery was used incorrectly or reached a bad state."""


class SnapshotError(ReproError):
    """The snapshot machinery was used incorrectly or reached a bad state."""


class PredicateError(ReproError):
    """A breakpoint predicate is malformed or was evaluated incorrectly."""


class PredicateSyntaxError(PredicateError):
    """The predicate DSL text could not be parsed.

    Carries the offending source text and offset so tooling can point at the
    exact location.
    """

    def __init__(self, message: str, text: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position} in {text!r})")
        self.text = text
        self.position = position


class FaultError(ConfigurationError):
    """A fault-injection plan is malformed or references unknown targets."""


class DeliveryError(ReproError):
    """The reliable-delivery layer reached an impossible state (protocol
    invariant broken) or was driven incorrectly."""


class TraceError(ReproError):
    """A trace could not be recorded, serialized, or replayed."""


class AnalysisError(ReproError):
    """A consistency/equivalence check was asked something ill-posed."""


class CodecError(ReproError):
    """A value could not be encoded to (or decoded from) the JSON codec."""


class WireError(ReproError):
    """The socket wire protocol failed: bad frame, oversized frame,
    unknown payload type, or a connection died mid-conversation."""


class WireClosed(WireError):
    """The peer closed the connection (clean EOF between frames)."""


class RetryBudgetExceeded(WireError):
    """A reconnecting transport ran out of retries before the peer
    answered (see :class:`repro.distributed.transport.Backoff`)."""


class SurvivorsOnlyError(HaltingError):
    """A whole-cluster operation (resume) was asked of a cluster with dead
    members. Carries the dead-process list so callers can decide between
    recovery (:mod:`repro.recovery`) and a survivors-only continuation."""

    def __init__(self, message: str, dead: tuple) -> None:
        super().__init__(message)
        #: Names of the processes that are no longer alive.
        self.dead = tuple(dead)


class RecoveryError(ReproError):
    """The crash-recovery machinery (checkpoints, supervisor, chaos
    campaigns) was driven incorrectly or reached a bad state."""


class CheckpointError(RecoveryError):
    """A checkpoint artifact is malformed, incomplete, or unusable as a
    recovery point."""
