"""The JSON payload codec shared by trace files and the socket wire protocol.

Two encodings live here, with different contracts:

* :func:`payload_to_jsonable` — the **lossy** form trace files use
  (extracted from :mod:`repro.trace.serialize`): anything that is not
  JSON-representable is stringified (and flagged with ``__repr__``) rather
  than dropped. Tuples flatten to lists, non-string keys to strings. Good
  enough for archiving, useless for a live protocol.

* :func:`to_jsonable` / :func:`from_jsonable` — the **exact** form the
  distributed backend's wire protocol uses: every supported value
  round-trips bit-for-bit, including tuples, sets, bytes, and dicts with
  non-string (or tuple) keys. Container types that JSON cannot express are
  tagged with a reserved ``"__repro__"`` key; plain dicts whose keys are
  all strings stay plain, so the common case reads naturally on the wire.

Values outside the supported set raise :class:`~repro.util.errors.CodecError`
unless the caller supplies hooks — :mod:`repro.distributed.protocol` uses
the hooks to add dataclasses and enums on top of this base.
"""

from __future__ import annotations

import base64
from typing import Any, Callable, Dict, Optional

from repro.util.errors import CodecError

#: Reserved key marking a tagged container on the wire.
TAG = "__repro__"

_SCALARS = (str, int, float, bool, type(None))


def payload_to_jsonable(value: Any) -> Any:
    """Lossy JSON projection used by trace serialization.

    JSON-representable values pass through (tuples become lists, dict keys
    become strings); anything else is replaced by ``{"__repr__": repr(v)}``
    so the trace records *that* something was there even when it cannot
    record *what*.
    """
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return [payload_to_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): payload_to_jsonable(v) for k, v in value.items()}
    return {"__repr__": repr(value)}


def to_jsonable(
    value: Any,
    encode_other: Optional[Callable[[Any], Any]] = None,
) -> Any:
    """Exact, reversible encoding of ``value`` into JSON-safe structures.

    Supported natively: ``None``/``bool``/``int``/``float``/``str``,
    ``list``, ``tuple``, ``dict`` (any hashable supported keys), ``set``/
    ``frozenset``, and ``bytes``. ``encode_other`` is consulted for
    anything else and must return an already-JSON-safe value (conventionally
    a dict tagged with :data:`TAG`); without it, unsupported values raise
    :class:`CodecError`.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, list):
        return [to_jsonable(v, encode_other) for v in value]
    if isinstance(value, tuple):
        return {TAG: "tuple", "items": [to_jsonable(v, encode_other) for v in value]}
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and TAG not in value:
            return {k: to_jsonable(v, encode_other) for k, v in value.items()}
        return {
            TAG: "dict",
            "items": [
                [to_jsonable(k, encode_other), to_jsonable(v, encode_other)]
                for k, v in value.items()
            ],
        }
    if isinstance(value, frozenset):
        return {TAG: "frozenset",
                "items": [to_jsonable(v, encode_other) for v in value]}
    if isinstance(value, set):
        return {TAG: "set", "items": [to_jsonable(v, encode_other) for v in value]}
    if isinstance(value, bytes):
        return {TAG: "bytes", "b64": base64.b64encode(value).decode("ascii")}
    if encode_other is not None:
        return encode_other(value)
    raise CodecError(f"cannot encode {type(value).__name__} value {value!r}")


def from_jsonable(
    value: Any,
    decode_tag: Optional[Callable[[str, Dict[str, Any]], Any]] = None,
) -> Any:
    """Inverse of :func:`to_jsonable`.

    ``decode_tag(tag, record)`` is consulted for tag values this module does
    not define (the wire protocol's dataclass and enum tags); an unknown tag
    without a hook raises :class:`CodecError`.
    """
    if isinstance(value, list):
        return [from_jsonable(v, decode_tag) for v in value]
    if isinstance(value, dict):
        tag = value.get(TAG)
        if tag is None:
            return {k: from_jsonable(v, decode_tag) for k, v in value.items()}
        if tag == "tuple":
            return tuple(from_jsonable(v, decode_tag) for v in value["items"])
        if tag == "dict":
            return {
                _hashable(from_jsonable(k, decode_tag)):
                    from_jsonable(v, decode_tag)
                for k, v in value["items"]
            }
        if tag == "frozenset":
            return frozenset(from_jsonable(v, decode_tag) for v in value["items"])
        if tag == "set":
            return {from_jsonable(v, decode_tag) for v in value["items"]}
        if tag == "bytes":
            return base64.b64decode(value["b64"])
        if decode_tag is not None:
            return decode_tag(tag, value)
        raise CodecError(f"unknown codec tag {tag!r}")
    return value


def _hashable(key: Any) -> Any:
    """Dict keys decoded from tagged form must be hashable again."""
    if isinstance(key, list):  # pragma: no cover - defensive; lists never
        return tuple(key)  # appear as keys in values we encoded ourselves
    return key


__all__ = ["TAG", "payload_to_jsonable", "to_jsonable", "from_jsonable"]
