"""Small identifier types used across the library.

Process and channel identifiers are plain strings at the API surface (users
write ``"p1"``), but channels need a canonical structured form because a
channel is *directed*: the paper's model (§2.1) has distinct channels ``c1``
(p→q) and ``c2`` (q→p).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

ProcessId = str


@dataclass(frozen=True, order=True)
class ChannelId:
    """Identifier of a directed FIFO channel from ``src`` to ``dst``."""

    src: ProcessId
    dst: ProcessId

    def __str__(self) -> str:
        return f"{self.src}->{self.dst}"

    def reversed(self) -> "ChannelId":
        """The channel running the opposite direction, if it exists."""
        return ChannelId(self.dst, self.src)

    @classmethod
    def parse(cls, text: str) -> "ChannelId":
        """Parse the ``"src->dst"`` form produced by :meth:`__str__`."""
        src, sep, dst = text.partition("->")
        if not sep or not src or not dst:
            raise ValueError(f"not a channel id: {text!r}")
        return cls(src, dst)


class SequenceGenerator:
    """Thread-safe monotonically increasing integer source.

    Used for message sequence numbers and event ids in the threaded backend,
    where multiple process threads allocate concurrently. The DES backend is
    single-threaded, but sharing one implementation keeps behaviour identical.
    ``itertools.count.__next__`` is a single C-level call, atomic under the
    GIL, so no explicit lock is needed — this sits on the event-recording
    hot path and is called once per instrumented event.
    """

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)

    def next(self) -> int:
        """Return the next integer in the sequence."""
        return next(self._counter)
