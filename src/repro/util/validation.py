"""Argument-validation helpers.

These keep validation messages uniform and raise library exceptions rather
than bare ``ValueError`` so callers can distinguish "you misused repro" from
other failures.
"""

from __future__ import annotations

from typing import Iterable, TypeVar

from repro.util.errors import ConfigurationError

T = TypeVar("T")


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` unless ``condition`` holds."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value: float, name: str) -> float:
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def require_name(value: str, name: str) -> str:
    """Validate a process name: non-empty, no DSL metacharacters.

    Process names appear inside the predicate DSL (``send@p1``), inside
    channel ids (``p1->p2``) and in halt-marker paths, so characters that
    would make those forms ambiguous are rejected up front.
    """
    if not isinstance(value, str) or not value:
        raise ConfigurationError(f"{name} must be a non-empty string, got {value!r}")
    forbidden = set("@|&->()^, \t\n")
    bad = sorted(set(value) & forbidden)
    if bad:
        raise ConfigurationError(
            f"{name} {value!r} contains reserved characters {bad}; "
            "names must not use DSL metacharacters or whitespace"
        )
    return value


def require_unique(items: Iterable[T], what: str) -> None:
    seen = set()
    for item in items:
        if item in seen:
            raise ConfigurationError(f"duplicate {what}: {item!r}")
        seen.add(item)
