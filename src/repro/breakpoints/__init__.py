"""Distributed breakpoints: predicates, the text DSL, and detection (§3)."""

from repro.breakpoints.detector import (
    BreakpointCoordinator,
    PredicateAgent,
    PredicateMarker,
    StageHit,
)
from repro.breakpoints.parser import parse_conjunctive, parse_predicate
from repro.breakpoints.pathexpr import arm_path_expression, compile_path_expression
from repro.breakpoints.registry import (
    BreakpointRecord,
    BreakpointRegistry,
    BreakpointState,
)
from repro.breakpoints.predicates import (
    ConjunctivePredicate,
    DisjunctivePredicate,
    LinkedPredicate,
    SimplePredicate,
    StateQuery,
    as_linked,
    disjunctive_to_linked,
    expand_repeats,
    simple_to_linked,
)
from repro.breakpoints.scp import (
    SCPPair,
    SCPResult,
    SCPTuple,
    compute_scp,
    compute_scp_k,
    matching_events,
)

__all__ = [
    "BreakpointCoordinator",
    "BreakpointRecord",
    "BreakpointRegistry",
    "BreakpointState",
    "ConjunctivePredicate",
    "DisjunctivePredicate",
    "LinkedPredicate",
    "PredicateAgent",
    "PredicateMarker",
    "SCPPair",
    "SCPResult",
    "SCPTuple",
    "SimplePredicate",
    "StageHit",
    "StateQuery",
    "arm_path_expression",
    "as_linked",
    "compile_path_expression",
    "compute_scp",
    "compute_scp_k",
    "disjunctive_to_linked",
    "expand_repeats",
    "matching_events",
    "parse_conjunctive",
    "parse_predicate",
    "simple_to_linked",
]
