"""Breakpoint predicates: Simple, Disjunctive, Conjunctive, Linked (§3).

The paper's grammar::

    DP ::= SP [ ∨ SP ]...          (§3.3)
    CP ::= SP [ ∧ SP ]...          (§3.5)
    LP ::= DP [ → DP ]...          (§3.4)

with ``(SP)^i`` as shorthand for ``SP → SP → … → SP`` (i times). A Simple
Predicate is local to one process and matches detectable occurrences: the
sequential-debugger classics (procedure entry, state tests) plus the
interprocess events of §3.2 (message sent/received, channel created/
destroyed, process created/terminated).

All predicate objects are immutable and hashable; they travel inside
predicate markers.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, FrozenSet, Optional, Tuple

from repro.events.event import Event, EventKind
from repro.util.errors import PredicateError
from repro.util.ids import ProcessId

_OPS: dict = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class StateQuery:
    """A comparison against one key of the process state."""

    key: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise PredicateError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, observed: Any) -> bool:
        try:
            return bool(_OPS[self.op](observed, self.value))
        except TypeError:
            return False

    def __str__(self) -> str:
        if isinstance(self.value, bool):
            value = "true" if self.value else "false"
        elif isinstance(self.value, str):
            value = f'"{self.value}"'
        else:
            value = str(self.value)
        return f"{self.key}{self.op}{value}"


@dataclass(frozen=True)
class SimplePredicate:
    """A predicate on the behaviour or state of a single process (§3.2).

    ``kind=None`` matches any event kind (wildcard used by EDL-style
    abstract events). ``detail`` filters on the event's detail field —
    procedure name for enter/exit, message tag for send/recv, mark label,
    timer name. ``state`` adds a state comparison, evaluated against the
    mutated key's new value for STATE_CHANGE events.
    ``repeat`` is the paper's ``(SP)^i`` — the predicate counts as satisfied
    on its i-th match.
    """

    process: ProcessId
    kind: Optional[EventKind] = None
    detail: Optional[str] = None
    state: Optional[StateQuery] = None
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.repeat < 1:
            raise PredicateError(f"repeat must be >= 1, got {self.repeat}")
        if self.state is not None and self.kind not in (None, EventKind.STATE_CHANGE):
            raise PredicateError(
                "state queries only apply to state-change events"
            )

    def matches(self, event: Event) -> bool:
        """Does one event satisfy this predicate (ignoring ``repeat``)?"""
        if event.process != self.process:
            return False
        if self.kind is not None and event.kind is not self.kind:
            return False
        if self.detail is not None and event.detail != self.detail:
            return False
        if self.state is not None:
            if event.kind is not EventKind.STATE_CHANGE:
                return False
            if event.attrs.get("key", event.detail) != self.state.key:
                return False
            return self.state.evaluate(event.attrs.get("value"))
        return True

    def __str__(self) -> str:
        if self.state is not None:
            body = f"state({self.state})"
        elif self.kind is None:
            body = "any" + (f"({self.detail})" if self.detail else "")
        else:
            name = _KIND_NAMES[self.kind]
            body = f"{name}({self.detail})" if self.detail else name
        suffix = f"^{self.repeat}" if self.repeat > 1 else ""
        return f"{body}@{self.process}{suffix}"


_KIND_NAMES = {
    EventKind.SEND: "send",
    EventKind.RECEIVE: "recv",
    EventKind.PROCEDURE_ENTRY: "enter",
    EventKind.PROCEDURE_EXIT: "exit",
    EventKind.STATE_CHANGE: "mark",
    EventKind.TIMER: "timer",
    EventKind.PROCESS_CREATED: "created",
    EventKind.PROCESS_TERMINATED: "terminated",
    EventKind.CHANNEL_CREATED: "chan_created",
    EventKind.CHANNEL_DESTROYED: "chan_destroyed",
}


@dataclass(frozen=True)
class DisjunctivePredicate:
    """``SP ∨ SP ∨ …`` — satisfied when any term is satisfied (§3.3)."""

    terms: Tuple[SimplePredicate, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise PredicateError("a disjunction needs at least one term")

    def processes(self) -> FrozenSet[ProcessId]:
        """The processes 'involved in' this DP — where the §3.6 algorithm
        sends predicate markers."""
        return frozenset(term.process for term in self.terms)

    def terms_at(self, process: ProcessId) -> Tuple[SimplePredicate, ...]:
        return tuple(t for t in self.terms if t.process == process)

    def __str__(self) -> str:
        return " | ".join(str(t) for t in self.terms)


@dataclass(frozen=True)
class LinkedPredicate:
    """``DP → DP → …`` — a happened-before-ordered event sequence (§3.4).

    Semantics (the paper's regular expression): after stage i is satisfied,
    other events — including other stages' predicates — may freely occur;
    the chain advances when stage i+1 is satisfied *causally after* stage i.
    Causality is enforced structurally by the detection algorithm: stage
    i+1 is only armed by a marker sent at the moment stage i fired.
    """

    stages: Tuple[DisjunctivePredicate, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise PredicateError("a linked predicate needs at least one stage")

    @property
    def first(self) -> DisjunctivePredicate:
        return self.stages[0]

    def rest(self) -> Optional["LinkedPredicate"]:
        """The residual ``newLP`` after stripping the first stage (§3.6);
        None when this was the last stage."""
        if len(self.stages) == 1:
            return None
        return LinkedPredicate(stages=self.stages[1:])

    def processes(self) -> FrozenSet[ProcessId]:
        out: FrozenSet[ProcessId] = frozenset()
        for stage in self.stages:
            out |= stage.processes()
        return out

    def __len__(self) -> int:
        return len(self.stages)

    def __str__(self) -> str:
        return " -> ".join(
            f"({stage})" if len(stage.terms) > 1 else str(stage)
            for stage in self.stages
        )


@dataclass(frozen=True)
class ConjunctivePredicate:
    """``SP ∧ SP ∧ …`` (§3.5) — simultaneity, which a distributed system
    cannot observe directly.

    The paper splits satisfaction into ``orderedSCP`` (there is a
    happened-before ordering among the satisfactions — detectable by
    compiling the conjunction into Linked Predicates, one per ordering) and
    ``unorderedSCP`` (the satisfactions are concurrent — only detectable
    after the fact by gathering, see
    :mod:`repro.debugger.gather`).
    """

    terms: Tuple[SimplePredicate, ...]

    def __post_init__(self) -> None:
        if len(self.terms) < 2:
            raise PredicateError("a conjunction needs at least two terms")

    def processes(self) -> FrozenSet[ProcessId]:
        return frozenset(term.process for term in self.terms)

    def to_linked_orderings(self) -> Tuple[LinkedPredicate, ...]:
        """All serializations of the conjunction as Linked Predicates (§3.5:
        detect ``(SP1)→(SP2)`` or ``(SP2)→(SP1)`` …). Factorial in the number
        of terms — conjunctions are small in practice."""
        import itertools

        orderings = []
        for permutation in itertools.permutations(self.terms):
            stages = tuple(
                DisjunctivePredicate(terms=(term,)) for term in permutation
            )
            orderings.append(LinkedPredicate(stages=stages))
        return tuple(orderings)

    def __str__(self) -> str:
        return " & ".join(str(t) for t in self.terms)


def simple_to_linked(predicate: SimplePredicate) -> LinkedPredicate:
    """Lift an SP to a one-stage LP (§3.6: "the definition of the Linked
    Predicate is general enough to comprise the Simple Predicate and the
    Disjunctive Predicate")."""
    return LinkedPredicate(stages=(DisjunctivePredicate(terms=(predicate,)),))


def disjunctive_to_linked(predicate: DisjunctivePredicate) -> LinkedPredicate:
    """Lift a DP to a one-stage LP."""
    return LinkedPredicate(stages=(predicate,))


def expand_repeats(lp: LinkedPredicate) -> LinkedPredicate:
    """Rewrite ``(SP)^i`` terms into i explicit chained stages when the
    stage is a single-term DP. Multi-term disjunctions keep their per-term
    counters (handled by the detector) because expanding them would change
    semantics (the disjunction must be re-won i times by *any* term,
    whereas ``repeat`` counts per term)."""
    stages = []
    for stage in lp.stages:
        if len(stage.terms) == 1 and stage.terms[0].repeat > 1:
            term = stage.terms[0]
            once = SimplePredicate(
                process=term.process, kind=term.kind,
                detail=term.detail, state=term.state, repeat=1,
            )
            for _ in range(term.repeat):
                stages.append(DisjunctivePredicate(terms=(once,)))
        else:
            stages.append(stage)
    return LinkedPredicate(stages=tuple(stages))


PredicateLike = Any  # SimplePredicate | DisjunctivePredicate | LinkedPredicate


def as_linked(predicate: PredicateLike) -> LinkedPredicate:
    """Normalize any SP/DP/LP to a LinkedPredicate."""
    if isinstance(predicate, LinkedPredicate):
        return predicate
    if isinstance(predicate, DisjunctivePredicate):
        return disjunctive_to_linked(predicate)
    if isinstance(predicate, SimplePredicate):
        return simple_to_linked(predicate)
    raise PredicateError(f"not a predicate: {predicate!r}")
