"""SCP analysis: ordered vs unordered conjunctive satisfaction (§3.5, Fig. 4).

For a Conjunctive Predicate ``SP1 ∧ SP2`` the paper defines the set of
virtual-time pairs where both hold::

    SCP = {(t1, t2) | SP1(t1) ∧ SP2(t2)}

and partitions it into ``orderedSCP`` (the two satisfaction points are
related by happened-before, detectable with Linked Predicates) and
``unorderedSCP`` (concurrent — not detectable in time to halt).

This module computes the partition *post hoc* from the ground-truth event
log using vector clocks. It is the oracle for experiment E8: the LP-based
detector must fire for ordered pairs and must not claim unordered ones.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.breakpoints.predicates import ConjunctivePredicate, SimplePredicate
from repro.events.event import Event
from repro.events.log import EventLog


@dataclass(frozen=True)
class SCPPair:
    """One element of the SCP set for a two-term conjunction."""

    first: Event   # satisfaction of term 1
    second: Event  # satisfaction of term 2

    @property
    def ordered(self) -> bool:
        return self.first.happened_before(self.second) or self.second.happened_before(self.first)

    @property
    def direction(self) -> str:
        """``'1->2'``, ``'2->1'`` or ``'concurrent'``."""
        if self.first.happened_before(self.second):
            return "1->2"
        if self.second.happened_before(self.first):
            return "2->1"
        return "concurrent"


@dataclass(frozen=True)
class SCPResult:
    """The partitioned SCP set."""

    ordered: Tuple[SCPPair, ...]
    unordered: Tuple[SCPPair, ...]

    @property
    def total(self) -> int:
        return len(self.ordered) + len(self.unordered)

    def summary(self) -> str:
        return (
            f"SCP: {self.total} satisfaction pairs — "
            f"{len(self.ordered)} ordered (LP-detectable), "
            f"{len(self.unordered)} unordered (gather-only)"
        )


def matching_events(log: EventLog, term: SimplePredicate) -> List[Event]:
    """All events satisfying one Simple Predicate (repeat is ignored —
    every satisfaction instant is a virtual-time point on that process's
    axis)."""
    return [e for e in log if term.matches(e)]


def compute_scp(log: EventLog, sp1: SimplePredicate, sp2: SimplePredicate) -> SCPResult:
    """Partition the SCP set of a two-term conjunction (Fig. 4)."""
    ordered: List[SCPPair] = []
    unordered: List[SCPPair] = []
    for e1 in matching_events(log, sp1):
        for e2 in matching_events(log, sp2):
            pair = SCPPair(first=e1, second=e2)
            (ordered if pair.ordered else unordered).append(pair)
    return SCPResult(ordered=tuple(ordered), unordered=tuple(unordered))


@dataclass(frozen=True)
class SCPTuple:
    """One satisfaction tuple of a k-term conjunction."""

    events: Tuple[Event, ...]

    @property
    def totally_ordered(self) -> bool:
        """True iff some permutation forms a happened-before chain — the
        k-term generalization of orderedSCP."""
        for permutation in itertools.permutations(self.events):
            if all(
                a.happened_before(b)
                for a, b in zip(permutation, permutation[1:])
            ):
                return True
        return False


def compute_scp_k(log: EventLog, conjunction: ConjunctivePredicate,
                  limit: int = 10_000) -> Tuple[List[SCPTuple], List[SCPTuple]]:
    """Partition the satisfaction tuples of a k-term conjunction into
    (chain-ordered, not-chain-ordered). Guarded by ``limit`` because the
    tuple space is a cartesian product."""
    per_term: List[Sequence[Event]] = [
        matching_events(log, term) for term in conjunction.terms
    ]
    size = 1
    for events in per_term:
        size *= max(1, len(events))
    if size > limit:
        raise ValueError(
            f"SCP tuple space has {size} elements (> limit {limit}); "
            "narrow the predicates"
        )
    ordered: List[SCPTuple] = []
    unordered: List[SCPTuple] = []
    for combo in itertools.product(*per_term):
        entry = SCPTuple(events=tuple(combo))
        (ordered if entry.totally_ordered else unordered).append(entry)
    return ordered, unordered
