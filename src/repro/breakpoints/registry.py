"""Deferred linked-predicate breakpoints: the pending → bound → armed →
fired lifecycle.

The paper arms a Linked Predicate against processes that already exist.
An interactive debugger cannot assume that: the user sets a breakpoint,
*then* spawns the cluster (or the cluster dies and a recovery incarnation
replaces it). This registry keeps every breakpoint as a
:class:`BreakpointRecord` walking a small state machine:

``PENDING``
    Parsed and validated syntactically, but not armed — the target
    processes do not exist yet (no live session, or the session does not
    know those names).
``BOUND``
    A live session exists and every process the predicate names is a
    member. Binding is instantaneous — the record moves straight on to
    arming — but it is a real transition: this is where a name typo
    surfaces ("predicate names unknown processes").
``ARMED``
    Predicate markers have been issued (§3.6 Predicate-Marker-Sending
    Rule); the session-level ``lp_id`` is recorded for clearing.
``FIRED``
    A :class:`~repro.debugger.commands.BreakpointHit` for our ``lp_id``
    arrived — the predicate completed at some process.
``CLEARED``
    Explicitly removed. Legal from *any* live state, including
    ``PENDING`` (clear-while-pending never touches a session) — a
    cleared record is inert forever.

Duplicate registration is idempotent: registering the same canonical
predicate text with the same halt flag while a live (non-cleared,
non-fired) record exists returns that record instead of arming twice.

Re-arming (:meth:`BreakpointRegistry.rearm`) replays every armed record
and retries every pending one against a *new* session surface — this is
how breakpoints survive a recovery incarnation: the supervisor replaces
the cluster, the registry re-issues the markers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Union

from repro.breakpoints.parser import parse_predicate
from repro.breakpoints.predicates import LinkedPredicate, SimplePredicate, as_linked
from repro.util.errors import PredicateError


class BreakpointState(str, Enum):
    """Where one deferred breakpoint is in its lifecycle."""

    PENDING = "pending"
    BOUND = "bound"
    ARMED = "armed"
    FIRED = "fired"
    CLEARED = "cleared"


@dataclass
class BreakpointRecord:
    """One registered breakpoint and its lifecycle so far."""

    bp_id: int
    #: Canonical predicate text (``str(lp)``) — the idempotency key.
    text: str
    lp: LinkedPredicate
    halt: bool
    state: BreakpointState = BreakpointState.PENDING
    #: Session-level linked-predicate id once armed (None while pending).
    lp_id: Optional[int] = None
    #: Every state this record has passed through, in order.
    history: List[str] = field(default_factory=list)

    def _move(self, state: BreakpointState) -> None:
        self.state = state
        self.history.append(state.value)

    @property
    def live(self) -> bool:
        """True while the breakpoint can still fire or be re-armed."""
        return self.state not in (BreakpointState.CLEARED, BreakpointState.FIRED)

    def to_wire(self) -> Dict[str, object]:
        """JSON-safe summary for ``break-list`` replies."""
        return {
            "bp_id": self.bp_id,
            "predicate": self.text,
            "halt": self.halt,
            "state": self.state.value,
            "lp_id": self.lp_id,
            "history": list(self.history),
        }


class BreakpointRegistry:
    """All breakpoints of one debug target, deferred or armed.

    The registry never talks to the network itself — arming delegates to
    a :class:`~repro.debugger.surface.SessionSurface` (or anything with
    ``process_names`` / ``set_breakpoint`` / ``clear_breakpoint``), so the
    same registry drives all three backends and survives the session it
    armed on being replaced.
    """

    def __init__(self) -> None:
        self._records: Dict[int, BreakpointRecord] = {}
        self._next_id = 1

    # -- registration -------------------------------------------------------

    def register(
        self,
        predicate: Union[str, LinkedPredicate, SimplePredicate],
        halt: bool = True,
        surface: Optional[object] = None,
    ) -> BreakpointRecord:
        """Register a breakpoint, arming immediately when possible.

        The predicate is parsed *eagerly* — a syntax error is the caller's
        bug and surfaces now, even for a breakpoint that will stay pending
        for an hour. With a live ``surface`` whose membership covers the
        predicate's processes, the record binds and arms in one motion;
        otherwise it parks as ``PENDING`` until :meth:`bind_pending`.
        """
        lp = (
            parse_predicate(predicate)
            if isinstance(predicate, str)
            else as_linked(predicate)
        )
        text = str(lp)
        for record in self._records.values():
            if record.live and record.text == text and record.halt == halt:
                return record  # idempotent duplicate
        record = BreakpointRecord(
            bp_id=self._next_id, text=text, lp=lp, halt=halt
        )
        record.history.append(BreakpointState.PENDING.value)
        self._next_id += 1
        self._records[record.bp_id] = record
        if surface is not None:
            self._try_bind(record, surface)
        return record

    def _try_bind(self, record: BreakpointRecord, surface: object) -> bool:
        """Bind+arm one pending record if the surface knows its processes."""
        known = set(surface.process_names())  # type: ignore[attr-defined]
        if not record.lp.processes() <= known:
            return False
        record._move(BreakpointState.BOUND)
        record.lp_id = surface.set_breakpoint(  # type: ignore[attr-defined]
            record.lp, halt=record.halt
        )
        record._move(BreakpointState.ARMED)
        return True

    def bind_pending(self, surface: object) -> List[BreakpointRecord]:
        """Arm every pending record the (newly spawned) surface can host.

        Called right after a cluster spawns: this is the moment a deferred
        breakpoint set *before its target process existed* becomes real
        predicate markers on the wire. Records naming processes the
        surface still does not know stay pending — not an error, they may
        be meant for a different target."""
        newly_armed = []
        for record in self._records.values():
            if record.state is BreakpointState.PENDING:
                if self._try_bind(record, surface):
                    newly_armed.append(record)
        return newly_armed

    def rearm(self, surface: object) -> List[BreakpointRecord]:
        """Re-issue every armed breakpoint on a replacement surface.

        A recovery incarnation is a new cluster: the markers armed on the
        dead one died with it. Re-arming walks ``ARMED`` records through
        a fresh bind/arm on the new surface (new ``lp_id``), and gives
        ``PENDING`` records another chance to bind. Fired and cleared
        records stay where they are — a completed predicate does not
        resurrect."""
        touched = []
        for record in self._records.values():
            if record.state is BreakpointState.ARMED:
                record._move(BreakpointState.PENDING)
            if record.state is BreakpointState.PENDING:
                if self._try_bind(record, surface):
                    touched.append(record)
        return touched

    # -- lifecycle ----------------------------------------------------------

    def clear(self, bp_id: int, surface: Optional[object] = None) -> BreakpointRecord:
        """Clear one breakpoint in any live state.

        Clearing a ``PENDING`` record is pure bookkeeping (nothing was
        armed, nothing to disarm); clearing an ``ARMED`` one also disarms
        the linked predicate on the surface so residual markers die."""
        record = self._records.get(bp_id)
        if record is None:
            raise PredicateError(f"no breakpoint with id {bp_id}")
        if record.state is BreakpointState.CLEARED:
            return record  # idempotent
        if record.state is BreakpointState.ARMED and surface is not None:
            surface.clear_breakpoint(record.lp_id)  # type: ignore[attr-defined]
        record._move(BreakpointState.CLEARED)
        return record

    def mark_fired(self, hits: List[object]) -> List[BreakpointRecord]:
        """Fold observed BreakpointHits into the records: an armed record
        whose ``lp_id`` matches a hit's marker moves to ``FIRED``."""
        fired_ids = {
            getattr(getattr(hit, "marker", None), "lp_id", None) for hit in hits
        }
        fired = []
        for record in self._records.values():
            if (
                record.state is BreakpointState.ARMED
                and record.lp_id in fired_ids
            ):
                record._move(BreakpointState.FIRED)
                fired.append(record)
        return fired

    # -- views --------------------------------------------------------------

    def get(self, bp_id: int) -> Optional[BreakpointRecord]:
        """The record with ``bp_id``, or None."""
        return self._records.get(bp_id)

    def records(self) -> List[BreakpointRecord]:
        """Every record, in registration order."""
        return [self._records[k] for k in sorted(self._records)]

    def pending(self) -> List[BreakpointRecord]:
        """Records still waiting for their processes to exist."""
        return [r for r in self.records() if r.state is BreakpointState.PENDING]

    def armed(self) -> List[BreakpointRecord]:
        """Records with live predicate markers out in the system."""
        return [r for r in self.records() if r.state is BreakpointState.ARMED]

    def to_wire(self) -> List[Dict[str, object]]:
        """JSON-safe summaries of every record (``break-list``)."""
        return [record.to_wire() for record in self.records()]


__all__ = ["BreakpointState", "BreakpointRecord", "BreakpointRegistry"]
