"""Path expressions compiled to Linked Predicates (§4).

"The Linked Predicates are similar to Path Expressions [Bruegge &
Hibbard]. Our distributed predicate detection algorithm provides a vehicle
to implement Path Expressions in a distributed system." This module is that
vehicle: a small path-expression language —

    path  := seq
    seq   := alt (';' alt)*          sequencing (happened-before)
    alt   := factor ('|' factor)*    alternation over sub-paths
    factor:= primary ['{' INT '}']   repetition (n >= 1)
    primary := TERM | '(' seq ')'

where TERM is any Simple-Predicate term of the breakpoint DSL
(``enter(f)@p``, ``send(tag)@q``, ``state(k<5)@r``, …) — compiled into a
set of alternative :class:`~repro.breakpoints.predicates.LinkedPredicate`
chains. Arm all alternatives; whichever completes first is the match.

Examples::

    enter(req)@p1 ; (reply@p2 | reply@p3) ; exit(req)@p1
    (mark(cs_enter)@m0 ; mark(cs_exit)@m0) {2}

Alternation distributes over sequencing, so compilation can explode
combinatorially; :data:`MAX_ALTERNATIVES` bounds it.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.breakpoints.parser import parse_predicate
from repro.breakpoints.predicates import DisjunctivePredicate, LinkedPredicate
from repro.util.errors import PredicateError, PredicateSyntaxError

MAX_ALTERNATIVES = 64

#: One alternative: a sequence of stages (each stage a DP).
_Path = Tuple[DisjunctivePredicate, ...]


def compile_path_expression(text: str) -> Tuple[LinkedPredicate, ...]:
    """Compile path-expression text into alternative Linked Predicates."""
    paths = _Compiler(text).compile()
    return tuple(LinkedPredicate(stages=path) for path in paths)


class _Compiler:
    """Splits on the path operators, delegating terms to the DSL parser.

    The path grammar's metacharacters (``;``, ``{}``, and *top-level*
    ``|``/parens) never occur inside a DSL term except ``|`` and parens,
    which the DSL itself uses for disjunction — so alternation of bare
    terms falls through to the DSL's own DP handling naturally: we only
    treat ``|`` as a path operator when an operand contains ``;`` or
    ``{``.
    """

    def __init__(self, text: str) -> None:
        self.text = text

    def compile(self) -> List[_Path]:
        return self._seq(self.text)

    # -- recursive splitting ------------------------------------------------

    def _seq(self, text: str) -> List[_Path]:
        segments = _split_top(text, ";")
        if not segments or any(not s.strip() for s in segments):
            raise PredicateSyntaxError("empty path segment", self.text,
                                       self.text.find(text))
        paths: List[_Path] = [()]
        for segment in segments:
            alternatives = self._alt(segment)
            paths = [
                left + right for left in paths for right in alternatives
            ]
            _check_budget(paths, self.text)
        return paths

    def _alt(self, text: str) -> List[_Path]:
        operands = _split_top(text, "|")
        if len(operands) == 1:
            return self._factor(operands[0])
        if all(not _is_structured(op) for op in operands):
            # Pure term alternation == a DSL disjunction: one single-stage
            # path whose DP has all the terms.
            return self._factor(text, force_term=True)
        paths: List[_Path] = []
        for operand in operands:
            paths.extend(self._factor(operand))
            _check_budget(paths, self.text)
        return paths

    def _factor(self, text: str, force_term: bool = False) -> List[_Path]:
        text = text.strip()
        repeat = 1
        if text.endswith("}"):
            brace = text.rfind("{")
            if brace == -1:
                raise PredicateSyntaxError("unmatched '}'", self.text,
                                           self.text.rfind("}"))
            count_text = text[brace + 1:-1].strip()
            if not count_text.isdigit() or int(count_text) < 1:
                raise PredicateSyntaxError(
                    f"repetition must be a positive integer, got {count_text!r}",
                    self.text, self.text.rfind("{"),
                )
            repeat = int(count_text)
            text = text[:brace].strip()
        if not force_term and text.startswith("(") and text.endswith(")") \
                and _matching_paren(text):
            base = self._seq(text[1:-1])
        else:
            base = [self._term(text)]
        result = base
        for _ in range(repeat - 1):
            result = [left + right for left in result for right in base]
            _check_budget(result, self.text)
        return result

    def _term(self, text: str) -> _Path:
        lp = parse_predicate(text)
        return lp.stages

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Compiler({self.text!r})"


def _split_top(text: str, separator: str) -> List[str]:
    """Split on ``separator`` outside parentheses/braces/quotes."""
    parts: List[str] = []
    depth = 0
    quote = None
    current: List[str] = []
    for ch in text:
        if quote:
            if ch == quote:
                quote = None
            current.append(ch)
            continue
        if ch in "'\"":
            quote = ch
            current.append(ch)
        elif ch in "({":
            depth += 1
            current.append(ch)
        elif ch in ")}":
            depth -= 1
            if depth < 0:
                raise PredicateSyntaxError("unbalanced parentheses", text, 0)
            current.append(ch)
        elif ch == separator and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise PredicateSyntaxError("unbalanced parentheses", text, 0)
    parts.append("".join(current))
    return parts


def _is_structured(text: str) -> bool:
    """Does this operand contain path structure (sequencing/repetition)?"""
    return ";" in text or "{" in text


def _matching_paren(text: str) -> bool:
    """Is the leading '(' matched by the trailing ')'?"""
    depth = 0
    for index, ch in enumerate(text):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return index == len(text) - 1
    return False


def _check_budget(paths: Sequence[_Path], text: str) -> None:
    if len(paths) > MAX_ALTERNATIVES:
        raise PredicateError(
            f"path expression {text!r} expands to more than "
            f"{MAX_ALTERNATIVES} alternatives; simplify it"
        )


def arm_path_expression(
    set_breakpoint: Callable[[LinkedPredicate], int], text: str
) -> List[int]:
    """Compile and arm every alternative; returns the lp_ids."""
    return [set_breakpoint(lp) for lp in compile_path_expression(text)]
