"""The Linked Predicate Detection Algorithm (§3.6).

Transcription of the paper's two rules:

    Predicate-Marker-Sending Rule for a process p:
        Send a predicate marker containing the Linked Predicate to each
        process involved in the first Disjunctive Predicate of the LP.

    Predicate-Marker-Receiving Rule for a process q, on receiving a marker:
        Separate the first DP from the LP carried by the marker;
        make a newLP by excluding the first DP.
        When the extracted DP is met:
            if the newLP is null: initiate the Halting Algorithm;
            else: send a new predicate marker containing the newLP
                  according to the Predicate-Marker-Sending Rule.

The happened-before ordering of an LP's stages is enforced *structurally*:
a stage only starts being watched when the marker announcing the previous
stage's satisfaction arrives, and marker travel is itself a happened-before
edge. Events matching stage i+1 that occur concurrently with (or before)
stage i never count — they precede the arming.

Marker routing: the paper's rule says "send to each process involved in
DP2" without requiring a direct channel. Where a direct channel exists we
use it; otherwise the marker is relayed through the debugger process
(extended model §2.2.3 guarantees that path exists). Relaying preserves the
happened-before edge, so detection soundness is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.breakpoints.parser import parse_predicate
from repro.breakpoints.predicates import (
    LinkedPredicate,
    SimplePredicate,
    as_linked,
)
from repro.events.event import Event
from repro.halting.algorithm import HaltingAgent
from repro.network.message import Envelope, MessageKind
from repro.runtime.controller import ProcessController
from repro.runtime.interfaces import ControlPlugin
from repro.runtime.system import System
from repro.util.errors import PredicateError
from repro.util.ids import ChannelId, ProcessId


@dataclass(frozen=True)
class StageHit:
    """Provenance of one satisfied stage: where, which event, which term."""

    stage_index: int
    process: ProcessId
    eid: int
    lamport: int
    time: float
    term: str  # stringified SimplePredicate

    def __str__(self) -> str:
        return f"[{self.stage_index}] {self.term} via event#{self.eid} t={self.time:.3f}"


@dataclass(frozen=True)
class PredicateMarker:
    """A predicate marker: the residual LP plus satisfaction provenance."""

    lp_id: int
    residual: LinkedPredicate
    stage_index: int
    trail: Tuple[StageHit, ...] = ()
    #: Remaining relay hops when the marker is being source-routed to a
    #: process without a direct channel (the last hop is the destination).
    #: Empty means "arm here".
    route: Tuple[ProcessId, ...] = ()
    #: Whether completing this predicate initiates the Halting Algorithm
    #: (a breakpoint, the §3.6 default) or merely notifies (a monitoring
    #: predicate, e.g. an EDL abstract event — §4).
    halt: bool = True


@dataclass
class _ArmedStage:
    """One stage instance being watched at one process."""

    lp_id: int
    stage_index: int
    terms: Tuple[SimplePredicate, ...]
    residual: Optional[LinkedPredicate]
    trail: Tuple[StageHit, ...]
    halt: bool = True
    counts: Dict[int, int] = field(default_factory=dict)  # term index -> hits


class PredicateAgent(ControlPlugin):
    """Per-process side of the detection algorithm."""

    kinds = frozenset({MessageKind.PREDICATE_MARKER})

    def __init__(
        self,
        controller: ProcessController,
        on_final: Optional[Callable[[PredicateMarker], None]] = None,
        halt_on_final: bool = True,
        cancelled: Optional[set] = None,
    ) -> None:
        self.attach(controller)
        self.on_final = on_final
        self.halt_on_final = halt_on_final
        self.armed: List[_ArmedStage] = []
        #: lp_ids withdrawn by the debugger. Shared across one system's
        #: agents so a cancellation also kills markers still in flight
        #: (they are dropped on arrival instead of arming).
        self.cancelled: set = cancelled if cancelled is not None else set()

    # -- Predicate-Marker-Receiving Rule --------------------------------------

    def on_control(self, envelope: Envelope) -> None:
        marker = envelope.payload
        assert isinstance(marker, PredicateMarker)
        if marker.route:
            # We are a relay hop: pass the marker along its source route.
            next_hop, rest = marker.route[0], marker.route[1:]
            self._send_marker(next_hop, replace(marker, route=rest))
            return
        self.arm(marker)

    def arm(self, marker: PredicateMarker) -> None:
        """Start watching the first DP of the marker's LP at this process."""
        if marker.lp_id in self.cancelled:
            return  # withdrawn while the marker was in flight
        stage = marker.residual.first
        terms = stage.terms_at(self.controller.name)
        if not terms:
            raise PredicateError(
                f"{self.controller.name} received a predicate marker whose "
                f"first stage involves only {sorted(stage.processes())}"
            )
        self.armed.append(
            _ArmedStage(
                lp_id=marker.lp_id,
                stage_index=marker.stage_index,
                terms=terms,
                residual=marker.residual.rest(),
                trail=marker.trail,
                halt=marker.halt,
            )
        )

    # -- watching local events ---------------------------------------------------

    def on_local_event(self, event: Event) -> None:
        if not self.armed:
            return
        if self.cancelled:
            self.armed = [s for s in self.armed if s.lp_id not in self.cancelled]
        fired: List[Tuple[_ArmedStage, SimplePredicate]] = []
        for stage in list(self.armed):
            for term_index, term in enumerate(stage.terms):
                if not term.matches(event):
                    continue
                count = stage.counts.get(term_index, 0) + 1
                stage.counts[term_index] = count
                if count >= term.repeat:
                    fired.append((stage, term))
                    break
        for stage, term in fired:
            if stage in self.armed:
                self.armed.remove(stage)
                self._stage_satisfied(stage, term, event)

    # -- advancing the chain ---------------------------------------------------------

    def _stage_satisfied(self, stage: _ArmedStage, term: SimplePredicate,
                         event: Event) -> None:
        hit = StageHit(
            stage_index=stage.stage_index,
            process=self.controller.name,
            eid=event.eid,
            lamport=event.lamport,
            time=event.time,
            term=str(term),
        )
        trail = stage.trail + (hit,)
        if stage.residual is None:
            # "...at which time a process knows that it should initiate the
            # Halting Algorithm."
            final = PredicateMarker(
                lp_id=stage.lp_id,
                residual=as_linked(term),  # for reporting: the closing term
                stage_index=stage.stage_index,
                trail=trail,
                halt=stage.halt,
            )
            self._final(final)
            return
        next_marker = PredicateMarker(
            lp_id=stage.lp_id,
            residual=stage.residual,
            stage_index=stage.stage_index + 1,
            trail=trail,
            halt=stage.halt,
        )
        for target in sorted(stage.residual.first.processes()):
            if target == self.controller.name:
                # Arming ourselves needs no marker; the satisfaction event
                # itself is the causal anchor.
                self.arm(next_marker)
            else:
                self._route_marker(target, next_marker)

    def _final(self, marker: PredicateMarker) -> None:
        if self.on_final is not None:
            self.on_final(marker)
        if self.halt_on_final and marker.halt:
            self._initiate_halt()

    def _initiate_halt(self) -> None:
        halting = self.controller.plugin_of(HaltingAgent)
        if halting is None:
            raise PredicateError(
                f"{self.controller.name}: breakpoint fired but no HaltingAgent "
                "is installed (install a HaltingCoordinator or DebugSession)"
            )

        def initiate() -> None:
            # A halt marker may have frozen us in the meantime (another
            # breakpoint fired elsewhere) — then the halt is already under
            # way and there is nothing to initiate.
            if not self.controller.halted:
                halting.initiate()

        # Defer past the current handler so the halt point is a clean
        # boundary between two atomic handler steps.
        self.controller.defer(initiate, label="breakpoint")

    # -- marker transport --------------------------------------------------------------

    def _route_marker(self, target: ProcessId, marker: PredicateMarker) -> None:
        direct = ChannelId(self.controller.name, target)
        if self.controller.system.channel(direct) is not None:
            self._send_marker(target, marker)
            return
        # No direct channel: source-route along the channel graph. In the
        # extended model the debugger guarantees a 2-hop path exists; in the
        # basic model any path in the (strongly-connected) graph serves.
        # Every relay hop preserves the happened-before edge from the
        # previous stage's satisfaction to the arming.
        path = self.controller.system.find_path(self.controller.name, target)
        if path is None or len(path) < 2:
            raise PredicateError(
                f"{self.controller.name} cannot route a predicate marker to "
                f"{target}: no channel path exists (topology not strongly "
                "connected — attach a debugger process, §2.2.3)"
            )
        self._send_marker(path[1], replace(marker, route=tuple(path[2:])))

    def _send_marker(self, target: ProcessId, marker: PredicateMarker) -> None:
        self.controller.send_control(
            ChannelId(self.controller.name, target),
            MessageKind.PREDICATE_MARKER,
            marker,
        )


class BreakpointCoordinator:
    """Harness-side driver for predicate detection without a full debugger.

    Installs a :class:`PredicateAgent` everywhere; breakpoints set through
    :meth:`set_breakpoint` arm the first stage directly (the harness stands
    in for the debugger's Predicate-Marker-Sending Rule). Completions are
    collected in :attr:`hits`. With ``halt=True`` a satisfied breakpoint
    initiates the Halting Algorithm at the satisfying process, exactly as
    §3.6 prescribes.
    """

    def __init__(self, system: System, halt: bool = True) -> None:
        self.system = system
        self.hits: List[PredicateMarker] = []
        self._next_lp_id = 1
        self._cancelled: set = set()
        self.agents: Dict[ProcessId, PredicateAgent] = {}
        for name in system.topology.processes:
            controller = system.controller(name)
            agent = PredicateAgent(
                controller,
                on_final=self.hits.append,
                halt_on_final=halt and not controller.never_halts,
                cancelled=self._cancelled,
            )
            controller.install(agent)
            self.agents[name] = agent

    def set_breakpoint(
        self,
        predicate: Union[str, LinkedPredicate, SimplePredicate],
        halt: bool = True,
    ) -> int:
        """Arm a predicate (text DSL or predicate object). Returns lp_id.
        With ``halt=False`` the predicate only notifies (monitoring mode)."""
        if isinstance(predicate, str):
            lp = parse_predicate(predicate)
        else:
            lp = as_linked(predicate)
        unknown = lp.processes() - set(self.system.topology.processes)
        if unknown:
            raise PredicateError(f"predicate names unknown processes {sorted(unknown)}")
        lp_id = self._next_lp_id
        self._next_lp_id += 1
        marker = PredicateMarker(lp_id=lp_id, residual=lp, stage_index=0, halt=halt)
        for target in sorted(lp.first.processes()):
            self.agents[target].arm(marker)
        return lp_id

    def set_path_breakpoint(self, text: str, halt: bool = True) -> List[int]:
        """Arm a §4 path expression: every compiled alternative is armed;
        whichever completes first is the match. Returns all lp_ids."""
        from repro.breakpoints.pathexpr import compile_path_expression

        return [
            self.set_breakpoint(lp, halt=halt)
            for lp in compile_path_expression(text)
        ]

    def cancel(self, lp_id: int) -> None:
        """Disarm every stage instance of one predicate, including markers
        still in flight (they die on arrival)."""
        self._cancelled.add(lp_id)
        for agent in self.agents.values():
            agent.armed = [s for s in agent.armed if s.lp_id != lp_id]

    def hits_for(self, lp_id: int) -> List[PredicateMarker]:
        return [hit for hit in self.hits if hit.lp_id == lp_id]
