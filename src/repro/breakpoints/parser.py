"""A small text DSL for breakpoint predicates.

Grammar (whitespace-insensitive)::

    linked      := disjunction ( '->' disjunction )*
    disjunction := term ( '|' term )*
    conjunction := term ( '&' term )*            # separate entry point
    term        := body '@' PROCESS [ '^' INT ] | '(' disjunction ')'
    body        := KIND [ '(' argument ')' ]
    argument    := label                          # e.g. enter(handle_request)
                 | KEY OP VALUE                   # only for state(...)
    KIND        := enter | exit | send | recv | mark | timer | state
                 | created | terminated | chan_created | chan_destroyed | any
    OP          := == | != | < | <= | > | >=
    VALUE       := INT | FLOAT | 'string' | "string" | bare_word | true | false

Examples::

    enter(receive_token)@p2
    send(wire)@branch0 | recv(wire)@branch1
    mark(cs_enter)@m0 -> mark(cs_enter)@m1 -> mark(cs_enter)@m2
    state(balance<500)@branch3
    (recv@p1 | recv@p2) -> send@p3 ^2

The ``^ i`` repetition is the paper's ``(SP)^i`` shorthand (§3.5 footnote).
"""

from __future__ import annotations

import re
from typing import Any, List, NamedTuple, Optional, Tuple

from repro.breakpoints.predicates import (
    ConjunctivePredicate,
    DisjunctivePredicate,
    LinkedPredicate,
    SimplePredicate,
    StateQuery,
)
from repro.events.event import EventKind
from repro.util.errors import PredicateSyntaxError

_KINDS = {
    "enter": EventKind.PROCEDURE_ENTRY,
    "exit": EventKind.PROCEDURE_EXIT,
    "send": EventKind.SEND,
    "recv": EventKind.RECEIVE,
    "receive": EventKind.RECEIVE,
    "mark": EventKind.STATE_CHANGE,
    "timer": EventKind.TIMER,
    "created": EventKind.PROCESS_CREATED,
    "terminated": EventKind.PROCESS_TERMINATED,
    "chan_created": EventKind.CHANNEL_CREATED,
    "chan_destroyed": EventKind.CHANNEL_DESTROYED,
    "state": EventKind.STATE_CHANGE,
    "any": None,
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->)
  | (?P<op>==|!=|<=|>=|<|>)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<ident>[A-Za-z_][A-Za-z_0-9.]*)
  | (?P<punct>[()@^|&])
    """,
    re.VERBOSE,
)


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise PredicateSyntaxError(
                f"unexpected character {text[position]!r}", text, position
            )
        group = match.lastgroup
        assert group is not None
        if group != "ws":
            tokens.append(_Token(group, match.group(), position))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise PredicateSyntaxError("unexpected end of input", self.text, len(self.text))
        self.index += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise PredicateSyntaxError(
                f"expected {text!r}, found {token.text!r}", self.text, token.position
            )
        return token

    def _accept(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token.text == text:
            self.index += 1
            return True
        return False

    def _done(self) -> None:
        token = self._peek()
        if token is not None:
            raise PredicateSyntaxError(
                f"trailing input {token.text!r}", self.text, token.position
            )

    # -- grammar --------------------------------------------------------------

    def parse_linked(self) -> LinkedPredicate:
        stages = [self._disjunction()]
        while self._accept("->"):
            stages.append(self._disjunction())
        self._done()
        return LinkedPredicate(stages=tuple(stages))

    def parse_conjunctive(self) -> ConjunctivePredicate:
        terms = [self._term_no_group()]
        self._expect("&")
        terms.append(self._term_no_group())
        while self._accept("&"):
            terms.append(self._term_no_group())
        self._done()
        return ConjunctivePredicate(terms=tuple(terms))

    def _disjunction(self) -> DisjunctivePredicate:
        terms = list(self._term())
        while self._accept("|"):
            terms.extend(self._term())
        return DisjunctivePredicate(terms=tuple(terms))

    def _term(self) -> Tuple[SimplePredicate, ...]:
        if self._accept("("):
            # Parenthesized disjunction group: flatten into the parent.
            inner = [self._term_no_group()]
            while self._accept("|"):
                inner.append(self._term_no_group())
            self._expect(")")
            return tuple(inner)
        return (self._term_no_group(),)

    def _term_no_group(self) -> SimplePredicate:
        token = self._next()
        if token.kind != "ident":
            raise PredicateSyntaxError(
                f"expected a predicate kind, found {token.text!r}",
                self.text, token.position,
            )
        kind_name = token.text
        if kind_name not in _KINDS:
            raise PredicateSyntaxError(
                f"unknown predicate kind {kind_name!r} "
                f"(known: {', '.join(sorted(_KINDS))})",
                self.text, token.position,
            )
        detail: Optional[str] = None
        state: Optional[StateQuery] = None
        if self._accept("("):
            if kind_name == "state":
                state = self._state_query()
            else:
                detail = self._label()
            self._expect(")")
        self._expect("@")
        process_token = self._next()
        if process_token.kind != "ident":
            raise PredicateSyntaxError(
                f"expected a process name after '@', found {process_token.text!r}",
                self.text, process_token.position,
            )
        repeat = 1
        if self._accept("^"):
            count_token = self._next()
            if count_token.kind != "number" or "." in count_token.text:
                raise PredicateSyntaxError(
                    f"expected an integer repetition count, found {count_token.text!r}",
                    self.text, count_token.position,
                )
            repeat = int(count_token.text)
        return SimplePredicate(
            process=process_token.text,
            kind=_KINDS[kind_name],
            detail=detail,
            state=state,
            repeat=repeat,
        )

    def _label(self) -> str:
        token = self._next()
        if token.kind == "string":
            return token.text[1:-1]
        if token.kind in ("ident", "number"):
            return token.text
        raise PredicateSyntaxError(
            f"expected a label, found {token.text!r}", self.text, token.position
        )

    def _state_query(self) -> StateQuery:
        key_token = self._next()
        if key_token.kind != "ident":
            raise PredicateSyntaxError(
                f"expected a state key, found {key_token.text!r}",
                self.text, key_token.position,
            )
        op_token = self._next()
        if op_token.kind != "op":
            raise PredicateSyntaxError(
                f"expected a comparison operator, found {op_token.text!r}",
                self.text, op_token.position,
            )
        value = self._value()
        return StateQuery(key=key_token.text, op=op_token.text, value=value)

    def _value(self) -> Any:
        token = self._next()
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "string":
            return token.text[1:-1]
        if token.kind == "ident":
            if token.text == "true":
                return True
            if token.text == "false":
                return False
            return token.text
        raise PredicateSyntaxError(
            f"expected a value, found {token.text!r}", self.text, token.position
        )


def parse_predicate(text: str) -> LinkedPredicate:
    """Parse SP / DP / LP text into a (possibly one-stage) LinkedPredicate."""
    return _Parser(text).parse_linked()


def parse_conjunctive(text: str) -> ConjunctivePredicate:
    """Parse ``term & term [& term ...]`` conjunction text."""
    return _Parser(text).parse_conjunctive()
