"""Wire representation of envelopes and control-plane payloads.

Everything the debugging system sends — halt markers, snapshot markers,
predicate markers, debugger commands and notifications, user-message
wrappers — is a frozen dataclass of plain data. This module turns any of
them into JSON (and back) by name, against an explicit registry: only
registered types cross the wire, so a malicious or corrupt frame cannot
instantiate arbitrary classes (the reason this is not pickle).

The payload codec composes with :mod:`repro.util.codec`: containers and
scalars are the shared exact codec's job; dataclasses and enums are added
here via its hooks, tagged as ``{"__repro__": "dc", "type": ..., "fields":
{...}}`` and ``{"__repro__": "enum", ...}``.

The control-plane message table (commands ``d``→process, notifications
process→``d``, markers process→process) is documented for humans in
``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple, Type

from repro.breakpoints.detector import PredicateMarker, StageHit
from repro.breakpoints.predicates import (
    ConjunctivePredicate,
    DisjunctivePredicate,
    LinkedPredicate,
    SimplePredicate,
    StateQuery,
)
from repro.debugger.commands import (
    BreakpointHit,
    HaltNotification,
    PingCommand,
    PongNotice,
    ResumeCommand,
    SatisfactionNotice,
    StateReport,
    StateRequest,
    StepCommand,
    StepReport,
    UnwatchCommand,
    WatchCommand,
)
from repro.events.event import EventKind
from repro.halting.markers import HaltMarker
from repro.network.message import Envelope, MessageKind
from repro.runtime.payload import UserMessage
from repro.runtime.state_capture import ProcessStateSnapshot
from repro.snapshot.chandy_lamport import SnapshotMarker
from repro.util.codec import TAG, from_jsonable, to_jsonable
from repro.util.errors import WireError
from repro.util.ids import ChannelId

#: Every dataclass allowed on the wire, by class name. Registration is the
#: security boundary: decode refuses names outside this table.
WIRE_DATACLASSES: Dict[str, Type[Any]] = {
    cls.__name__: cls
    for cls in (
        UserMessage,
        HaltMarker,
        SnapshotMarker,
        PredicateMarker,
        StageHit,
        LinkedPredicate,
        DisjunctivePredicate,
        ConjunctivePredicate,
        SimplePredicate,
        StateQuery,
        ProcessStateSnapshot,
        ResumeCommand,
        StateRequest,
        StepCommand,
        StepReport,
        WatchCommand,
        UnwatchCommand,
        PingCommand,
        StateReport,
        BreakpointHit,
        HaltNotification,
        PongNotice,
        SatisfactionNotice,
    )
}

WIRE_ENUMS: Dict[str, Type[Any]] = {
    "EventKind": EventKind,
    "MessageKind": MessageKind,
}


def _encode_other(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in WIRE_DATACLASSES:
            raise WireError(f"dataclass {name} is not registered for the wire")
        return {
            TAG: "dc",
            "type": name,
            "fields": {
                f.name: encode_payload(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    for name, enum_cls in WIRE_ENUMS.items():
        if isinstance(value, enum_cls):
            return {TAG: "enum", "type": name, "value": value.value}
    raise WireError(f"cannot encode {type(value).__name__} for the wire")


def _decode_tag(tag: str, record: Dict[str, Any]) -> Any:
    if tag == "dc":
        name = record.get("type")
        cls = WIRE_DATACLASSES.get(name)
        if cls is None:
            raise WireError(f"wire names unregistered dataclass {name!r}")
        fields = {
            key: decode_payload(value)
            for key, value in record.get("fields", {}).items()
        }
        try:
            return cls(**fields)
        except TypeError as exc:
            raise WireError(f"malformed {name} on the wire: {exc}") from exc
    if tag == "enum":
        name = record.get("type")
        enum_cls = WIRE_ENUMS.get(name)
        if enum_cls is None:
            raise WireError(f"wire names unregistered enum {name!r}")
        try:
            return enum_cls(record.get("value"))
        except ValueError as exc:
            raise WireError(str(exc)) from exc
    raise WireError(f"unknown wire tag {tag!r}")


def encode_payload(value: Any) -> Any:
    """JSON-safe exact encoding of one payload (containers, dataclasses,
    enums)."""
    return to_jsonable(value, encode_other=_encode_other)


def decode_payload(value: Any) -> Any:
    """Inverse of :func:`encode_payload`."""
    return from_jsonable(value, decode_tag=_decode_tag)


# -- envelopes ---------------------------------------------------------------


def envelope_to_wire(envelope: Envelope) -> Dict[str, Any]:
    """One envelope as a wire frame body (``frame: "env"``)."""
    clock: Any = None
    if envelope.clock is not None:
        lamport, vector = envelope.clock
        clock = [lamport, list(vector)]
    return {
        "frame": "env",
        "channel": str(envelope.channel),
        "kind": envelope.kind.value,
        "seq": envelope.seq,
        "send_time": envelope.send_time,
        "clock": clock,
        "payload": encode_payload(envelope.payload),
    }


def envelope_from_wire(data: Dict[str, Any]) -> Envelope:
    """Rebuild an :class:`~repro.network.message.Envelope` from a frame."""
    try:
        clock: Optional[Tuple[int, Tuple[int, ...]]] = None
        if data.get("clock") is not None:
            lamport, vector = data["clock"]
            clock = (lamport, tuple(vector))
        return Envelope(
            channel=ChannelId.parse(data["channel"]),
            kind=MessageKind(data["kind"]),
            payload=decode_payload(data["payload"]),
            send_time=float(data["send_time"]),
            seq=int(data["seq"]),
            clock=clock,
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise WireError(f"malformed envelope frame: {exc}") from exc


__all__ = [
    "WIRE_DATACLASSES",
    "WIRE_ENUMS",
    "encode_payload",
    "decode_payload",
    "envelope_to_wire",
    "envelope_from_wire",
]
