"""``repro serve`` / ``repro attach``: drive a live cluster from a shell.

``serve`` starts a distributed run (one OS process per user process, the
parent hosting debugger ``d``) and listens on a *control port* for attach
clients. ``attach`` is a one-shot client: connect, send one command frame,
print the JSON response, exit. Both sides reuse the backend's own framing
(:mod:`repro.distributed.wire`), so the control plane is inspectable with
the same ten lines of code as the data plane.

Failure behaviour is part of the contract: ``serve`` on an in-use port and
``attach`` to a dead endpoint both exit nonzero with a one-line error —
no traceback, no hang. The serve listener binds *before* the cluster
spawns, so a doomed serve never leaves orphan children behind.
"""

from __future__ import annotations

import json
import socket
import sys
import time
from typing import Any, Dict, List, Optional

from repro.distributed import wire
from repro.distributed.session import DistributedDebugSession
from repro.distributed.spec import DISTRIBUTED_WORKLOADS
from repro.util.errors import ReproError, SurvivorsOnlyError, WireError

DEFAULT_CONTROL_PORT = 7070

SERVE_USAGE = """\
usage: python -m repro serve <workload> [key=value ...] [port=N] [seed=N]
                             [debug_port=N] [hold=true]

Starts the workload as real OS processes connected by TCP sockets, with
the debugger process d in this process, and listens for attach clients on
the control port (default 7070; port=0 picks a free port and announces it
on stdout).

debug_port=N additionally serves the long-lived debug protocol (sessions,
deferred breakpoints, step/resume — see docs/DEBUGGER.md) on that port
(0 = OS-assigned, announced as "debug port" on stdout). hold=true defers
the cluster spawn until a debug session sends the spawn command, so
breakpoints can be registered before their target processes exist.
"""

ATTACH_USAGE = """\
usage: python -m repro attach <port> [command] [args] [retries=N] [timeout=S]

Commands:
  status             cluster liveness and message totals (default)
  halt               run the Halting Algorithm (watchdog-bounded)
  resume             resume the halted generation
  inspect <process>  fetch one process's current state
  state              collect the consistent global state
  order              halting order and §2.2.4 marker paths
  kill <process>     SIGKILL one user process (fault injection)
  shutdown           stop the cluster and the serve process

Options:
  retries=N          connection attempts before giving up (default 5),
                     spaced by deterministic seeded exponential backoff
  timeout=S          per-request timeout in seconds (default 60)
  seed=N             pins the backoff jitter schedule (default 0)
"""


class ControlServer:
    """Serves attach clients against one :class:`DistributedDebugSession`."""

    def __init__(
        self, listener: socket.socket, session: DistributedDebugSession
    ) -> None:
        self.listener = listener
        self.session = session
        self._stopping = False

    def serve(self) -> int:
        """Accept attach clients until a ``shutdown`` command (or Ctrl-C)."""
        try:
            while not self._stopping:
                try:
                    conn, _ = self.listener.accept()
                except OSError:
                    break
                self._serve_client(conn)
        except KeyboardInterrupt:
            pass
        finally:
            self.listener.close()
            self.session.shutdown()
        return 0

    def _serve_client(self, conn: socket.socket) -> None:
        conn.settimeout(60.0)
        try:
            while True:
                try:
                    frame = wire.recv_frame(conn)
                except (WireError, OSError):
                    return  # client done (EOF) or gone
                response = self.handle(frame)
                try:
                    wire.send_frame(conn, response)
                except (WireError, OSError):
                    return
                if self._stopping:
                    return
        finally:
            conn.close()

    def handle(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one command frame; never raises (errors become JSON)."""
        try:
            return self._dispatch(frame)
        except ReproError as exc:
            return {"ok": False, "error": str(exc)}
        except Exception as exc:  # defensive: the server must keep serving
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def _dispatch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        session = self.session
        op = frame.get("op", "status")
        if op == "status":
            return {
                "ok": True,
                "workload": session.spec.workload,
                "params": dict(session.spec.params),
                "debugger": session.debugger_name,
                "processes": {
                    name: {"alive": session.alive(name)}
                    for name in session.spec.user_names
                },
                "message_totals": session.system.message_totals(),
            }
        if op == "halt":
            report = session.halt_with_watchdog(
                timeout=float(frame.get("timeout", 10.0)),
                probe_grace=float(frame.get("probe_grace", 3.0)),
            )
            return {
                "ok": True,
                "generation": report.generation,
                "halted": list(report.halted),
                "dead": list(report.dead),
                "unresolved": list(report.unresolved),
                "complete": report.complete,
                "summary": report.describe(),
            }
        if op == "resume":
            try:
                return {"ok": True, "resumed": session.resume()}
            except SurvivorsOnlyError as exc:
                return {"ok": False, "error": str(exc), "dead": list(exc.dead)}
        if op == "inspect":
            process = frame.get("process")
            if not process:
                return {"ok": False, "error": "inspect requires a process name"}
            return {
                "ok": True,
                "process": process,
                "state": session.inspect(process),
            }
        if op == "state":
            state = session.collect_global_state()
            return {
                "ok": True,
                "generation": state.generation,
                "processes": sorted(state.processes),
                "pending_messages": state.total_pending_messages(),
                "summary": state.describe(),
            }
        if op == "order":
            return {
                "ok": True,
                "order": session.halting_order(),
                "paths": {
                    process: list(path)
                    for process, path in session.halt_paths().items()
                },
            }
        if op == "kill":
            process = frame.get("process")
            if not process:
                return {"ok": False, "error": "kill requires a process name"}
            session.kill(process)
            return {"ok": True, "killed": process}
        if op == "shutdown":
            self._stopping = True
            return {"ok": True, "stopping": True}
        return {"ok": False, "error": f"unknown command {op!r}"}


def _parse_kv(args: List[str]) -> Dict[str, Any]:
    from repro.__main__ import parse_value

    params: Dict[str, Any] = {}
    for arg in args:
        key, sep, value = arg.partition("=")
        if not sep:
            raise ValueError(f"arguments must be key=value, got {arg!r}")
        params[key] = parse_value(value)
    return params


def serve_main(argv: List[str]) -> int:
    """Entry point of ``python -m repro serve``."""
    if not argv or argv[0] in ("-h", "--help"):
        print(SERVE_USAGE)
        return 0 if argv and argv[0] in ("-h", "--help") else 2
    workload = argv[0]
    if workload not in DISTRIBUTED_WORKLOADS:
        print(
            f"repro serve: unknown workload {workload!r}; available: "
            f"{', '.join(sorted(DISTRIBUTED_WORKLOADS))}",
            file=sys.stderr,
        )
        return 2
    try:
        options = _parse_kv(argv[1:])
    except ValueError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    port = int(options.pop("port", DEFAULT_CONTROL_PORT))
    seed = int(options.pop("seed", 0))
    debug_port = options.pop("debug_port", None)
    hold = bool(options.pop("hold", False))
    if hold and debug_port is None:
        print(
            "repro serve: hold=true needs debug_port=N (only the debug "
            "protocol's spawn command can start a held cluster)",
            file=sys.stderr,
        )
        return 2

    # Bind the control port BEFORE spawning anything: if the port is taken
    # we fail here, cleanly, with zero child processes to clean up.
    # port=0 asks the OS for a free port — the only race-free choice for
    # tests and CI; the actual port is announced on stdout below.
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        listener.bind(("127.0.0.1", port))
        listener.listen(4)
    except OSError as exc:
        listener.close()
        print(
            f"repro serve: cannot listen on 127.0.0.1:{port}: {exc}",
            file=sys.stderr,
        )
        return 2
    port = listener.getsockname()[1]

    from repro.observe import Observability

    session = DistributedDebugSession(
        workload, options, seed=seed, observe=Observability()
    )
    control = ControlServer(listener, session)

    debug_server = None
    if debug_port is not None:
        # The debug listener also binds before anything spawns, for the
        # same reason as the control port: a doomed serve leaves nothing
        # behind. The debug protocol's shutdown command must stop the
        # control loop too — it parks in accept(), so closing the listener
        # is the wakeup.
        from repro.debugger.service import (
            DebuggerService,
            DebugServer,
            HeldTarget,
            LiveTarget,
        )
        from repro.debugger.surface import DistributedSurface

        def stop_control() -> None:
            control._stopping = True
            # shutdown() before close(): closing alone does not wake an
            # accept() blocked on another thread, shutting the socket
            # down does.
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:
                pass

        if hold:
            def spawn_cluster():
                session.start()
                return DistributedSurface(session)

            target = HeldTarget(spawn_cluster)
        else:
            target = LiveTarget(DistributedSurface(session))
        service = DebuggerService(target)
        debug_server = DebugServer(
            service, port=int(debug_port), on_shutdown=stop_control
        )
        try:
            bound = debug_server.start()
        except OSError as exc:
            print(
                f"repro serve: cannot listen on debug port {debug_port}: {exc}",
                file=sys.stderr,
            )
            listener.close()
            return 2

    if not hold:
        try:
            session.start()
        except Exception as exc:
            print(f"repro serve: cluster failed to start: {exc}", file=sys.stderr)
            listener.close()
            if debug_server is not None:
                debug_server.stop()
            session.shutdown()
            return 1
        print(
            f"serving {workload} as {len(session.spec.user_names)} OS "
            f"processes; control port 127.0.0.1:{port}"
        )
    else:
        print(
            f"holding {workload} ({len(session.spec.user_names)} processes, "
            f"unspawned); control port 127.0.0.1:{port}"
        )
    if debug_server is not None:
        print(f"debug port 127.0.0.1:{bound}")
    print(f"attach with: python -m repro attach {port} status")
    sys.stdout.flush()
    try:
        return control.serve()
    finally:
        if debug_server is not None:
            debug_server.stop()


def attach_main(argv: List[str]) -> int:
    """Entry point of ``python -m repro attach``."""
    if not argv or argv[0] in ("-h", "--help"):
        print(ATTACH_USAGE)
        return 0 if argv and argv[0] in ("-h", "--help") else 2
    try:
        port = int(argv[0])
    except ValueError:
        print(f"repro attach: not a port number: {argv[0]!r}", file=sys.stderr)
        return 2
    positional: List[str] = []
    options: Dict[str, str] = {}
    for arg in argv[1:]:
        key, sep, value = arg.partition("=")
        if sep and key in ("retries", "timeout", "seed"):
            options[key] = value
        else:
            positional.append(arg)
    try:
        retries = int(options.get("retries", 5))
        request_timeout = float(options.get("timeout", 60.0))
        seed = int(options.get("seed", 0))
    except ValueError as exc:
        print(f"repro attach: bad option value: {exc}", file=sys.stderr)
        return 2
    command = positional[0] if positional else "status"
    frame: Dict[str, Any] = {"op": command}
    if len(positional) > 1:
        frame["process"] = positional[1]

    # A serve process that is mid-recovery (or mid-start) refuses briefly;
    # a deterministic seeded backoff rides that out without stampeding.
    from repro.distributed.transport import Backoff

    backoff = Backoff(
        seed=f"{seed}|attach|{port}", base=0.1, cap=2.0, retries=max(0, retries - 1)
    )
    sock: Optional[socket.socket] = None
    while sock is None:
        try:
            sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
        except OSError as exc:
            if backoff.exhausted:
                print(
                    f"repro attach: cannot connect to 127.0.0.1:{port} "
                    f"after {retries} attempts: {exc}",
                    file=sys.stderr,
                )
                return 2
            time.sleep(backoff.next_delay())
    sock.settimeout(request_timeout)
    response: Optional[Dict[str, Any]] = None
    try:
        wire.send_frame(sock, frame)
        response = wire.recv_frame(sock)
    except (WireError, OSError) as exc:
        print(f"repro attach: connection failed: {exc}", file=sys.stderr)
        return 2
    finally:
        try:
            sock.close()
        except OSError:
            pass
    print(json.dumps(response, indent=2, sort_keys=True, default=str))
    return 0 if response.get("ok") else 1


__all__ = [
    "ControlServer",
    "serve_main",
    "attach_main",
    "DEFAULT_CONTROL_PORT",
]
