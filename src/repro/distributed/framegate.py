"""Parent-side TCP frame staging: the distributed scheduling gate's hands.

The distributed backend has no kernel to hook and no turnstile to insert —
children are real OS processes exchanging frames over real sockets. What
the parent *can* control is the wire itself. A :class:`FrameStager` is a
man-in-the-middle proxy for every user-process channel:

* At the port rendezvous the parent doctors the ports map it sends back
  (:meth:`doctor`), so every child dials the stager's single listening
  port instead of its real peer. The first frame on each connection is the
  ``hello`` naming the channel, which tells the stager which real
  destination to dial for the pass-through side.
* Envelope (``env``) frames arriving from the source are *held* in a
  per-channel FIFO buffer instead of being forwarded. Control-plane
  frames (``ctl``) pass through immediately — they are cluster plumbing,
  not the computation being scheduled.
* :class:`~repro.check.gate.FrameGate` turns the held buffers into the
  gate's enabled set (one ``chan:src->dst`` label per non-empty buffer)
  and :meth:`release` forwards a channel's oldest frame on commit.

Because TCP is FIFO and each channel has exactly one staging thread,
per-channel order is preserved structurally; the stager only reorders
deliveries *across* channels — exactly the decision surface the other two
gates expose. Timers and internal steps still run wall-clock inside the
children, so the distributed gate orders deliveries only; quiescence is a
quiet window (:meth:`wait_quiet`), not an activity counter.

Fail-stop rules match :class:`~repro.distributed.transport.SocketChannel`:
a dead destination eats released frames silently, and a source that closes
its side simply stops producing — its held frames stay until released or
flushed by :meth:`release_all`.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional

from repro.distributed import wire
from repro.distributed.transport import dial
from repro.util.errors import ReproError, WireError
from repro.util.ids import ChannelId

#: Signature of the observe-mode tap: ``(channel, frame, arrival_index)``.
FrameTap = Callable[[str, Dict[str, object], int], None]


class _ProxyLink:
    """One proxied channel: the source's connection and the real
    destination's, plus the frames held between them."""

    __slots__ = ("channel", "inbound", "outbound", "held", "dead")

    def __init__(self, channel: str, inbound: socket.socket,
                 outbound: socket.socket) -> None:
        self.channel = channel
        self.inbound = inbound
        self.outbound = outbound
        self.held: Deque[Dict[str, object]] = deque()
        #: True once either side is gone (fail-stop: releases are no-ops).
        self.dead = False


class FrameStager:
    """Hold every user-channel ``env`` frame until the gate releases it.

    ``observe=True`` turns the stager into a pure tap: ``env`` frames are
    never held, every frame passes straight through, and — when
    ``on_frame`` is set — each user-channel ``env`` frame is reported to
    the callback with a globally increasing arrival index. The callback
    runs under the stager's lock, so the ``(channel, frame, index)``
    stream is a strict total order over all proxied channels: exactly the
    interleaving the record/replay bridge reconstructs in the DES.
    Control (``ctl``) frames are plumbing and are neither held nor
    reported in either mode.
    """

    def __init__(self, dial_timeout: float = 10.0, observe: bool = False,
                 on_frame: Optional[FrameTap] = None) -> None:
        self._dial_timeout = dial_timeout
        self._observe = observe
        self._on_frame = on_frame
        self._frame_index = 0
        self._lock = threading.Lock()
        self._links: Dict[str, _ProxyLink] = {}
        self._real_ports: Dict[str, int] = {}
        self._passthrough = False
        self._closed = False
        self._last_activity = time.monotonic()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []

    # -- rendezvous hook -----------------------------------------------------

    def doctor(self, ports: Dict[str, int],
               keep: Iterable[str] = ()) -> Dict[str, int]:
        """Rewrite a real ports map so dialers reach the stager instead.

        ``keep`` names processes whose entries stay real (the debugger:
        its channels are control plane, not scheduled computation). The
        real map is remembered so :meth:`_handle` can dial actual
        destinations; one listener serves every proxied channel because
        the ``hello`` frame disambiguates.
        """
        keep_set = set(keep)
        with self._lock:
            self._real_ports.update(ports)
            port = self._ensure_listener()
        return {
            name: (real if name in keep_set else port)
            for name, real in ports.items()
        }

    def _ensure_listener(self) -> int:
        if self._listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(("127.0.0.1", 0))
            listener.listen(64)
            self._listener = listener
            thread = threading.Thread(
                target=self._accept_loop, name="framegate-accept", daemon=True
            )
            self._threads.append(thread)
            thread.start()
        return self._listener.getsockname()[1]

    # -- proxy side ----------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            thread = threading.Thread(
                target=self._handle, args=(conn,),
                name="framegate-link", daemon=True,
            )
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._threads.append(thread)
            thread.start()

    def _handle(self, conn: socket.socket) -> None:
        """Serve one proxied connection: hello, dial-through, then stage."""
        try:
            conn.settimeout(10.0)
            hello = wire.recv_frame(conn)
            conn.settimeout(None)
            if hello.get("frame") != "hello" or "channel" not in hello:
                raise WireError(f"expected hello frame, got {hello!r}")
            channel = str(hello["channel"])
            dst = str(ChannelId.parse(channel).dst)
            with self._lock:
                real_port = self._real_ports[dst]
            outbound = dial(
                real_port, time.monotonic() + self._dial_timeout,
                seed=f"framegate|{channel}",
            )
            wire.send_frame(outbound, hello)
        except (WireError, OSError, KeyError):
            conn.close()
            return
        link = _ProxyLink(channel, conn, outbound)
        with self._lock:
            self._links[channel] = link
            self._touch()
        try:
            while True:
                frame = wire.recv_frame(conn)
                with self._lock:
                    self._touch()
                    is_env = frame.get("frame") == "env"
                    if is_env and self._on_frame is not None:
                        index = self._frame_index
                        self._frame_index += 1
                        # Under the lock on purpose: arrival indices must
                        # be a strict total order across channel threads.
                        self._on_frame(channel, frame, index)
                    hold = (
                        is_env
                        and not self._observe
                        and not self._passthrough
                        and not self._closed
                    )
                    if hold:
                        link.held.append(frame)
                if not hold:
                    wire.send_frame(outbound, frame)
        except (WireError, OSError):
            # Clean EOF included: the source is done (or dead). Held
            # frames stay releasable; the outbound side stays open until
            # they drain or the stager closes.
            pass
        finally:
            with self._lock:
                link.dead = True
                self._touch()
            conn.close()

    def _touch(self) -> None:
        self._last_activity = time.monotonic()

    # -- gate surface --------------------------------------------------------

    def wait_quiet(self, settle: float, timeout: float = 10.0) -> None:
        """Block until no frame has arrived for ``settle`` seconds.

        This is the distributed substitute for an activity counter: after
        a release, the cluster's reaction (handler runs, resulting sends)
        shows up as fresh staged frames, each of which restarts the
        window. ``timeout`` bounds the total wait so a chatty cluster
        cannot wedge the checker.
        """
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                quiet_for = time.monotonic() - self._last_activity
            if quiet_for >= settle or time.monotonic() >= deadline:
                return
            time.sleep(min(max(settle - quiet_for, 0.005), 0.05))

    def held_channels(self) -> List[str]:
        """Channels with at least one held frame, sorted for determinism."""
        with self._lock:
            return sorted(c for c, l in self._links.items() if l.held)

    def held_count(self) -> int:
        """Total frames currently parked across every channel."""
        with self._lock:
            return sum(len(l.held) for l in self._links.values())

    def release(self, channel: str) -> None:
        """Forward ``channel``'s oldest held frame to its destination."""
        with self._lock:
            link = self._links.get(channel)
            if link is None or not link.held:
                raise ReproError(
                    f"no held frame on channel {channel!r}; "
                    f"held: {sorted(c for c, l in self._links.items() if l.held)}"
                )
            frame = link.held.popleft()
            self._touch()
        try:
            wire.send_frame(link.outbound, frame)
        except (WireError, OSError):
            link.dead = True  # fail-stop: the destination ate the frame

    def release_all(self) -> None:
        """Flush every held frame in FIFO order and go pass-through.

        Called when the gate closes: from here on the proxy is a plain
        forwarder, so an orderly cluster shutdown is not starved of the
        frames it is waiting for.
        """
        with self._lock:
            self._passthrough = True
            links = list(self._links.values())
        for link in links:
            while True:
                with self._lock:
                    if not link.held:
                        break
                    frame = link.held.popleft()
                try:
                    wire.send_frame(link.outbound, frame)
                except (WireError, OSError):
                    link.dead = True
                    break

    def close(self) -> None:
        """Tear the proxy down: listener, every link, both directions."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            listener = self._listener
            links = list(self._links.values())
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        for link in links:
            for sock in (link.inbound, link.outbound):
                try:
                    sock.close()
                except OSError:
                    pass
        for thread in self._threads:
            thread.join(timeout=1.0)


__all__ = ["FrameStager", "FrameTap"]
