"""Socket-backed channels: the sender half of one TCP link.

Each directed channel of the extended topology is one TCP connection,
opened by the channel's *source* process toward the destination's
listening port. The connection starts with a ``hello`` frame naming the
channel; after that, every frame on it is either an envelope (``env``) or
a control-plane frame (``ctl``).

:class:`SocketChannel` exposes the same ``send(kind, payload, clock)``
surface as the DES and threaded channels, so ``ThreadedController`` and
every algorithm plugin run over it unmodified. TCP already provides the
paper's §2.1 channel model (reliable, FIFO), so fault injection happens
deliberately *above* the stream: a
:class:`~repro.faults.injection.ChannelFaultInjector` can eat frame copies
before they are written, duplicate them, or delay them past later traffic
(reorder). A loss here is a genuine loss — nothing below retransmits.

Sends to a dead peer do not raise: a broken pipe marks the channel
``failed`` and the frame falls on the floor, which is exactly the paper's
fail-stop model (frames addressed at a dead host are gone) and what the
partial-halt machinery expects.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Any, Dict, Optional

from repro.distributed import wire
from repro.distributed.protocol import envelope_to_wire
from repro.faults.injection import ChannelFaultInjector
from repro.network.channel import ChannelStats
from repro.network.message import Envelope, MessageKind
from repro.util.errors import RetryBudgetExceeded, WireError
from repro.util.ids import ChannelId


class SocketChannel:
    """Sender endpoint of one directed channel over a connected socket."""

    def __init__(
        self,
        channel_id: ChannelId,
        runtime: Any,
        sock: socket.socket,
        injector: Optional[ChannelFaultInjector] = None,
    ) -> None:
        self.id = channel_id
        self._runtime = runtime
        self._sock = sock
        self._injector = None if (injector is not None and injector.is_noop) else injector
        self._lock = threading.Lock()
        self.stats = ChannelStats()
        # Legacy alias, same as ThreadedChannel (message_totals reads it).
        self.sent_by_kind = self.stats.sent_by_kind
        #: True once a write failed — the peer is gone (fail-stop).
        self.failed = False
        self._closed = False

    def send(self, kind: MessageKind, payload: object, clock: object = None) -> Envelope:
        """Emit one message toward ``dst``. Never raises on a dead peer."""
        envelope = Envelope(
            channel=self.id,
            kind=kind,
            payload=payload,
            send_time=self._runtime.now,
            seq=self._runtime.next_message_seq(),
            clock=clock,
        )
        with self._lock:
            self.stats.sent += 1
            self.stats.sent_by_kind[kind] += 1
        is_user = kind.is_user
        copies = 1
        delay = 0.0
        if self._injector is not None:
            copies += self._injector.duplicates(is_user)
            delay = self._injector.extra_delay(is_user) * self._runtime.time_scale
        frame = envelope_to_wire(envelope)
        survivors = 0
        for _ in range(copies):
            # drop_frame first, unconditionally: it consumes the loss RNG
            # stream, so partitions do not perturb probabilistic loss.
            if self._injector is not None and (
                self._injector.drop_frame(is_user)
                or self._injector.partitioned(self._virtual_now())
            ):
                # The wire ate this copy before it ever hit the socket.
                with self._lock:
                    self.stats.frames_dropped += 1
                continue
            survivors += 1
            if delay > 0.0:
                # Injected reorder: this frame escapes TCP's FIFO by being
                # written late, so frames sent after it can overtake it.
                timer = threading.Timer(delay, self._write_frame, args=(frame,))
                timer.daemon = True
                timer.start()
            else:
                self._write_frame(frame)
        if survivors == 0:
            # Nothing below this layer retransmits: the message is lost.
            with self._lock:
                self.stats.record_drop(kind)
        return envelope

    def _virtual_now(self) -> float:
        """Host wall time mapped back to FaultPlan virtual units."""
        scale = getattr(self._runtime, "time_scale", 1.0) or 1.0
        return self._runtime.now / scale

    def send_raw(self, frame: Dict[str, Any]) -> bool:
        """Write one non-envelope frame (``hello``/``ctl``) on this
        connection. Returns False if the peer is gone."""
        return self._write_frame(frame)

    def _write_frame(self, frame: Dict[str, Any]) -> bool:
        with self._lock:
            if self.failed or self._closed:
                return False
            try:
                wire.send_frame(self._sock, frame)
                return True
            except (OSError, WireError):
                # Fail-stop semantics: a dead destination eats frames.
                self.failed = True
                return False

    def close(self) -> None:
        """Shut the connection down; subsequent sends fall on the floor."""
        with self._lock:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass


class InboundLink:
    """Receiver-side accounting for one accepted channel connection.

    The reader thread that owns the connection increments these counters;
    observability's per-channel collectors read them. (Latency is clamped
    at zero: ``send_time`` was stamped against the sender's epoch, and
    host epochs differ by startup skew.)
    """

    def __init__(self, channel_id: ChannelId) -> None:
        self.id = channel_id
        self.stats = ChannelStats()
        self.sent_by_kind = self.stats.sent_by_kind

    def note_delivered(self, envelope: Envelope, now: float) -> None:
        """Record one envelope handed to the local mailbox."""
        self.stats.delivered += 1
        self.stats.total_latency += max(0.0, now - envelope.send_time)


class Backoff:
    """Deterministic seeded exponential backoff with a retry budget.

    The k-th delay is ``min(cap, base * factor**k)`` scaled by a jitter
    factor drawn from a *seeded* stream — so concurrent dialers spread out
    (no reconnection stampede after a recovery restart) yet the same seed
    reproduces the same retry schedule byte for byte, keeping recovery
    inside the repo's determinism contract.

    ``retries`` bounds the number of delays handed out; ``None`` means the
    caller bounds the loop some other way (a deadline). ``exhausted`` turns
    true once the budget is spent, and :meth:`next_delay` past that raises
    :class:`~repro.util.errors.RetryBudgetExceeded`.
    """

    __slots__ = ("base", "factor", "cap", "jitter", "retries", "attempt", "_rng")

    def __init__(self, seed: object = "backoff", base: float = 0.05,
                 factor: float = 2.0, cap: float = 2.0, jitter: float = 0.5,
                 retries: Optional[int] = None) -> None:
        if base <= 0 or factor < 1.0 or cap < base or not 0.0 <= jitter < 1.0:
            raise ValueError(
                f"backoff needs base > 0 <= cap, factor >= 1, 0 <= jitter < 1; "
                f"got base={base!r} factor={factor!r} cap={cap!r} jitter={jitter!r}"
            )
        self.base = base
        self.factor = factor
        self.cap = cap
        self.jitter = jitter
        self.retries = retries
        self.attempt = 0
        self._rng = random.Random(f"{seed}|backoff")

    @property
    def exhausted(self) -> bool:
        return self.retries is not None and self.attempt >= self.retries

    def next_delay(self) -> float:
        """The next sleep, advancing the attempt counter."""
        if self.exhausted:
            raise RetryBudgetExceeded(
                f"retry budget of {self.retries} attempts exhausted"
            )
        raw = min(self.cap, self.base * self.factor ** self.attempt)
        self.attempt += 1
        # Jitter only ever *shortens* the delay, so cap stays an upper bound.
        return raw * (1.0 - self.jitter * self._rng.random())


def dial(
    port: int,
    deadline: float,
    host: str = "127.0.0.1",
    retry_interval: float = 0.05,
    backoff: Optional[Backoff] = None,
    seed: object = None,
) -> socket.socket:
    """Connect to ``host:port``, retrying until ``deadline`` (monotonic).

    Peers bind their listeners concurrently, so early connection refusals
    are expected; retries follow a deterministic seeded :class:`Backoff`
    schedule (pass ``seed`` to pin it, or a preconfigured ``backoff``).
    Anything still refusing at the deadline — or once the backoff's retry
    budget is spent — raises the last ``OSError``.
    """
    if backoff is None:
        backoff = Backoff(
            seed=seed if seed is not None else f"dial|{host}:{port}",
            base=retry_interval,
            factor=1.7,
            cap=1.0,
        )
    last: Optional[OSError] = None
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=2.0)
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            last = exc
            if time.monotonic() >= deadline or backoff.exhausted:
                raise last
            remaining = deadline - time.monotonic()
            time.sleep(min(backoff.next_delay(), max(0.0, remaining)))


__all__ = ["Backoff", "SocketChannel", "InboundLink", "dial"]
