"""Socket-backed channels: the sender half of one TCP link.

Each directed channel of the extended topology is one TCP connection,
opened by the channel's *source* process toward the destination's
listening port. The connection starts with a ``hello`` frame naming the
channel; after that, every frame on it is either an envelope (``env``) or
a control-plane frame (``ctl``).

:class:`SocketChannel` exposes the same ``send(kind, payload, clock)``
surface as the DES and threaded channels, so ``ThreadedController`` and
every algorithm plugin run over it unmodified. TCP already provides the
paper's §2.1 channel model (reliable, FIFO), so fault injection happens
deliberately *above* the stream: a
:class:`~repro.faults.injection.ChannelFaultInjector` can eat frame copies
before they are written, duplicate them, or delay them past later traffic
(reorder). A loss here is a genuine loss — nothing below retransmits.

Sends to a dead peer do not raise: a broken pipe marks the channel
``failed`` and the frame falls on the floor, which is exactly the paper's
fail-stop model (frames addressed at a dead host are gone) and what the
partial-halt machinery expects.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, Optional

from repro.distributed import wire
from repro.distributed.protocol import envelope_to_wire
from repro.faults.injection import ChannelFaultInjector
from repro.network.channel import ChannelStats
from repro.network.message import Envelope, MessageKind
from repro.util.errors import WireError
from repro.util.ids import ChannelId


class SocketChannel:
    """Sender endpoint of one directed channel over a connected socket."""

    def __init__(
        self,
        channel_id: ChannelId,
        runtime: Any,
        sock: socket.socket,
        injector: Optional[ChannelFaultInjector] = None,
    ) -> None:
        self.id = channel_id
        self._runtime = runtime
        self._sock = sock
        self._injector = None if (injector is not None and injector.is_noop) else injector
        self._lock = threading.Lock()
        self.stats = ChannelStats()
        # Legacy alias, same as ThreadedChannel (message_totals reads it).
        self.sent_by_kind = self.stats.sent_by_kind
        #: True once a write failed — the peer is gone (fail-stop).
        self.failed = False
        self._closed = False

    def send(self, kind: MessageKind, payload: object, clock: object = None) -> Envelope:
        """Emit one message toward ``dst``. Never raises on a dead peer."""
        envelope = Envelope(
            channel=self.id,
            kind=kind,
            payload=payload,
            send_time=self._runtime.now,
            seq=self._runtime.next_message_seq(),
            clock=clock,
        )
        with self._lock:
            self.stats.sent += 1
            self.stats.sent_by_kind[kind] += 1
        is_user = kind.is_user
        copies = 1
        delay = 0.0
        if self._injector is not None:
            copies += self._injector.duplicates(is_user)
            delay = self._injector.extra_delay(is_user) * self._runtime.time_scale
        frame = envelope_to_wire(envelope)
        survivors = 0
        for _ in range(copies):
            if self._injector is not None and self._injector.drop_frame(is_user):
                # The wire ate this copy before it ever hit the socket.
                with self._lock:
                    self.stats.frames_dropped += 1
                continue
            survivors += 1
            if delay > 0.0:
                # Injected reorder: this frame escapes TCP's FIFO by being
                # written late, so frames sent after it can overtake it.
                timer = threading.Timer(delay, self._write_frame, args=(frame,))
                timer.daemon = True
                timer.start()
            else:
                self._write_frame(frame)
        if survivors == 0:
            # Nothing below this layer retransmits: the message is lost.
            with self._lock:
                self.stats.record_drop(kind)
        return envelope

    def send_raw(self, frame: Dict[str, Any]) -> bool:
        """Write one non-envelope frame (``hello``/``ctl``) on this
        connection. Returns False if the peer is gone."""
        return self._write_frame(frame)

    def _write_frame(self, frame: Dict[str, Any]) -> bool:
        with self._lock:
            if self.failed or self._closed:
                return False
            try:
                wire.send_frame(self._sock, frame)
                return True
            except (OSError, WireError):
                # Fail-stop semantics: a dead destination eats frames.
                self.failed = True
                return False

    def close(self) -> None:
        """Shut the connection down; subsequent sends fall on the floor."""
        with self._lock:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass


class InboundLink:
    """Receiver-side accounting for one accepted channel connection.

    The reader thread that owns the connection increments these counters;
    observability's per-channel collectors read them. (Latency is clamped
    at zero: ``send_time`` was stamped against the sender's epoch, and
    host epochs differ by startup skew.)
    """

    def __init__(self, channel_id: ChannelId) -> None:
        self.id = channel_id
        self.stats = ChannelStats()
        self.sent_by_kind = self.stats.sent_by_kind

    def note_delivered(self, envelope: Envelope, now: float) -> None:
        """Record one envelope handed to the local mailbox."""
        self.stats.delivered += 1
        self.stats.total_latency += max(0.0, now - envelope.send_time)


def dial(
    port: int,
    deadline: float,
    host: str = "127.0.0.1",
    retry_interval: float = 0.05,
) -> socket.socket:
    """Connect to ``host:port``, retrying until ``deadline`` (monotonic).

    Peers bind their listeners concurrently, so early connection refusals
    are expected; anything still refusing at the deadline raises the last
    ``OSError``.
    """
    last: Optional[OSError] = None
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=2.0)
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            last = exc
            if time.monotonic() >= deadline:
                raise last
            time.sleep(retry_interval)


__all__ = ["SocketChannel", "InboundLink", "dial"]
