"""Length-prefixed JSON framing over a stream socket.

One frame = a 4-byte big-endian payload length followed by that many bytes
of UTF-8 JSON. The format is deliberately boring: it is inspectable with
``xxd``, implementable in any language in ten lines, and — because TCP is
itself reliable and FIFO — it preserves the paper's §2.1 channel model
(error-free, order-preserving, unbounded-delay) without a retransmission
protocol on top. Fault injection therefore happens *above* this layer, in
:class:`~repro.distributed.transport.SocketChannel`, where frames can be
dropped or duplicated deliberately.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict

from repro.util.errors import WireClosed, WireError

#: Hard cap on one frame's payload, guarding against corrupt prefixes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def send_frame(sock: socket.socket, obj: Dict[str, Any]) -> int:
    """Serialize ``obj`` and write one frame. Returns bytes written."""
    data = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(data)} bytes exceeds {MAX_FRAME_BYTES}")
    payload = _LENGTH.pack(len(data)) + data
    sock.sendall(payload)
    return len(payload)


def recv_frame(sock: socket.socket) -> Dict[str, Any]:
    """Read one frame. Raises :class:`WireClosed` on clean EOF between
    frames and :class:`WireError` on a truncated or oversized frame."""
    header = _recv_exact(sock, _LENGTH.size, eof_ok=True)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"peer announced a {length}-byte frame (cap "
                        f"{MAX_FRAME_BYTES}); stream is corrupt or hostile")
    data = _recv_exact(sock, length, eof_ok=False)
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise WireError(f"frame must be a JSON object, got {type(obj).__name__}")
    return obj


def _recv_exact(sock: socket.socket, n: int, eof_ok: bool) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == n:
                raise WireClosed("peer closed the connection")
            raise WireError(
                f"connection died mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


__all__ = ["MAX_FRAME_BYTES", "send_frame", "recv_frame"]
