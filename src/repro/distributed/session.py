"""The distributed debug session: process ``d`` over real sockets.

The parent OS process *is* the paper's debugger process ``d``. It plans a
:class:`~repro.distributed.spec.ClusterSpec`, spawns one child OS process
per user process, hosts ``d``'s own controller and agents over the same
socket transport the children use, and then drives the run exactly like
:class:`~repro.debugger.session.DebugSession` does on the DES backend:
initiate the Halting Algorithm, collect the consistent global state from
protocol state reports, resume, set breakpoints.

Everything the session knows about the children it learns through the
wire: halt notifications (with §2.2.4 halting-order paths), state reports,
pongs — and, for failures, silence. ``kill()`` SIGKILLs a child outright;
the partial-halt machinery then has a genuinely dead host to discover.

Thread-safety follows the threaded session's rule: commands are deferred
into ``d``'s own mailbox, and only append-only notification state is read
from the driving thread.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import repro
from repro.breakpoints.detector import PredicateAgent
from repro.breakpoints.parser import parse_predicate
from repro.breakpoints.predicates import LinkedPredicate, SimplePredicate, as_linked
from repro.debugger.agent import (
    DEFAULT_DEBUGGER_NAME,
    DebuggerAgent,
    DebuggerProcess,
)
from repro.debugger.commands import ResumeCommand
from repro.debugger.failure import PartialHaltReport
from repro.distributed import wire
from repro.distributed.host import ProcessHost
from repro.distributed.spec import ClusterSpec
from repro.faults.plan import FaultPlan
from repro.halting.algorithm import HaltingAgent
from repro.snapshot.state import ChannelState, GlobalState
from repro.util.errors import (
    HaltingError,
    PredicateError,
    ReproError,
    SurvivorsOnlyError,
)
from repro.util.ids import ChannelId, ProcessId

if False:  # pragma: no cover - typing only
    from repro.observe.integrate import Observability


def _child_env() -> Dict[str, str]:
    """Environment for spawned children: make this ``repro`` importable."""
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_root + os.pathsep + existing if existing else src_root
    )
    return env


class DistributedDebugSession:
    """Debugging a cluster of real OS processes from the debugger ``d``."""

    def __init__(
        self,
        workload: str,
        params: Optional[Mapping[str, Any]] = None,
        seed: int = 0,
        time_scale: float = 0.02,
        debugger_name: ProcessId = DEFAULT_DEBUGGER_NAME,
        fault_plan: Optional[FaultPlan] = None,
        observe: Optional["Observability"] = None,
        spec: Optional[ClusterSpec] = None,
        frame_stager: Optional[Any] = None,
    ) -> None:
        self.spec = spec if spec is not None else ClusterSpec.plan(
            workload,
            params,
            seed=seed,
            time_scale=time_scale,
            debugger=debugger_name,
            fault_plan=fault_plan,
        )
        self.debugger_name = self.spec.debugger
        self.observe = observe
        #: Optional :class:`~repro.distributed.framegate.FrameStager` —
        #: when set, the ports map sent back at the rendezvous is doctored
        #: so every user-process channel runs through the stager's proxy
        #: and a :class:`~repro.check.gate.FrameGate` can order deliveries.
        #: ``d``'s own port stays real: control traffic is never staged.
        self.frame_stager = frame_stager
        self._lock = threading.Lock()
        self._ready: set = set()
        #: Children that still owe a port announcement, their parked
        #: connections, and the "everyone announced" latch.
        self._expect_ports: set = set()
        self._port_conns: List[Any] = []
        self._ports_ready = threading.Event()
        #: process -> its final ``stats`` ctl frame (arrives at shutdown).
        self.host_stats: Dict[ProcessId, Dict[str, Any]] = {}
        self._host = ProcessHost(
            self.spec,
            self.debugger_name,
            DebuggerProcess(),
            observe=observe,
            on_ctl=self._on_ctl,
            on_port=self._on_port,
        )
        #: ``d``'s system facade — the ``session.system`` surface that
        #: observability and narrative tooling read.
        self.system = self._host.runtime
        controller = self._host.controller
        self._halting = HaltingAgent(controller)
        controller.install(self._halting)
        self._cancelled: set = set()
        self._predicate = PredicateAgent(
            controller, halt_on_final=False, cancelled=self._cancelled
        )
        controller.install(self._predicate)
        self.agent = DebuggerAgent(controller)
        controller.install(self.agent)
        self._children: Dict[ProcessId, subprocess.Popen] = {}
        self._killed: set = set()
        #: Halt generations fully resumed — their notifications are stale,
        #: so a later halt must start a fresh generation, not adopt them.
        self._resumed_generations: set = set()
        self._spec_path: Optional[str] = None
        self._next_lp_id = 1
        self._started = False
        self._shutdown = False

    # -- ctl side band -------------------------------------------------------

    def _on_ctl(self, frame: Dict[str, Any], channel_id: ChannelId) -> None:
        op = frame.get("op")
        if op == "ready":
            with self._lock:
                self._ready.add(frame.get("process"))
        elif op == "stats":
            with self._lock:
                self.host_stats[frame.get("process")] = {
                    "totals": frame.get("totals", {}),
                    "channels": frame.get("channels", {}),
                }

    def _on_port(self, frame: Dict[str, Any], conn: Any) -> None:
        """Parent side of the port rendezvous.

        Each child announces its real (OS-assigned) listening port over a
        throwaway connection to ``d``'s known port. The connection is
        parked until every expected child has announced; then the complete
        map goes back on every parked connection at once, so no host dials
        a listener that is not yet up.
        """
        with self._lock:
            self.spec.ports[str(frame.get("process"))] = int(
                frame.get("port", 0)
            )
            self._port_conns.append(conn)
            if not all(self.spec.ports.get(n) for n in self._expect_ports):
                return
            announced = dict(self.spec.ports)
            if self.frame_stager is not None:
                # Children learn proxied ports; the parent's own dials
                # (connect_all) keep using the real spec.ports map.
                announced = self.frame_stager.doctor(
                    announced, keep={str(self.debugger_name)}
                )
            reply = {"frame": "ports", "ports": announced}
            for parked in self._port_conns:
                try:
                    wire.send_frame(parked, reply)
                except OSError:
                    pass
                finally:
                    parked.close()
            self._port_conns.clear()
            self._ports_ready.set()

    def _wait(self, condition, timeout: float, poll: float = 0.005) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if condition():
                return True
            time.sleep(poll)
        return condition()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind ``d``, spawn every child, connect, and release the cluster."""
        if self._started:
            return
        self._started = True
        # Bind before writing the spec: ``d``'s real port is the one fixed
        # point every child needs to reach the rendezvous.
        self._host.bind()
        fd, self._spec_path = tempfile.mkstemp(
            prefix="repro-cluster-", suffix=".json"
        )
        os.close(fd)
        self.spec.write(self._spec_path)
        self._expect_ports = {
            n for n in self.spec.user_names if not self.spec.ports.get(n)
        }
        env = _child_env()
        for name in self.spec.user_names:
            self._children[name] = subprocess.Popen(
                [sys.executable, "-m", "repro.distributed.host",
                 self._spec_path, name],
                env=env,
            )
        if self._expect_ports and not self._ports_ready.wait(
            timeout=self.spec.connect_timeout + 10.0
        ):
            missing = sorted(
                n for n in self._expect_ports if not self.spec.ports.get(n)
            )
            self.shutdown()
            raise HaltingError(
                f"port rendezvous incomplete; missing {missing}"
            )
        self._host.connect_all()
        expected = set(self.spec.user_names)
        if not self._wait(
            lambda: expected <= self._ready,
            timeout=self.spec.connect_timeout + 10.0,
        ):
            missing = sorted(expected - self._ready)
            self.shutdown()
            raise HaltingError(f"cluster never became ready; missing {missing}")
        for name in self.spec.user_names:
            self._host.send_ctl(name, {"op": "go"})
        self.system.note_activity(+1)
        self._host.controller.start()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Orderly teardown: collect per-host stats, then stop everything."""
        if self._shutdown:
            return
        self._shutdown = True
        live = [
            name for name, proc in self._children.items()
            if proc.poll() is None
        ]
        for name in live:
            self._host.send_ctl(name, {"op": "shutdown"})
        # Stats are best-effort: a killed child never sends its frame.
        self._wait(
            lambda: set(live) <= set(self.host_stats), timeout=min(timeout, 3.0)
        )
        for name, proc in self._children.items():
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=timeout)
        if self._started:
            self._host.stop_controller(timeout)
        self._host.close()
        if self.frame_stager is not None:
            self.frame_stager.close()
        if self._spec_path is not None and os.path.exists(self._spec_path):
            os.unlink(self._spec_path)

    def __enter__(self) -> "DistributedDebugSession":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- failure injection ---------------------------------------------------

    def kill(self, process: ProcessId) -> None:
        """SIGKILL one child — a genuine fail-stop crash, mid-anything."""
        proc = self._children.get(process)
        if proc is None:
            raise ReproError(f"no child process named {process!r}")
        proc.kill()
        proc.wait(timeout=5.0)
        self._killed.add(process)

    def alive(self, process: ProcessId) -> bool:
        proc = self._children.get(process)
        return proc is not None and proc.poll() is None

    # -- halting -------------------------------------------------------------

    def _halted_of(self, generation: int) -> set:
        return {
            n.process
            for n in self.agent.halt_notifications
            if n.halt_id == generation
        }

    def halt(self) -> None:
        """Debugger-initiated halt: markers flood from ``d``'s channels."""
        self.start()
        if self.observe is not None:
            self.observe.note_halt_initiated(self._halting.last_halt_id + 1)
        self._host.controller.defer(self._halting.initiate, label="halt")

    def halt_with_watchdog(
        self, timeout: float = 10.0, probe_grace: float = 3.0
    ) -> PartialHaltReport:
        """Halt under a watchdog; silent processes are declared dead.

        Mirrors the threaded session: converged means every user process
        sent a halt notification for the current generation; anything
        still silent at ``timeout`` is pinged, and silence through
        ``probe_grace`` marks it dead. The survivors form a partial
        consistent cut (the PR 2 machinery, now over real process death).
        """
        self.start()
        names = list(self.spec.user_names)
        gen0 = self._halting.last_halt_id
        fresh = (
            gen0 in self._resumed_generations
            or not self._halted_of(gen0)
        )
        if fresh:
            self.halt()

        def generation() -> int:
            return self._halting.last_halt_id

        def converged() -> bool:
            gen = generation()
            if fresh and gen <= gen0:
                return False  # d's own initiation has not executed yet
            return self._halted_of(gen) >= set(names)

        def settled() -> bool:
            # Converged, except that members whose OS process is gone are
            # excused: a corpse will never notify, so once everyone has
            # either notified for this generation or died there is nothing
            # left to wait for. Survivors still get their full chance —
            # a corpse alone never cuts the wait short.
            gen = generation()
            if fresh and gen <= gen0:
                return False
            halted = self._halted_of(gen)
            return all(n in halted or not self.alive(n) for n in names)

        if self._wait(settled, timeout=timeout) and converged():
            dead = self._probe_dead(names, probe_grace)
            if self.observe is not None:
                self.observe.sync_session(self)
            return PartialHaltReport(
                generation=generation(),
                halted=tuple(n for n in names if n not in dead),
                dead=dead,
                unresolved=(),
                time=time.time(),
                complete=not dead,
            )
        halted = self._halted_of(generation())
        suspects = [n for n in names if n not in halted]
        dead = self._probe_dead(suspects, probe_grace)
        unresolved = tuple(
            n for n in names if n not in halted and n not in dead
        )
        if self.observe is not None:
            self.observe.sync_session(self)
        return PartialHaltReport(
            generation=generation(),
            halted=tuple(sorted(halted)),
            dead=dead,
            unresolved=unresolved,
            time=time.time(),
            complete=False,
        )

    def _probe_dead(self, suspects, probe_grace: float) -> Tuple[ProcessId, ...]:
        """Ping suspects from ``d``; no pong through the grace = dead host."""
        suspects = list(suspects)
        pings: Dict[ProcessId, int] = {}

        def probe() -> None:
            for name in suspects:
                pings[name] = self.agent.send_ping(name)

        self._host.controller.defer(probe, label="watchdog_probe")
        self._wait(
            lambda: len(pings) == len(suspects)
            and all(pid in self.agent.pongs for pid in pings.values()),
            timeout=probe_grace,
        )
        return tuple(
            name for name in suspects if pings.get(name) not in self.agent.pongs
        )

    def run_until_stopped(self, timeout: float = 30.0) -> bool:
        """Wait until a breakpoint-initiated halt covers every process."""
        self.start()
        converged = self._wait(
            lambda: self._halted_of(self._halting.last_halt_id)
            >= set(self.spec.user_names),
            timeout=timeout,
        )
        if converged and self.observe is not None:
            self.observe.sync_session(self)
        return converged

    def resume(self, timeout: float = 10.0, allow_partial: bool = False) -> bool:
        """Resume the halted generation; verified by pongs with
        ``halted=False`` from every resumed process.

        A cluster with dead members (SIGKILL, FaultPlan crash — anything
        whose OS process is gone) cannot resume whole. By default that
        raises :class:`~repro.util.errors.SurvivorsOnlyError` carrying the
        dead list, instead of hanging on control frames a corpse will never
        answer; ``allow_partial=True`` opts into resuming the survivors
        only (the recovery supervisor does this around its checkpoints).
        """
        generation = self._halting.last_halt_id
        dead = tuple(sorted(
            n for n in self.spec.user_names if not self.alive(n)
        ))
        if dead and not allow_partial:
            raise SurvivorsOnlyError(
                f"cannot resume the whole cluster: {list(dead)} are dead; "
                "resume(allow_partial=True) continues the survivors, or "
                "recover the cluster from a checkpoint (repro.recovery)",
                dead=dead,
            )
        targets = sorted(self._halted_of(generation) - set(dead))

        def send_resumes() -> None:
            for name in targets:
                self.agent.send_command(
                    name, ResumeCommand(generation=generation)
                )

        self._host.controller.defer(send_resumes, label="resume")
        resumed: set = set()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if allow_partial:
                # A target can die *mid-resume* (a timed crash racing the
                # resume command). Partial mode treats it like any other
                # corpse — drop it — rather than waiting out the clock
                # for a pong that will never come.
                targets = [n for n in targets if self.alive(n)]
            if set(targets) <= resumed:
                break
            pings: Dict[ProcessId, int] = {}
            remaining = [n for n in targets if n not in resumed]

            def probe(names: List[ProcessId] = remaining) -> None:
                for name in names:
                    pings[name] = self.agent.send_ping(name)

            self._host.controller.defer(probe, label="resume_probe")
            self._wait(
                lambda: len(pings) == len(remaining)
                and all(pid in self.agent.pongs for pid in pings.values()),
                timeout=min(1.0, max(0.05, deadline - time.monotonic())),
            )
            for name, ping_id in pings.items():
                pong = self.agent.pongs.get(ping_id)
                if pong is not None and not pong.halted:
                    resumed.add(name)
        success = set(targets) <= resumed
        if success:
            self._resumed_generations.add(generation)
        return success

    def current_generation(self) -> int:
        """The highest halt generation ``d`` has initiated or observed."""
        return self._halting.last_halt_id

    def halted_names(self) -> List[ProcessId]:
        """Processes frozen at the current generation (empty once it has
        been fully resumed — their old notifications are stale)."""
        generation = self._halting.last_halt_id
        if generation in self._resumed_generations:
            return []
        return sorted(self._halted_of(generation))

    def step(self, process: ProcessId, channel: Optional[str] = None,
             timeout: float = 10.0):
        """Single-step one halted child: exactly one buffered delivery,
        then frozen again. The :class:`StepCommand` and its
        :class:`StepReport` ride the real control sockets; a child with
        nothing to step still answers (``delivered=False``)."""
        if process not in self.spec.user_names:
            raise ReproError(f"unknown process {process!r}")
        holder: List[int] = []

        def request() -> None:
            holder.append(self.agent.send_step(process, channel=channel))

        self._host.controller.defer(request, label="step")
        if not self._wait(lambda: bool(holder), timeout=timeout):
            raise HaltingError("debugger thread did not issue the step")
        step_id = holder[0]
        if not self._wait(
            lambda: step_id in self.agent.step_reports, timeout=timeout
        ):
            raise HaltingError(f"no step report from {process}")
        return self.agent.step_reports[step_id]

    # -- inspection ----------------------------------------------------------

    def inspect(
        self, process: ProcessId, timeout: float = 10.0
    ) -> Dict[str, object]:
        """Protocol-based state fetch over the control channel."""
        holder: List[int] = []

        def request() -> None:
            holder.append(self.agent.request_state(process))

        self._host.controller.defer(request, label="inspect")
        if not self._wait(lambda: bool(holder), timeout=timeout):
            raise HaltingError("debugger thread did not issue the request")
        request_id = holder[0]
        if not self._wait(
            lambda: request_id in self.agent.state_reports, timeout=timeout
        ):
            raise HaltingError(f"no state report from {process}")
        return dict(self.agent.state_reports[request_id].snapshot.state)

    def collect_global_state(
        self,
        timeout: float = 10.0,
        report: Optional[PartialHaltReport] = None,
    ) -> GlobalState:
        """Assemble the consistent global state ``S_h`` from state reports.

        Polls state requests until, for every halted process, every user
        channel from another halted process is *closed* (the same-
        generation marker arrived behind the last user message — Lemma
        2.2's completeness signal), so no in-flight message can be missing
        from the cut. With a partial ``report``, only survivors
        participate; channels touching dead processes are excluded, which
        is exactly the shape :func:`repro.halting.restore.restore` accepts
        for partial restoration.
        """
        generation = self._halting.last_halt_id
        halted = sorted(
            self._halted_of(generation) if report is None
            else report.halted
        )
        if not halted:
            raise HaltingError("no halted processes to collect")
        halted_set = set(halted)

        def wanted_channels(process: ProcessId) -> List[ChannelId]:
            return [
                c for c in self.system.incoming_channels(process)
                if c.src in halted_set
            ]

        deadline = time.monotonic() + timeout
        reports: Dict[ProcessId, Any] = {}
        while True:
            ids: Dict[ProcessId, int] = {}

            def request() -> None:
                for name in halted:
                    ids[name] = self.agent.request_state(name)

            self._host.controller.defer(request, label="collect_state")
            self._wait(
                lambda: len(ids) == len(halted)
                and all(rid in self.agent.state_reports for rid in ids.values()),
                timeout=max(0.05, deadline - time.monotonic()),
            )
            if len(ids) == len(halted) and all(
                rid in self.agent.state_reports for rid in ids.values()
            ):
                reports = {
                    name: self.agent.state_reports[ids[name]] for name in halted
                }
                complete = all(
                    str(channel) in reports[name].closed_channels
                    for name in halted
                    for channel in wanted_channels(name)
                )
                if complete:
                    break
            if time.monotonic() >= deadline:
                raise HaltingError(
                    "global state did not complete within the timeout "
                    "(some channels never saw their closing marker)"
                )
            time.sleep(0.02)

        processes = {name: reports[name].snapshot for name in halted}
        channels: Dict[ChannelId, ChannelState] = {}
        for name in halted:
            rep = reports[name]
            for channel in wanted_channels(name):
                channels[channel] = ChannelState(
                    channel=channel,
                    messages=tuple(rep.pending.get(str(channel), ())),
                    complete=str(channel) in rep.closed_channels,
                )
        order = [
            n.process for n in self.agent.halting_order()
            if n.halt_id == generation
        ]
        return GlobalState(
            origin="halting",
            processes=processes,
            channels=channels,
            generation=generation,
            meta={
                "halt_order": order,
                "clock_frame": list(self.spec.process_order),
            },
        )

    # -- breakpoints ---------------------------------------------------------

    def set_breakpoint(
        self,
        predicate: Union[str, LinkedPredicate, SimplePredicate],
        halt: bool = True,
    ) -> int:
        """Issue a linked predicate (§3.6); markers ride the sockets."""
        lp = (
            parse_predicate(predicate)
            if isinstance(predicate, str)
            else as_linked(predicate)
        )
        unknown = lp.processes() - set(self.spec.process_order)
        if unknown:
            raise PredicateError(
                f"predicate names unknown processes {sorted(unknown)}"
            )
        lp_id = self._next_lp_id
        self._next_lp_id += 1
        self._host.controller.defer(
            lambda: self.agent.issue_predicate(lp, lp_id, halt=halt),
            label="set_breakpoint",
        )
        return lp_id

    def clear_breakpoint(self, lp_id: int) -> None:
        self._cancelled.add(lp_id)

    # -- views ---------------------------------------------------------------

    def halting_order(self) -> List[ProcessId]:
        return [n.process for n in self.agent.halting_order()]

    def halt_paths(self) -> Dict[ProcessId, Tuple[ProcessId, ...]]:
        return {n.process: n.path for n in self.agent.halting_order()}

    def breakpoint_hits(self):
        return list(self.agent.breakpoint_hits)

    def cluster_message_totals(self) -> Dict[str, int]:
        """Messages sent by kind across the whole cluster: ``d``'s own plus
        every child's final stats frame (available after shutdown)."""
        totals = dict(self.system.message_totals())
        with self._lock:
            for stats in self.host_stats.values():
                for kind, count in stats.get("totals", {}).items():
                    totals[kind] = totals.get(kind, 0) + int(count)
        return totals


__all__ = ["DistributedDebugSession"]
