"""One OS process of a distributed run: facade, host, and entry point.

The load-bearing idea of this backend is that
:class:`~repro.runtime.threaded.ThreadedController` — and therefore every
algorithm plugin (halting, snapshots, predicates, debugger client) — talks
to its system only through a narrow facade: clocks, channels, topology
queries, event recording, activity accounting. :class:`HostRuntime`
re-implements exactly that facade over TCP sockets, so the controller and
the agents run *unmodified* inside a child OS process; the paper's
algorithms never learn that their channels became real.

Topology split per host: a host owns live
:class:`~repro.distributed.transport.SocketChannel` objects only for its
*outgoing* channels (a process only ever sends on those); every other
process is a :class:`_PeerStub` carrying just the attributes neighbour
queries read. Incoming channels arrive as accepted connections, each
drained by one reader thread that feeds the controller's mailbox —
one serial reader per connection keeps every channel FIFO end to end.

Run ``python -m repro.distributed.host <spec.json> <name>`` to start one
child (the parent does this via ``subprocess``).
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.debugger.client import DebugClientAgent
from repro.breakpoints.detector import PredicateAgent
from repro.distributed import wire
from repro.distributed.protocol import envelope_from_wire
from repro.distributed.spec import ClusterSpec
from repro.distributed.transport import InboundLink, SocketChannel, dial
from repro.events.clocks import ClockFrame
from repro.events.event import Event
from repro.events.log import EventLog
from repro.faults.injection import injector_for
from repro.halting.algorithm import HaltingAgent
from repro.network.message import MessageKind
from repro.runtime.interfaces import ControlPlugin
from repro.runtime.process import Process
from repro.runtime.threaded import _STOP, ThreadedController
from repro.util.errors import CheckpointError, ReproError, WireError
from repro.util.ids import ChannelId, ProcessId, SequenceGenerator

if False:  # pragma: no cover - typing only
    from repro.observe.integrate import Observability


class _PeerStub:
    """What a host knows about a process it does not run: almost nothing.

    Neighbour queries (``neighbors_out``, ``user_send`` guards) read only
    ``never_halts``; everything else about a remote peer is learned the
    distributed way — from its messages, or from its silence.
    """

    __slots__ = ("name", "never_halts", "crashed", "halted")

    def __init__(self, name: ProcessId, never_halts: bool) -> None:
        self.name = name
        self.never_halts = never_halts
        self.crashed = False
        self.halted = False


class HostRuntime:
    """The system facade one OS process gives its local controller."""

    def __init__(
        self,
        spec: ClusterSpec,
        name: ProcessId,
        process: Process,
        observe: Optional["Observability"] = None,
    ) -> None:
        self.spec = spec
        self.name = name
        self.observe = observe
        self.topology = spec.extended_topology()
        self.seed = spec.seed
        self.time_scale = spec.time_scale
        #: All hosts build the frame from the same spec order, so vector
        #: snapshots are index-compatible across the whole cluster.
        self.clock_frame = ClockFrame(spec.process_order)
        self.log = EventLog()
        self._log_lock = threading.Lock()
        self._event_ids = SequenceGenerator(start=1)
        self._message_seqs = SequenceGenerator(start=1)
        self._activity = 0
        self._activity_lock = threading.Lock()
        self._epoch = time.monotonic()

        never_halt = set(spec.never_halt)
        local = ThreadedController(
            self, name, process, never_halts=name in never_halt
        )
        self.controllers: Dict[ProcessId, ThreadedController] = {name: local}
        self._stubs: Dict[ProcessId, _PeerStub] = {
            other: _PeerStub(other, other in never_halt)
            for other in spec.process_order
            if other != name
        }
        self._out: Dict[ProcessId, List[ChannelId]] = {
            p: [] for p in spec.process_order
        }
        self._in: Dict[ProcessId, List[ChannelId]] = {
            p: [] for p in spec.process_order
        }
        for channel_id in self.topology.channels:
            self._out[channel_id.src].append(channel_id)
            self._in[channel_id.dst].append(channel_id)
        #: Live sender endpoints for this host's outgoing channels.
        self.outgoing: Dict[ChannelId, SocketChannel] = {}
        #: Receiver-side accounting for accepted connections.
        self.inbound: Dict[ChannelId, InboundLink] = {}
        if observe is not None:
            observe.attach_system(self)

    # -- facade surface (what ThreadedController and plugins call) ----------

    @property
    def now(self) -> float:
        return time.monotonic() - self._epoch

    def controller(self, name: ProcessId) -> Any:
        local = self.controllers.get(name)
        if local is not None:
            return local
        return self._stubs[name]

    def channel(self, channel_id: ChannelId) -> Optional[SocketChannel]:
        return self.outgoing.get(channel_id)

    def channels(self) -> List[Any]:
        return list(self.outgoing.values()) + list(self.inbound.values())

    def outgoing_channels(self, process: ProcessId) -> Tuple[ChannelId, ...]:
        return tuple(self._out[process])

    def incoming_channels(self, process: ProcessId) -> Tuple[ChannelId, ...]:
        return tuple(self._in[process])

    def find_path(
        self, src: ProcessId, dst: ProcessId
    ) -> Optional[List[ProcessId]]:
        """BFS over the (static, spec-defined) extended topology."""
        if src == dst:
            return [src]
        frontier = [src]
        parent = {src: src}
        while frontier:
            node = frontier.pop(0)
            for channel_id in self._out[node]:
                nxt = channel_id.dst
                if nxt in parent:
                    continue
                parent[nxt] = node
                if nxt == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                frontier.append(nxt)
        return None

    @property
    def user_process_names(self) -> Tuple[ProcessId, ...]:
        return self.spec.user_names

    def message_totals(self) -> Dict[str, int]:
        """This host's sends by kind (inbound links contribute zero)."""
        totals: Dict[str, int] = {}
        for channel in self.channels():
            for kind, count in channel.sent_by_kind.items():
                totals[kind.value] = totals.get(kind.value, 0) + count
        return totals

    def record_event(self, event_args: Dict) -> Event:
        with self._log_lock:
            event = Event(eid=self._event_ids.next(), **event_args)
            self.log.append(event)
        return event

    def next_message_seq(self) -> int:
        return self._message_seqs.next()

    def note_activity(self, delta: int) -> None:
        with self._activity_lock:
            self._activity += delta

    @property
    def pending_activity(self) -> int:
        with self._activity_lock:
            return self._activity


class ProcessHost:
    """Network plumbing for one OS process: listener, dials, readers.

    Owns the listening socket for this process's port, accepts one
    connection per incoming channel (identified by the peer's ``hello``
    frame), and dials one connection per outgoing channel. Envelope frames
    go into the local controller's mailbox; ``ctl`` frames go to the
    ``on_ctl`` callback (the cluster-membership side band: ready/go/
    shutdown/stats).
    """

    def __init__(
        self,
        spec: ClusterSpec,
        name: ProcessId,
        process: Process,
        observe: Optional["Observability"] = None,
        on_ctl: Optional[Callable[[Dict[str, Any], ChannelId], None]] = None,
        on_peer_lost: Optional[Callable[[ChannelId], None]] = None,
        on_port: Optional[Callable[[Dict[str, Any], socket.socket], None]] = None,
    ) -> None:
        self.spec = spec
        self.name = name
        self.runtime = HostRuntime(spec, name, process, observe=observe)
        self.controller = self.runtime.controllers[name]
        self._on_ctl = on_ctl
        self._on_peer_lost = on_peer_lost
        self._on_port = on_port
        self._plan = spec.faults()
        #: Port this host was planned with; ``0`` obliges it to announce
        #: its real port at the rendezvous.
        self._planned_port = spec.ports.get(name, 0)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conns: List[socket.socket] = []
        self._conn_lock = threading.Lock()
        self._closing = False

    # -- wiring --------------------------------------------------------------

    def bind(self) -> None:
        """Bind this process's listening port and start accepting.

        Planned port ``0`` means "let the OS pick": the real port is read
        back from the socket and written into ``spec.ports`` so the
        rendezvous can announce it — no probe-then-close race.

        Raises ``OSError`` (e.g. ``EADDRINUSE``) to the caller — the CLI
        turns that into a clean exit, not a hang.
        """
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind(("127.0.0.1", self.spec.ports[self.name]))
            listener.listen(len(self.spec.process_order) + 4)
        except OSError:
            listener.close()
            raise
        self.spec.ports[self.name] = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"accept-{self.name}", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closing:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._conn_lock:
                self._conns.append(conn)
            threading.Thread(
                target=self._handshake_and_read, args=(conn,),
                name=f"reader-{self.name}", daemon=True,
            ).start()

    def _handshake_and_read(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(10.0)
            hello = wire.recv_frame(conn)
            conn.settimeout(None)
            if (
                hello.get("frame") == "port"
                and "process" in hello
                and self._on_port is not None
            ):
                # Port rendezvous: a child announces its real listening
                # port. The handler keeps the connection open — the parent
                # replies with the full map once everyone has announced.
                self._on_port(hello, conn)
                return
            if hello.get("frame") != "hello" or "channel" not in hello:
                raise WireError(f"expected hello frame, got {hello!r}")
            channel_id = ChannelId.parse(hello["channel"])
        except Exception:
            conn.close()
            return
        link = InboundLink(channel_id)
        self.runtime.inbound[channel_id] = link
        self._read_loop(conn, channel_id, link)

    def _read_loop(
        self, conn: socket.socket, channel_id: ChannelId, link: InboundLink
    ) -> None:
        """Drain one connection serially — per-channel FIFO is structural."""
        try:
            while True:
                frame = wire.recv_frame(conn)
                kind = frame.get("frame")
                if kind == "env":
                    envelope = envelope_from_wire(frame)
                    link.note_delivered(envelope, self.runtime.now)
                    # Credit transfers to the mailbox item; the controller
                    # main loop releases it after processing.
                    self.runtime.note_activity(+1)
                    self.controller.inbox.put(("env", envelope))
                elif kind == "ctl":
                    if self._on_ctl is not None:
                        self._on_ctl(frame, channel_id)
                else:
                    raise WireError(f"unknown frame type {kind!r}")
        except (WireError, OSError):
            # WireClosed (clean EOF) included: the peer is gone. Under
            # fail-stop that is not an error — it is information.
            pass
        finally:
            conn.close()
            if self._on_peer_lost is not None and not self._closing:
                self._on_peer_lost(channel_id)

    def exchange_ports(self) -> None:
        """Child side of the port rendezvous: announce, then learn the map.

        The planned spec carries port ``0`` for every child; only the
        debugger's port is real by the time the spec file is written (the
        parent binds before spawning). Each child dials that known port,
        announces its own OS-assigned port, and blocks until the parent
        replies with the complete map — so by the time any host dials a
        data channel, every listener is already up.
        """
        if self._planned_port != 0:
            return  # legacy spec with pre-allocated ports: nothing to do
        deadline = time.monotonic() + self.spec.connect_timeout
        sock = dial(
            self.spec.ports[self.spec.debugger], deadline,
            seed=f"{self.spec.seed}|rendezvous|{self.name}",
        )
        try:
            wire.send_frame(sock, {
                "frame": "port",
                "process": self.name,
                "port": self.spec.ports[self.name],
            })
            sock.settimeout(self.spec.connect_timeout + 10.0)
            reply = wire.recv_frame(sock)
            if reply.get("frame") != "ports" or "ports" not in reply:
                raise WireError(f"expected ports frame, got {reply!r}")
            self.spec.ports.update(
                {str(k): int(v) for k, v in reply["ports"].items()}
            )
        finally:
            sock.close()

    def connect_all(self) -> None:
        """Dial one connection per outgoing channel (with startup retry)."""
        deadline = time.monotonic() + self.spec.connect_timeout
        for channel_id in sorted(self.runtime.outgoing_channels(self.name)):
            sock = dial(
                self.spec.ports[channel_id.dst], deadline,
                seed=f"{self.spec.seed}|dial|{channel_id}",
            )
            wire.send_frame(sock, {"frame": "hello", "channel": str(channel_id)})
            injector = (
                injector_for(self._plan, channel_id)
                if self._plan is not None
                else None
            )
            channel = SocketChannel(channel_id, self.runtime, sock, injector)
            self.runtime.outgoing[channel_id] = channel
            if self.runtime.observe is not None:
                self.runtime.observe.wire_channel(channel)

    def send_ctl(self, dst: ProcessId, frame: Dict[str, Any]) -> bool:
        """Send one control-plane frame on the outgoing channel to ``dst``."""
        channel = self.runtime.channel(ChannelId(self.name, dst))
        if channel is None:
            return False
        return channel.send_raw({"frame": "ctl", **frame})

    # -- teardown ------------------------------------------------------------

    def stop_controller(self, timeout: float = 5.0) -> None:
        """Stop the local controller thread (bounded join)."""
        for timer in list(self.controller._timers.values()):
            timer.cancel()
        self.controller.inbox.put(_STOP)
        self.controller.join(timeout)

    def close(self) -> None:
        """Tear down every socket this host owns."""
        self._closing = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for channel in list(self.runtime.outgoing.values()):
            channel.close()
        with self._conn_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass


class _DieAfterEvents(ControlPlugin):
    """Fault plugin: hard-kill this OS process after its N-th local event.

    The distributed analogue of
    :class:`~repro.faults.injection.CrashAfterEvents`: instead of setting a
    ``crashed`` flag, the process genuinely dies (``os._exit``), its sockets
    collapse, and the debugger must discover the death by silence — which is
    exactly what the partial-halt machinery (PR 2) is for.
    """

    kinds: frozenset = frozenset()

    def __init__(self, after_events: int) -> None:
        self.after_events = int(after_events)
        self._count = 0

    def on_local_event(self, event: Event) -> None:
        self._count += 1
        if self._count >= self.after_events:
            os._exit(137)


def restore_from_checkpoint(host: ProcessHost, name: ProcessId) -> None:
    """Restore this child from ``spec.restore_checkpoint`` (Theorem 2,
    distributed): preload the process's own snapshot, then re-send the
    checkpoint's pending messages on this host's outgoing channels.

    Ordering guarantee: restore runs after ``connect_all`` but before the
    ``ready``/``go`` rendezvous completes, and no controller starts until
    ``go`` — so every replayed message is on its TCP stream before any new
    traffic is generated, and per-channel FIFO puts it first in line at the
    receiver. The pending messages of the cut are delivered exactly once,
    ahead of everything the resurrected run produces.
    """
    from repro.recovery.checkpoint import load_checkpoint

    spec = host.spec
    assert spec.restore_checkpoint is not None
    state = load_checkpoint(spec.restore_checkpoint)
    frame = state.meta.get("clock_frame")
    if frame is not None and list(frame) != list(spec.process_order):
        raise CheckpointError(
            f"checkpoint clock frame {list(frame)!r} does not match this "
            f"cluster's process order {list(spec.process_order)!r}"
        )
    snapshot = state.processes.get(name)
    if snapshot is None:
        raise CheckpointError(f"checkpoint has no snapshot for {name!r}")
    host.controller.preload(snapshot)
    for channel_id in sorted(host.runtime.outgoing_channels(name)):
        channel = host.runtime.outgoing.get(channel_id)
        if channel is None:
            continue
        for message in state.pending_on(channel_id):
            channel.send(MessageKind.USER, message)


def install_debug_agents(
    controller: ThreadedController, debugger: ProcessId
) -> Tuple[HaltingAgent, PredicateAgent, DebugClientAgent]:
    """The standard user-process agent stack, same as every other backend."""
    halting = HaltingAgent(controller)
    controller.install(halting)
    client = DebugClientAgent(controller, debugger)
    predicate = PredicateAgent(
        controller,
        on_final=client.notify_breakpoint,
        halt_on_final=True,
        cancelled=set(),
    )
    controller.install(predicate)
    controller.install(client)
    return halting, predicate, client


def child_main(spec_path: str, name: str) -> int:
    """Entry point of one spawned user process."""
    spec = ClusterSpec.read(spec_path)
    if name not in spec.user_names:
        print(f"{name!r} is not a user process of this spec", file=sys.stderr)
        return 2
    process = spec.user_processes()[name]

    go = threading.Event()
    stop = threading.Event()

    def on_ctl(frame: Dict[str, Any], channel_id: ChannelId) -> None:
        op = frame.get("op")
        if op == "go":
            go.set()
        elif op == "shutdown":
            stop.set()

    def on_peer_lost(channel_id: ChannelId) -> None:
        # Orphan protection: losing the debugger's control connection means
        # the parent is gone; a user process without its debugger exits.
        if channel_id.src == spec.debugger:
            stop.set()

    host = ProcessHost(
        spec, name, process, on_ctl=on_ctl, on_peer_lost=on_peer_lost
    )
    try:
        host.bind()
    except OSError as exc:
        print(f"{name}: cannot bind port {spec.ports[name]}: {exc}",
              file=sys.stderr)
        return 2
    try:
        host.exchange_ports()
        host.connect_all()
    except (OSError, WireError) as exc:
        print(f"{name}: cannot reach peers: {exc}", file=sys.stderr)
        host.close()
        return 2

    controller = host.controller
    install_debug_agents(controller, spec.debugger)

    if spec.restore_checkpoint:
        try:
            restore_from_checkpoint(host, name)
        except (ReproError, OSError) as exc:
            print(f"{name}: cannot restore from checkpoint "
                  f"{spec.restore_checkpoint!r}: {exc}", file=sys.stderr)
            host.close()
            return 2

    # Self-inflicted faults from the plan: real process death, real freezes.
    plan = spec.faults()
    staged_timers: List[threading.Timer] = []
    if plan is not None:
        for crash in plan.crashes:
            if crash.process != name:
                continue
            if crash.after_events is not None:
                controller.install(_DieAfterEvents(crash.after_events))
            else:
                staged_timers.append(threading.Timer(
                    float(crash.at_time) * spec.time_scale,
                    lambda: os._exit(137),
                ))
        for stall in plan.stalls:
            if stall.process != name:
                continue
            def fire_stall(duration: float = stall.duration) -> None:
                controller.defer(lambda: controller.stall(duration))
            staged_timers.append(threading.Timer(
                float(stall.at_time) * spec.time_scale, fire_stall,
            ))

    host.send_ctl(spec.debugger, {"op": "ready", "process": name})
    if not go.wait(timeout=spec.connect_timeout + 10.0):
        print(f"{name}: never received go", file=sys.stderr)
        host.close()
        return 1

    host.runtime.note_activity(+1)  # released after on_start, as ever
    controller.start()
    for timer in staged_timers:
        timer.daemon = True
        timer.start()

    stop.wait()
    stats = {
        "op": "stats",
        "process": name,
        "totals": host.runtime.message_totals(),
        "channels": {
            str(c.id): {
                "sent": c.stats.sent,
                "delivered": c.stats.delivered,
                "dropped": c.stats.dropped,
                "frames_dropped": c.stats.frames_dropped,
            }
            for c in host.runtime.channels()
        },
    }
    host.send_ctl(spec.debugger, stats)
    for timer in staged_timers:
        timer.cancel()
    host.stop_controller()
    host.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.distributed.host <spec.json> <name>``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 2:
        print("usage: python -m repro.distributed.host <spec.json> <name>",
              file=sys.stderr)
        return 2
    return child_main(argv[0], argv[1])


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
