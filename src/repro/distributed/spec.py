"""Cluster specifications: one JSON file that describes a whole run.

The parent process plans a distributed run — which workload, which seed,
which port each process listens on, which faults to inject — and writes it
as one :class:`ClusterSpec` JSON file. Every child process is spawned with
nothing but that file's path and its own name; it rebuilds the *same*
topology, clock frame, and ``Process`` objects deterministically from the
spec. Code never crosses the process boundary (no pickling): behaviour
comes from the workload registry, state from the program's own execution.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.api import WORKLOADS
from repro.faults.plan import FaultPlan
from repro.network.topology import Topology
from repro.runtime.process import Process
from repro.util.errors import ConfigurationError
from repro.util.ids import ChannelId, ProcessId
from repro.workloads import infrequent

#: Workloads the distributed backend can host. The core registry plus
#: ``infrequent``, whose DES-only channel latencies are ignored here — a
#: real network brings its own.
DISTRIBUTED_WORKLOADS: Dict[str, Any] = dict(WORKLOADS)
DISTRIBUTED_WORKLOADS["infrequent"] = infrequent.build


def build_user_program(
    workload: str, params: Mapping[str, Any]
) -> Tuple[Topology, Dict[ProcessId, Process]]:
    """Deterministically rebuild ``(topology, processes)`` for a workload.

    Both the parent and every child call this with identical arguments, so
    each side holds behaviour-identical ``Process`` instances.
    """
    try:
        factory = DISTRIBUTED_WORKLOADS[workload]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {workload!r}; available: "
            f"{sorted(DISTRIBUTED_WORKLOADS)}"
        ) from None
    built = factory(**dict(params))
    topology, processes = built[0], built[1]  # 3-tuples carry DES latencies
    return topology, dict(processes)


def free_port() -> int:
    """Ask the OS for a currently free TCP port on the loopback interface.

    Probe-then-bind has an unavoidable race window: another process can
    grab the port between close and re-bind. Cluster planning therefore no
    longer uses this — :meth:`ClusterSpec.plan` writes port ``0`` and every
    host binds an OS-assigned port directly, announcing the real number at
    the rendezvous (see :mod:`repro.distributed.host`). The helper remains
    for callers that genuinely need a one-shot probe.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@dataclass(frozen=True)
class ClusterSpec:
    """Everything a host needs to join one distributed run, as data."""

    #: Workload registry key and its build parameters.
    workload: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    #: Scales workload timer delays to wall seconds, like the threaded
    #: backend's ``time_scale``.
    time_scale: float = 0.02
    #: Name of the debugger process ``d`` (hosted by the parent).
    debugger: ProcessId = "d"
    #: Extended-topology process order — the shared vector-clock frame.
    process_order: Tuple[ProcessId, ...] = ()
    #: Extended-topology channels as ``"src->dst"`` strings.
    channels: Tuple[str, ...] = ()
    #: Processes whose controllers never halt (the debugger).
    never_halt: Tuple[ProcessId, ...] = ()
    #: Listening TCP port (loopback) per process. ``0`` means "bind an
    #: OS-assigned port and announce it at the rendezvous"; the dict's
    #: contents are updated in place once real ports are known (the spec
    #: is frozen but its ``ports`` mapping is deliberately mutable).
    ports: Dict[ProcessId, int] = field(default_factory=dict)
    #: Optional :class:`~repro.faults.plan.FaultPlan` as a dict.
    fault_plan: Optional[Dict[str, Any]] = None
    #: Seconds a host keeps redialing peers before giving up on startup.
    connect_timeout: float = 15.0
    #: Path to a checkpoint artifact (see
    #: :class:`repro.recovery.checkpoint.CheckpointStore`). When set, every
    #: child preloads its own snapshot from the checkpoint before starting
    #: and re-sends the checkpoint's pending messages on its outgoing
    #: channels — the restoration half of Theorem 2, distributed.
    restore_checkpoint: Optional[str] = None

    @classmethod
    def plan(
        cls,
        workload: str,
        params: Optional[Mapping[str, Any]] = None,
        seed: int = 0,
        time_scale: float = 0.02,
        debugger: ProcessId = "d",
        fault_plan: Optional[FaultPlan] = None,
    ) -> "ClusterSpec":
        """Plan a run: build the extended topology and assign ports.

        Every port is planned as ``0``: each host binds an OS-assigned
        loopback port and the cluster exchanges real numbers at the
        rendezvous, so there is no probe-then-close race window.
        """
        params = dict(params or {})
        topology, _ = build_user_program(workload, params)
        if debugger in topology.processes:
            raise ConfigurationError(
                f"user topology already contains {debugger!r}"
            )
        extended = topology.with_debugger(debugger)
        return cls(
            workload=workload,
            params=params,
            seed=seed,
            time_scale=time_scale,
            debugger=debugger,
            process_order=extended.processes,
            channels=tuple(str(c) for c in extended.channels),
            never_halt=(debugger,),
            ports={name: 0 for name in extended.processes},
            fault_plan=fault_plan.to_dict() if fault_plan is not None else None,
        )

    # -- derived views ------------------------------------------------------

    def extended_topology(self) -> Topology:
        """The §2.2.3 extended topology, rebuilt from the explicit lists."""
        topo = Topology()
        for name in self.process_order:
            topo.add_process(name)
        for text in self.channels:
            channel = ChannelId.parse(text)
            topo.add_channel(channel.src, channel.dst)
        return topo

    def user_processes(self) -> Dict[ProcessId, Process]:
        """Fresh ``Process`` instances for every user process."""
        _, processes = build_user_program(self.workload, self.params)
        return processes

    @property
    def user_names(self) -> Tuple[ProcessId, ...]:
        return tuple(
            n for n in self.process_order if n not in set(self.never_halt)
        )

    def faults(self) -> Optional[FaultPlan]:
        if self.fault_plan is None:
            return None
        return FaultPlan.from_dict(self.fault_plan)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "params": dict(self.params),
            "seed": self.seed,
            "time_scale": self.time_scale,
            "debugger": self.debugger,
            "process_order": list(self.process_order),
            "channels": list(self.channels),
            "never_halt": list(self.never_halt),
            "ports": dict(self.ports),
            "fault_plan": self.fault_plan,
            "connect_timeout": self.connect_timeout,
            "restore_checkpoint": self.restore_checkpoint,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterSpec":
        try:
            return cls(
                workload=str(data["workload"]),
                params=dict(data.get("params", {})),
                seed=int(data.get("seed", 0)),
                time_scale=float(data.get("time_scale", 0.02)),
                debugger=str(data.get("debugger", "d")),
                process_order=tuple(data["process_order"]),
                channels=tuple(data["channels"]),
                never_halt=tuple(data.get("never_halt", ())),
                ports={str(k): int(v) for k, v in dict(data["ports"]).items()},
                fault_plan=data.get("fault_plan"),
                connect_timeout=float(data.get("connect_timeout", 15.0)),
                restore_checkpoint=data.get("restore_checkpoint"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed cluster spec: {exc}") from exc

    def write(self, path: str) -> None:
        """Write the spec as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fp:
            json.dump(self.to_dict(), fp, indent=2, sort_keys=True)

    @classmethod
    def read(cls, path: str) -> "ClusterSpec":
        """Load a spec previously written with :meth:`write`."""
        with open(path, "r", encoding="utf-8") as fp:
            return cls.from_dict(json.load(fp))


__all__ = [
    "ClusterSpec",
    "DISTRIBUTED_WORKLOADS",
    "build_user_program",
    "free_port",
]
