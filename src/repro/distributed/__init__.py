"""The distributed backend: real OS processes, real TCP sockets.

The paper's extended model (§2.2.3) is a debugger process ``d`` with a
control channel to and from every user process. The DES backend simulates
that; the threaded backend runs it on OS threads inside one interpreter;
this package makes it literal:

* every user process is a separate OS process (spawned via ``subprocess``,
  entry point :mod:`repro.distributed.host`);
* every channel of the extended topology — user channels *and* ``d``'s
  control channels — is one TCP connection carrying length-prefixed JSON
  frames (:mod:`repro.distributed.wire`, :mod:`repro.distributed.protocol`);
* the debugger process ``d`` lives in the parent as
  :class:`~repro.distributed.session.DistributedDebugSession`, which can
  initiate the Halting Algorithm, collect the consistent global state over
  state-report commands, and resume — the same agents
  (:class:`~repro.halting.algorithm.HaltingAgent`,
  :class:`~repro.breakpoints.detector.PredicateAgent`,
  :class:`~repro.debugger.client.DebugClientAgent`) running unmodified
  inside each child, because each child hosts a stock
  :class:`~repro.runtime.threaded.ThreadedController` over a socket-backed
  system facade (:mod:`repro.distributed.host`).

Fault injection happens where real networks fail — at the socket framing
layer (loss/duplication/delay of frames) and at the process boundary
(``SIGKILL``-grade crashes feeding the partial-halt path).
"""

__all__ = ["DistributedDebugSession"]


def __getattr__(name: str):
    """Lazy export: children run ``python -m repro.distributed.host``, and
    importing the session (hence the host module) at package-import time
    would shadow runpy's execution of that same module."""
    if name == "DistributedDebugSession":
        from repro.distributed.session import DistributedDebugSession

        return DistributedDebugSession
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
