"""Fault plans: seeded, serializable descriptions of what goes wrong.

The paper assumes channels are "error-free and deliver messages in the
order sent" (§2.1) and that processes live forever. A :class:`FaultPlan`
deliberately violates those assumptions in a *reproducible* way: it is a
pure-data description of per-channel loss/duplication/reorder rates and
per-process crash/stall schedules, plus a seed. Two systems built from
equal plans inject identical faults, so a failure found under faults can
be replayed exactly — the same property the latency seeds already give
the fault-free simulator.

The plan is data; the behaviour lives in
:mod:`repro.faults.injection`, which turns one plan into per-channel
:class:`~repro.faults.injection.ChannelFaultInjector` objects shared by
the DES and threaded backends.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.util.errors import FaultError
from repro.util.ids import ChannelId, ProcessId


def _require_probability(value: float, name: str) -> float:
    if not isinstance(value, (int, float)) or not 0.0 <= float(value) <= 1.0:
        raise FaultError(f"{name} must be a probability in [0, 1], got {value!r}")
    return float(value)


@dataclass(frozen=True)
class ChannelFaultSpec:
    """What one directed channel does to the frames it carries.

    ``loss``/``duplicate``/``reorder`` are per-frame probabilities;
    ``ack_loss`` applies to the reliable layer's acknowledgement frames
    travelling the reverse direction of the same link (``None`` = same as
    ``loss``). ``reorder_delay`` bounds the extra delay a reordered frame
    suffers — reordering is bounded, not arbitrary, so retransmission
    timeouts stay meaningful.
    """

    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_delay: Tuple[float, float] = (0.5, 3.0)
    ack_loss: Optional[float] = None

    def __post_init__(self) -> None:
        _require_probability(self.loss, "loss")
        _require_probability(self.duplicate, "duplicate")
        _require_probability(self.reorder, "reorder")
        if self.ack_loss is not None:
            _require_probability(self.ack_loss, "ack_loss")
        low, high = self.reorder_delay
        if low < 0 or high < low:
            raise FaultError(
                f"reorder_delay must be 0 <= low <= high, got {self.reorder_delay!r}"
            )

    @property
    def effective_ack_loss(self) -> float:
        return self.loss if self.ack_loss is None else self.ack_loss

    @property
    def is_noop(self) -> bool:
        return (
            self.loss == 0.0
            and self.duplicate == 0.0
            and self.reorder == 0.0
            and self.effective_ack_loss == 0.0
        )


@dataclass(frozen=True)
class CrashSpec:
    """Kill one process: at a virtual time, or after its N-th local event.

    Exactly one of ``at_time``/``after_events`` must be given. A crashed
    process executes nothing ever again and acknowledges nothing — its
    host is gone, not just its user code.
    """

    process: ProcessId
    at_time: Optional[float] = None
    after_events: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.at_time is None) == (self.after_events is None):
            raise FaultError(
                f"crash of {self.process!r}: give exactly one of "
                "at_time / after_events"
            )
        if self.at_time is not None and self.at_time < 0:
            raise FaultError(f"crash at_time must be >= 0, got {self.at_time!r}")
        if self.after_events is not None and self.after_events < 1:
            raise FaultError(
                f"crash after_events must be >= 1, got {self.after_events!r}"
            )


@dataclass(frozen=True)
class StallSpec:
    """Freeze one process for a window of (virtual) time — a long GC pause:
    nothing is processed during the window, everything is afterwards."""

    process: ProcessId
    at_time: float
    duration: float

    def __post_init__(self) -> None:
        if self.at_time < 0:
            raise FaultError(f"stall at_time must be >= 0, got {self.at_time!r}")
        if self.duration <= 0:
            raise FaultError(f"stall duration must be > 0, got {self.duration!r}")


@dataclass(frozen=True)
class PartitionSpec:
    """Sever a set of directed links for a window of (virtual) time.

    During ``[at_time, at_time + duration)`` every frame offered to a
    listed channel is dropped — data and debugger control alike, because a
    partition cuts the wire, not a traffic class. Channels are named like
    ``FaultPlan.channels`` keys (``"p0->p1"``). A partition is directional:
    sever both directions of a link by listing both channel ids.
    """

    channels: Tuple[str, ...]
    at_time: float
    duration: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "channels", tuple(self.channels))
        if not self.channels:
            raise FaultError("partition must name at least one channel")
        for name in self.channels:
            try:
                ChannelId.parse(name)
            except ValueError as exc:
                raise FaultError(
                    f"partition names a malformed channel {name!r}: {exc}"
                ) from exc
        if self.at_time < 0:
            raise FaultError(
                f"partition at_time must be >= 0, got {self.at_time!r}"
            )
        if self.duration <= 0:
            raise FaultError(
                f"partition duration must be > 0, got {self.duration!r}"
            )

    @property
    def end_time(self) -> float:
        return self.at_time + self.duration

    def covers(self, channel_id: ChannelId) -> bool:
        return str(channel_id) in self.channels


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong in one execution, as data.

    ``channel_defaults`` applies to every channel not named in
    ``channels`` (keys are ``str(ChannelId)``, e.g. ``"p0->p1"``).
    ``seed`` feeds every injector RNG stream, so the plan fully determines
    the fault pattern given the same traffic.
    """

    seed: int = 0
    channel_defaults: ChannelFaultSpec = field(default_factory=ChannelFaultSpec)
    channels: Mapping[str, ChannelFaultSpec] = field(default_factory=dict)
    crashes: Tuple[CrashSpec, ...] = ()
    stalls: Tuple[StallSpec, ...] = ()
    partitions: Tuple[PartitionSpec, ...] = ()

    def __post_init__(self) -> None:
        # Normalise containers so equal plans compare equal after a
        # round-trip through JSON.
        object.__setattr__(self, "channels", dict(self.channels))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stalls", tuple(self.stalls))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        crashed = [c.process for c in self.crashes]
        if len(set(crashed)) != len(crashed):
            raise FaultError(f"duplicate crash specs for {crashed!r}")

    # -- construction helpers -------------------------------------------------

    @classmethod
    def lossy(cls, loss: float, seed: int = 0, **spec_kwargs: object) -> "FaultPlan":
        """Uniform loss on every channel — the most common test plan."""
        return cls(
            seed=seed,
            channel_defaults=ChannelFaultSpec(loss=loss, **spec_kwargs),  # type: ignore[arg-type]
        )

    def with_crash(self, process: ProcessId, at_time: Optional[float] = None,
                   after_events: Optional[int] = None) -> "FaultPlan":
        spec = CrashSpec(process=process, at_time=at_time, after_events=after_events)
        return replace(self, crashes=self.crashes + (spec,))

    def with_stall(self, process: ProcessId, at_time: float,
                   duration: float) -> "FaultPlan":
        spec = StallSpec(process=process, at_time=at_time, duration=duration)
        return replace(self, stalls=self.stalls + (spec,))

    def with_partition(self, channels, at_time: float,
                       duration: float) -> "FaultPlan":
        spec = PartitionSpec(
            channels=tuple(channels), at_time=at_time, duration=duration
        )
        return replace(self, partitions=self.partitions + (spec,))

    def spec_for(self, channel_id: ChannelId) -> ChannelFaultSpec:
        return self.channels.get(str(channel_id), self.channel_defaults)

    def partition_windows(self, channel_id: ChannelId) -> Tuple[Tuple[float, float], ...]:
        """The (start, end) windows during which ``channel_id`` is severed."""
        return tuple(
            (p.at_time, p.end_time)
            for p in self.partitions
            if p.covers(channel_id)
        )

    def crashed_processes(self) -> Tuple[ProcessId, ...]:
        return tuple(c.process for c in self.crashes)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "channel_defaults": _spec_dict(self.channel_defaults),
            "channels": {
                key: _spec_dict(spec) for key, spec in sorted(self.channels.items())
            },
            "crashes": [asdict(c) for c in self.crashes],
            "stalls": [asdict(s) for s in self.stalls],
            "partitions": [
                {
                    "channels": list(p.channels),
                    "at_time": p.at_time,
                    "duration": p.duration,
                }
                for p in self.partitions
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultPlan":
        try:
            return cls(
                seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
                channel_defaults=_spec_from(data.get("channel_defaults", {})),
                channels={
                    str(key): _spec_from(value)
                    for key, value in dict(data.get("channels", {})).items()  # type: ignore[arg-type]
                },
                crashes=tuple(
                    CrashSpec(**dict(c)) for c in data.get("crashes", ())  # type: ignore[union-attr]
                ),
                stalls=tuple(
                    StallSpec(**dict(s)) for s in data.get("stalls", ())  # type: ignore[union-attr]
                ),
                partitions=tuple(
                    PartitionSpec(
                        channels=tuple(dict(p)["channels"]),
                        at_time=dict(p)["at_time"],
                        duration=dict(p)["duration"],
                    )
                    for p in data.get("partitions", ())  # type: ignore[union-attr]
                ),
            )
        except (TypeError, KeyError, ValueError) as exc:
            raise FaultError(f"malformed fault plan data: {exc}") from exc

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        import json

        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FaultError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


def _spec_dict(spec: ChannelFaultSpec) -> Dict[str, object]:
    return {
        "loss": spec.loss,
        "duplicate": spec.duplicate,
        "reorder": spec.reorder,
        "reorder_delay": list(spec.reorder_delay),
        "ack_loss": spec.ack_loss,
    }


def _spec_from(data: object) -> ChannelFaultSpec:
    if isinstance(data, ChannelFaultSpec):
        return data
    if not isinstance(data, Mapping):
        raise FaultError(f"channel fault spec must be a mapping, got {data!r}")
    fields = dict(data)
    delay = fields.get("reorder_delay")
    if delay is not None:
        fields["reorder_delay"] = tuple(delay)  # type: ignore[arg-type]
    return ChannelFaultSpec(**fields)  # type: ignore[arg-type]


__all__ = [
    "ChannelFaultSpec",
    "CrashSpec",
    "StallSpec",
    "PartitionSpec",
    "FaultPlan",
]
