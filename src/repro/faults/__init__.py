"""Fault injection: earn §2.1's channel guarantees instead of assuming them.

The paper's model — error-free FIFO channels, immortal processes — is an
*assumption* in the original and was a hard-coded property of this
reproduction's network layer. This package makes the assumption a test
subject: :class:`FaultPlan` describes (seeded, serializable) per-channel
loss/duplication/reorder and per-process crash/stall schedules, and
:mod:`repro.faults.injection` drives them identically through the DES and
threaded backends. The reliable-delivery layer
(:mod:`repro.network.reliable`) then re-establishes FIFO-exactly-once
semantics on top of the faulty wire, so every algorithm in the repo runs
unchanged over unreliable infrastructure.
"""

from repro.faults.injection import ChannelFaultInjector, CrashAfterEvents, injector_for
from repro.faults.plan import (
    ChannelFaultSpec,
    CrashSpec,
    FaultPlan,
    PartitionSpec,
    StallSpec,
)

__all__ = [
    "ChannelFaultInjector",
    "ChannelFaultSpec",
    "CrashAfterEvents",
    "CrashSpec",
    "FaultPlan",
    "PartitionSpec",
    "StallSpec",
    "injector_for",
]
