"""Turning one :class:`~repro.faults.plan.FaultPlan` into live injectors.

One :class:`ChannelFaultInjector` sits on each directed channel and
answers, per frame: drop it? duplicate it? delay it out of order? Every
answer draws from its own seeded RNG stream, split by decision *and* by
traffic class (user vs control):

* splitting by decision means enabling duplication does not perturb which
  frames are lost;
* splitting by traffic class means injecting debugging-system traffic
  (markers, acks for markers) does not perturb which *user* frames are
  lost — the fault-injection analogue of the two latency streams in
  :class:`~repro.network.channel.Channel`, and what keeps experiment E2's
  paired runs comparable under loss.

The injector is backend-neutral: the DES channel and the threaded channel
consume the same object.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable

from repro.faults.plan import ChannelFaultSpec, FaultPlan
from repro.util.ids import ChannelId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.events.event import Event


class ChannelFaultInjector:
    """Per-channel, per-frame fault decisions with deterministic streams."""

    __slots__ = (
        "channel",
        "spec",
        "partition_windows",
        "_loss_rng",
        "_dup_rng",
        "_reorder_rng",
        "_ack_rng",
    )

    def __init__(self, channel_id: ChannelId, spec: ChannelFaultSpec, seed: int,
                 partition_windows: tuple = ()) -> None:
        self.channel = channel_id
        self.spec = spec
        #: (start, end) windows of virtual time during which the link is
        #: severed — every frame offered is dropped, no RNG involved.
        self.partition_windows = tuple(partition_windows)
        # One independent stream per (decision, traffic class). Streams are
        # keyed by strings so the same plan yields the same faults on both
        # backends regardless of construction order.
        self._loss_rng = {
            cls: random.Random(f"{seed}|fault|{channel_id}|loss|{cls}")
            for cls in ("user", "control")
        }
        self._dup_rng = {
            cls: random.Random(f"{seed}|fault|{channel_id}|dup|{cls}")
            for cls in ("user", "control")
        }
        self._reorder_rng = {
            cls: random.Random(f"{seed}|fault|{channel_id}|reorder|{cls}")
            for cls in ("user", "control")
        }
        self._ack_rng = {
            cls: random.Random(f"{seed}|fault|{channel_id}|ack|{cls}")
            for cls in ("user", "control")
        }

    @staticmethod
    def _cls(is_user: bool) -> str:
        return "user" if is_user else "control"

    def drop_frame(self, is_user: bool) -> bool:
        """Should this data frame vanish on the wire?"""
        if self.spec.loss <= 0.0:
            return False
        return self._loss_rng[self._cls(is_user)].random() < self.spec.loss

    def drop_ack(self, is_user: bool) -> bool:
        """Should the acknowledgement for this frame vanish?"""
        p = self.spec.effective_ack_loss
        if p <= 0.0:
            return False
        return self._ack_rng[self._cls(is_user)].random() < p

    def duplicates(self, is_user: bool) -> int:
        """Extra copies of this frame the wire spontaneously creates."""
        if self.spec.duplicate <= 0.0:
            return 0
        copies = 0
        rng = self._dup_rng[self._cls(is_user)]
        # Geometric: each copy may itself be duplicated, capped defensively.
        while copies < 4 and rng.random() < self.spec.duplicate:
            copies += 1
        return copies

    def extra_delay(self, is_user: bool) -> float:
        """Bounded extra delay (0.0 = deliver in order)."""
        if self.spec.reorder <= 0.0:
            return 0.0
        rng = self._reorder_rng[self._cls(is_user)]
        if rng.random() >= self.spec.reorder:
            return 0.0
        low, high = self.spec.reorder_delay
        return rng.uniform(low, high)

    def partitioned(self, virtual_now: float) -> bool:
        """Is the link severed at this virtual time?

        A partitioned link drops *everything* — user frames, markers,
        debugger control — because the fault cuts the wire, not a traffic
        class. Deterministic: no RNG stream is consumed, so enabling a
        partition does not perturb which frames probabilistic loss eats.
        """
        for start, end in self.partition_windows:
            if start <= virtual_now < end:
                return True
        return False

    @property
    def is_noop(self) -> bool:
        return self.spec.is_noop and not self.partition_windows


def injector_for(plan: FaultPlan, channel_id: ChannelId) -> ChannelFaultInjector:
    """The injector one channel should use under ``plan``."""
    return ChannelFaultInjector(
        channel_id,
        plan.spec_for(channel_id),
        plan.seed,
        partition_windows=plan.partition_windows(channel_id),
    )


class CrashAfterEvents:
    """Control plugin that crashes its process after its N-th local event.

    Implements :class:`~repro.faults.plan.CrashSpec.after_events` on both
    backends: the crash is deferred to the boundary between two handler
    steps (via ``controller.defer``), so a process never dies mid-handler —
    matching the paper's notion of a process "instant".
    """

    kinds: frozenset = frozenset()

    def __init__(self, nth_event: int) -> None:
        self.nth_event = nth_event
        self.fired = False

    def attach(self, controller: object) -> None:
        self.controller = controller

    def on_local_event(self, event: "Event") -> None:
        if self.fired or event.local_seq < self.nth_event:
            return
        self.fired = True
        self.controller.defer(self.controller.crash, label="crash")

    # Remaining ControlPlugin hooks: no-ops.
    def on_control(self, envelope: object) -> None:  # pragma: no cover
        pass

    def on_user_delivered(self, envelope: object, event: object) -> None:
        pass

    def on_halted(self) -> None:
        pass

    def on_resumed(self) -> None:
        pass


__all__ = ["ChannelFaultInjector", "CrashAfterEvents", "injector_for"]
