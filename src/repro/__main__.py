"""``python -m repro`` — launch the interactive debugger on a workload.

Usage::

    python -m repro                       # bank, default parameters
    python -m repro token_ring n=5 max_hops=100
    python -m repro two_phase_commit n=3 rounds=5 silent_voter=part2 silent_round=3
    python -m repro --list                # show available workloads

Distributed backend (real OS processes over TCP sockets)::

    python -m repro serve token_ring n=4 port=7070   # host a cluster
    python -m repro attach 7070 status               # poke it
    python -m repro attach 7070 halt
    python -m repro attach 7070 shutdown

Interactive debug control plane (long-lived sessions, deferred breakpoints)::

    python -m repro serve token_ring n=4 port=0 debug_port=0   # + debug server
    python -m repro serve token_ring n=4 port=0 debug_port=0 hold=true
    python -m repro debug 7071 status                # one session, one command
    python -m repro debug 7071 break-set predicate='enter(recv)@p1' -- wait-halt
    python -m repro debug 7071 --script session.txt  # scripted session

Schedule-exploration checker (model-check the theorems over interleavings)::

    python -m repro check --budget 500               # explore all scenarios
    python -m repro check --budget 2000 -j 4         # 4 worker processes
    python -m repro check --mutate late-halt         # must find a violation
    python -m repro check --replay artifact.json     # re-run a counterexample

Record/replay bridge (capture a live run, re-debug it in the DES)::

    python -m repro record token_ring n=3 --out trace.json
    python -m repro check --from-trace trace.json --radius 2

Chaos campaigns (crash + partition + checkpoint/restart recovery)::

    python -m repro chaos                            # canonical token ring
    python -m repro chaos seed=7 json=report.json    # reproducible report

Parameters are ``key=value`` pairs forwarded to the workload's ``build``;
values are parsed as int → float → string. The session opens the
:class:`~repro.debugger.cli.DebuggerCLI` REPL.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List

from repro.core.api import WORKLOADS, attach_debugger, build_workload
from repro.debugger.cli import DebuggerCLI
from repro.observe import Observability


def parse_value(text: str) -> Any:
    for parser in (int, float):
        try:
            return parser(text)
        except ValueError:
            continue
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    return text


def parse_args(argv: List[str]):
    """Returns (workload_name, params, seed) or raises SystemExit."""
    if "--list" in argv or "-l" in argv:
        print("available workloads:")
        for name in sorted(WORKLOADS):
            print(f"  {name}")
        raise SystemExit(0)
    if "--help" in argv or "-h" in argv:
        print(__doc__)
        raise SystemExit(0)
    name = argv[0] if argv else "bank"
    if name not in WORKLOADS:
        print(f"unknown workload {name!r}; try --list", file=sys.stderr)
        raise SystemExit(2)
    params: Dict[str, Any] = {}
    seed = 0
    for arg in argv[1:]:
        key, sep, value = arg.partition("=")
        if not sep:
            print(f"arguments must be key=value, got {arg!r}", file=sys.stderr)
            raise SystemExit(2)
        if key == "seed":
            seed = int(value)
        else:
            params[key] = parse_value(value)
    return name, params, seed


def main(argv: List[str] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "serve":
        from repro.distributed.control import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "attach":
        from repro.distributed.control import attach_main

        return attach_main(argv[1:])
    if argv and argv[0] == "debug":
        from repro.debugger.remote import debug_main

        return debug_main(argv[1:])
    if argv and argv[0] == "check":
        from repro.check.cli import check_main

        return check_main(argv[1:])
    if argv and argv[0] == "record":
        from repro.record.cli import record_main

        return record_main(argv[1:])
    if argv and argv[0] == "chaos":
        from repro.recovery.chaos import chaos_main

        return chaos_main(argv[1:])
    name, params, seed = parse_args(argv)
    built = build_workload(name, **params)
    # Workloads returning (topo, processes, channel_latencies):
    # The interactive shell always carries the observability layer: it is
    # pull-based (zero hot-path cost) and powers metrics/trace/narrative.
    if len(built) == 3:
        topology, processes, latencies = built
        session = attach_debugger(topology, processes, seed=seed,
                                  channel_latencies=latencies,
                                  observe=Observability())
    else:
        topology, processes = built
        session = attach_debugger(topology, processes, seed=seed,
                                  observe=Observability())
    print(f"workload: {name} {params or ''} seed={seed}")
    print(f"processes: {', '.join(session.system.user_process_names)}")
    DebuggerCLI(session).repl()
    return 0


if __name__ == "__main__":  # pragma: no cover - console entry
    raise SystemExit(main())
