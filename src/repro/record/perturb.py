"""Explore the neighborhood of a recorded schedule for near-miss bugs.

A faithful replay proves the recorded run held its invariants; the more
interesting question is whether runs *near* it do. The recorded decision
list is a point in schedule space, and this module searches a bounded
neighborhood around it:

* **Swap-distance DFS**: breadth-first over adjacent-transposition
  variants of the base schedule, up to ``radius`` swaps away. Each swap
  exchanges two neighbouring decisions — delivering this frame *before*
  that one — which is exactly the reordering freedom the live network
  had but did not exercise.
* **Seeded biased walks**: :class:`~repro.check.scheduler.
  BiasedWalkStrategy` runs that follow the base schedule with high
  probability and wander uniformly otherwise, covering variations a
  fixed swap distance misses (different enabled sets open different
  branches once a swap lands).

Every variant runs through the ordinary checker path (the resident
:class:`~repro.check.engine.ExplorationEngine`, judged exactly as
:func:`~repro.check.runner.run_schedule` judges), so a hit is an ordinary
violation: ddmin-minimizable, artifact-serializable, replayable. The
deviation from the trace *is* the counterexample.

The candidate list — base replay, swap variants, walk seeds — is a pure
function of ``(base, radius, budget, seed)``: no execution result changes
*which* schedules are tried, only where the sweep stops. That is what
makes the sweep shardable: ``jobs > 1`` computes the same list up front,
leases contiguous blocks to worker processes (each worker rebuilds the
trace scenario from ``trace_path`` and keeps its world resident across
the lease stream), and truncates the merged results at the first
violating candidate — the same stop the sequential sweep makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.check.runner import Scenario, ScheduleResult, run_schedule
from repro.check.scheduler import ScriptedStrategy
from repro.halting.algorithm import HaltingAgent


@dataclass
class PerturbationReport:
    """What one bounded neighborhood campaign found."""

    scenario: str
    base_decisions: Tuple[str, ...]
    #: Worker processes the sweep ran on.
    jobs: int = 1
    #: Schedules executed (base replay included).
    schedules_run: int = 0
    #: Runs that exhausted the step budget (unjudgeable, not failures).
    inconclusive: int = 0
    #: The first violating run, or None.
    violation: Optional[ScheduleResult] = None
    #: Which phase found it: ``"base"`` | ``"swap"`` | ``"walk"``.
    found_by: Optional[str] = None
    #: Swap distance from the base schedule (swap phase only).
    distance: int = 0
    #: The violating decision list (minimize with
    #: :func:`~repro.check.minimize.minimize_schedule`).
    decisions: List[str] = field(default_factory=list)

    @property
    def found(self) -> bool:
        """True when some neighbour of the trace violated an invariant."""
        return self.violation is not None

    def summary(self) -> str:
        """One line for the CLI."""
        if self.found:
            assert self.violation is not None
            names = sorted(
                v.invariant for v in self.violation.violations
            )
            return (
                f"{self.scenario}: VIOLATION via {self.found_by} "
                f"(distance {self.distance}) after {self.schedules_run} "
                f"schedule(s): {', '.join(names)}"
            )
        return (
            f"{self.scenario}: no violation within the explored "
            f"neighborhood ({self.schedules_run} schedule(s), "
            f"{self.inconclusive} inconclusive)"
        )


def _swap_neighbors(
    decisions: Tuple[str, ...]
) -> List[Tuple[str, ...]]:
    """Every adjacent-transposition variant (skipping no-op swaps)."""
    variants = []
    for i in range(len(decisions) - 1):
        if decisions[i] == decisions[i + 1]:
            continue
        swapped = list(decisions)
        swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
        variants.append(tuple(swapped))
    return variants


@dataclass(frozen=True)
class _Candidate:
    """One planned schedule: what to run and how to attribute a hit."""

    #: ``"script"`` (exact decision list in ``payload``) or ``"biased"``
    #: (walk seed string in ``payload``, base schedule followed with
    #: ``walk_bias``).
    kind: str
    payload: object
    phase: str
    distance: int


def _candidate_plan(
    base: Tuple[str, ...], radius: int, budget: int, seed: int
) -> List[_Candidate]:
    """The sweep's full schedule list, in canonical order.

    Purely syntactic — no schedule is executed — so the plan is identical
    however the sweep is later sharded. Phases mirror the sequential
    search exactly: (1) the base replay; (2) breadth-first swap-distance
    variants out to ``radius``, deduplicated and capped at half the
    budget (the distance-2 frontier alone is quadratic in the schedule
    length and must not starve the walks — note the variant that trips
    the cap is recorded as seen but neither run nor expanded, matching
    the sequential loop's break); (3) seeded biased-walk seeds for the
    remaining budget.
    """
    candidates = [_Candidate("script", base, "base", 0)]
    swap_budget = max(1, budget // 2)
    seen = {base}
    frontier: List[Tuple[str, ...]] = [base]
    exhausted = False
    for distance in range(1, radius + 1):
        if exhausted:
            break
        next_frontier: List[Tuple[str, ...]] = []
        for schedule in frontier:
            if exhausted:
                break
            for variant in _swap_neighbors(schedule):
                if variant in seen:
                    continue
                seen.add(variant)
                if len(candidates) >= swap_budget:
                    exhausted = True
                    break
                candidates.append(
                    _Candidate("script", variant, "swap", distance)
                )
                next_frontier.append(variant)
        frontier = next_frontier
    walk = 0
    while len(candidates) < budget:
        candidates.append(_Candidate(
            "biased", f"{seed}|trace-walk|{walk}", "walk", walk + 1
        ))
        walk += 1
    return candidates


def explore_from_trace(
    scenario: Scenario,
    base_decisions: List[str],
    radius: int = 2,
    budget: int = 100,
    seed: int = 0,
    agent_factory: Optional[Callable[..., HaltingAgent]] = None,
    walk_bias: float = 0.85,
    jobs: int = 1,
    trace_path: Optional[str] = None,
    mutation: Optional[str] = None,
) -> PerturbationReport:
    """Search up to ``budget`` schedules around ``base_decisions``.

    The candidate plan (see :func:`_candidate_plan`) runs in order on
    resident engine workers — ``jobs`` processes, each rebuilding the
    trace scenario from ``trace_path`` (required when ``jobs > 1``; the
    live ``scenario`` object cannot cross a process boundary) — and the
    merged results are truncated at the first violation, so any worker
    count yields the sequential sweep's exact report for a fixed seed.
    ``mutation`` names a :data:`~repro.check.mutations.MUTATIONS` entry
    for workers to rebuild; ``agent_factory`` is the in-process
    equivalent (``jobs == 1`` only).
    """
    from repro.check.mutations import MUTATIONS
    from repro.check import parallel as par

    if mutation is not None and agent_factory is None:
        agent_factory = MUTATIONS[mutation]
    if jobs > 1:
        if trace_path is None:
            raise ValueError(
                "jobs > 1 needs trace_path= (workers rebuild the trace "
                "scenario from the recorded artifact file)"
            )
        if agent_factory is not None and mutation is None:
            raise ValueError(
                "a raw agent_factory cannot cross the worker boundary; "
                "pass mutation=<name> instead for jobs > 1"
            )
    base = tuple(base_decisions)
    report = PerturbationReport(
        scenario=scenario.name, base_decisions=base, jobs=jobs,
    )
    plan = _candidate_plan(base, radius, budget, seed)
    tasks = []
    for i, cand in enumerate(plan):
        if cand.kind == "script":
            tasks.append(par.ExploreTask(
                task_id=i, kind="script", prefix=tuple(cand.payload)
            ))
        else:
            tasks.append(par.ExploreTask(
                task_id=i, kind="biased", prefix=base, seed=cand.payload,
                follow=walk_bias,
            ))

    init_args = (scenario.name, mutation, "des", trace_path, 10, False)
    pool = None
    if jobs > 1:
        import multiprocessing

        pool = multiprocessing.Pool(
            jobs, initializer=par._init_worker, initargs=init_args,
        )
    else:
        par._set_local(
            scenario if trace_path is None else None, agent_factory
        )
        par._init_worker(*init_args)

    try:
        pending = []
        cursor = 0
        max_leases = max(1, jobs) * par.PIPELINE_DEPTH

        def dispatch() -> None:
            nonlocal cursor
            while cursor < len(tasks) and len(pending) < max_leases:
                lease = tuple(tasks[cursor:cursor + par.LEASE_SIZE])
                cursor += len(lease)
                if pool is not None:
                    pending.append(pool.apply_async(par._run_lease, (lease,)))
                else:
                    pending.append(par._run_lease(lease))

        dispatch()
        while pending:
            handle = pending.pop(0)
            summaries, _stats = (
                handle.get() if pool is not None else handle
            )
            stop = False
            for summary in summaries:
                cand = plan[summary.task_id]
                report.schedules_run += 1
                if summary.inconclusive:
                    report.inconclusive += 1
                    continue
                if summary.violations:
                    # Rebuild the full result locally — the decision list
                    # replays the worker's run exactly.
                    report.violation = run_schedule(
                        scenario,
                        ScriptedStrategy(list(summary.decisions)),
                        agent_factory,
                    )
                    report.found_by = cand.phase
                    report.distance = cand.distance
                    report.decisions = list(summary.decisions)
                    stop = True
                    break
            if stop:
                break
            dispatch()
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()
        elif par._LOCAL_SCENARIO is not None or par._LOCAL_FACTORY is not None:
            par._set_local(None)
    return report


__all__ = ["PerturbationReport", "explore_from_trace"]
