"""Explore the neighborhood of a recorded schedule for near-miss bugs.

A faithful replay proves the recorded run held its invariants; the more
interesting question is whether runs *near* it do. The recorded decision
list is a point in schedule space, and this module searches a bounded
neighborhood around it:

* **Swap-distance DFS**: breadth-first over adjacent-transposition
  variants of the base schedule, up to ``radius`` swaps away. Each swap
  exchanges two neighbouring decisions — delivering this frame *before*
  that one — which is exactly the reordering freedom the live network
  had but did not exercise.
* **Seeded biased walks**: :class:`~repro.check.scheduler.
  BiasedWalkStrategy` runs that follow the base schedule with high
  probability and wander uniformly otherwise, covering variations a
  fixed swap distance misses (different enabled sets open different
  branches once a swap lands).

Every variant runs through the ordinary checker path
(:func:`~repro.check.runner.run_schedule` on the trace scenario), so a
hit is an ordinary violation: ddmin-minimizable, artifact-serializable,
replayable. The deviation from the trace *is* the counterexample.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.check.runner import Scenario, ScheduleResult, run_schedule
from repro.check.scheduler import BiasedWalkStrategy, ScriptedStrategy
from repro.halting.algorithm import HaltingAgent


@dataclass
class PerturbationReport:
    """What one bounded neighborhood campaign found."""

    scenario: str
    base_decisions: Tuple[str, ...]
    #: Schedules executed (base replay included).
    schedules_run: int = 0
    #: Runs that exhausted the step budget (unjudgeable, not failures).
    inconclusive: int = 0
    #: The first violating run, or None.
    violation: Optional[ScheduleResult] = None
    #: Which phase found it: ``"base"`` | ``"swap"`` | ``"walk"``.
    found_by: Optional[str] = None
    #: Swap distance from the base schedule (swap phase only).
    distance: int = 0
    #: The violating decision list (minimize with
    #: :func:`~repro.check.minimize.minimize_schedule`).
    decisions: List[str] = field(default_factory=list)

    @property
    def found(self) -> bool:
        """True when some neighbour of the trace violated an invariant."""
        return self.violation is not None

    def summary(self) -> str:
        """One line for the CLI."""
        if self.found:
            assert self.violation is not None
            names = sorted(
                v.invariant for v in self.violation.violations
            )
            return (
                f"{self.scenario}: VIOLATION via {self.found_by} "
                f"(distance {self.distance}) after {self.schedules_run} "
                f"schedule(s): {', '.join(names)}"
            )
        return (
            f"{self.scenario}: no violation within the explored "
            f"neighborhood ({self.schedules_run} schedule(s), "
            f"{self.inconclusive} inconclusive)"
        )


def _swap_neighbors(
    decisions: Tuple[str, ...]
) -> List[Tuple[str, ...]]:
    """Every adjacent-transposition variant (skipping no-op swaps)."""
    variants = []
    for i in range(len(decisions) - 1):
        if decisions[i] == decisions[i + 1]:
            continue
        swapped = list(decisions)
        swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
        variants.append(tuple(swapped))
    return variants


def explore_from_trace(
    scenario: Scenario,
    base_decisions: List[str],
    radius: int = 2,
    budget: int = 100,
    seed: int = 0,
    agent_factory: Optional[Callable[..., HaltingAgent]] = None,
    walk_bias: float = 0.85,
) -> PerturbationReport:
    """Search up to ``budget`` schedules around ``base_decisions``.

    Phases, in order, sharing the budget: (1) replay the base schedule
    itself (with a mutated agent the recorded interleaving may already
    fail); (2) breadth-first swap-distance search out to ``radius``
    adjacent transpositions, deduplicated and capped at half the budget
    (the distance-2 frontier alone is quadratic in the schedule length
    and must not starve the walks); (3) seeded biased walks for the
    remaining budget — these reach reorderings many swaps away, e.g.
    delivering a forwarded marker before the victim's deferred halt.
    Returns at the first violation — exploration is sequential and
    deterministic for a fixed seed, so the counterexample is
    reproducible.
    """
    base = tuple(base_decisions)
    report = PerturbationReport(
        scenario=scenario.name, base_decisions=base
    )

    def run_one(decisions, phase: str, distance: int) -> bool:
        result = run_schedule(
            scenario, ScriptedStrategy(list(decisions)), agent_factory
        )
        report.schedules_run += 1
        if result.inconclusive:
            report.inconclusive += 1
            return False
        if result.violated:
            report.violation = result
            report.found_by = phase
            report.distance = distance
            report.decisions = list(result.record.decisions)
            return True
        return False

    if run_one(base, "base", 0):
        return report

    # The swap phase gets at most half the budget: the distance-2
    # frontier is ~len(base)^2 schedules, and the walks (which reach far
    # reorderings a bounded swap distance cannot) must still run.
    swap_budget = max(1, budget // 2)
    seen = {base}
    frontier: List[Tuple[str, ...]] = [base]
    exhausted = False
    for distance in range(1, radius + 1):
        if exhausted:
            break
        next_frontier: List[Tuple[str, ...]] = []
        for schedule in frontier:
            if exhausted:
                break
            for variant in _swap_neighbors(schedule):
                if variant in seen:
                    continue
                seen.add(variant)
                if report.schedules_run >= swap_budget:
                    exhausted = True
                    break
                if run_one(variant, "swap", distance):
                    return report
                next_frontier.append(variant)
        frontier = next_frontier

    walk = 0
    while report.schedules_run < budget:
        rng = random.Random(f"{seed}|trace-walk|{walk}")
        walk += 1
        strategy = BiasedWalkStrategy(list(base), rng, follow=walk_bias)
        result = run_schedule(scenario, strategy, agent_factory)
        report.schedules_run += 1
        if result.inconclusive:
            report.inconclusive += 1
            continue
        if result.violated:
            report.violation = result
            report.found_by = "walk"
            report.distance = walk
            report.decisions = list(result.record.decisions)
            return report
    return report


__all__ = ["PerturbationReport", "explore_from_trace"]
