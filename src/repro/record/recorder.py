"""FrameRecorder: capture a live cluster's user-channel traffic.

The recorder reuses the :class:`~repro.distributed.framegate.FrameStager`
proxy position from the frame gate, but in *observe* mode: every frame
passes straight through (the cluster runs at full speed, unscheduled)
while the stager's tap reports each user-channel ``env`` frame with a
globally ordered arrival index. Those frames — wire encoding untouched —
plus the halt metadata the live debugger collects at the end of the run
become a :class:`~repro.record.store.TraceArtifact`.

:func:`record_run` is the one-call lifecycle: start a cluster, let it
produce at least ``min_frames`` of traffic, halt it with the watchdog,
collect the consistent global state (which drains every halt marker
through the tap, so the recording contains the complete marker flood),
and assemble the artifact.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.distributed.framegate import FrameStager
from repro.distributed.protocol import decode_payload
from repro.distributed.session import DistributedDebugSession
from repro.record.store import RecordedFrame, TraceArtifact
from repro.util.errors import TraceError


class FrameRecorder:
    """An observe-mode :class:`FrameStager` that keeps what it sees.

    Pass :attr:`stager` as ``frame_stager=`` to a
    :class:`~repro.distributed.session.DistributedDebugSession`; the
    session doctors the port rendezvous so every user channel crosses the
    proxy, and the tap appends one :class:`RecordedFrame` per ``env``
    frame. The tap runs under the stager's lock, so :meth:`frames` is a
    strict total order over all channels.
    """

    def __init__(self, dial_timeout: float = 10.0) -> None:
        self._frames: List[RecordedFrame] = []
        self.stager = FrameStager(
            dial_timeout=dial_timeout, observe=True, on_frame=self._on_frame
        )

    def _on_frame(self, channel: str, frame: Dict[str, Any],
                  index: int) -> None:
        """Stager tap (runs under the stager lock): keep one frame."""
        clock: Optional[Tuple[int, Tuple[int, ...]]] = None
        if frame.get("clock") is not None:
            lamport, vector = frame["clock"]
            clock = (int(lamport), tuple(int(v) for v in vector))
        elif frame.get("kind") == "user":
            # User messages piggyback their causal clocks inside the
            # message body rather than on the envelope — lift them onto
            # the frame so the artifact is causally annotated either way.
            clock = _user_payload_clock(frame.get("payload"))
        self._frames.append(
            RecordedFrame(
                index=index,
                channel=channel,
                kind=str(frame.get("kind")),
                seq=int(frame.get("seq", 0)),
                send_time=float(frame.get("send_time", 0.0)),
                clock=clock,
                payload=frame.get("payload"),
            )
        )

    def frame_count(self) -> int:
        """Frames observed so far (safe to poll from the parent thread)."""
        return len(self._frames)

    def frames(self) -> Tuple[RecordedFrame, ...]:
        """Everything recorded so far, ascending arrival index."""
        return tuple(sorted(self._frames, key=lambda f: f.index))

    def close(self) -> None:
        """Tear the proxy down (idempotent)."""
        self.stager.close()


def _user_payload_clock(
    payload: Any,
) -> Optional[Tuple[int, Tuple[int, ...]]]:
    """Extract ``(lamport, vector)`` from a wire-encoded UserMessage."""
    try:
        message = decode_payload(payload)
        lamport = getattr(message, "lamport", None)
        vector = getattr(message, "vector", None)
        if lamport is None or vector is None:
            return None
        return (int(lamport), tuple(int(v) for v in vector))
    except Exception:
        return None


def halt_meta(session: DistributedDebugSession) -> Dict[str, Any]:
    """The live debugger's halt view, as trace-artifact metadata.

    ``halt_paths`` keep the *notification* form — the §2.2.4 path the
    process reported, its own name last — exactly as the live session
    exposes them; the bridge strips the trailing own-name when it needs
    the as-received marker path.
    """
    notes = list(session.agent.halting_order())
    generation = max((n.halt_id for n in notes), default=0)
    current = [n for n in notes if n.halt_id == generation]
    return {
        "halt_order": [str(n.process) for n in current],
        "halt_paths": {
            str(n.process): [str(hop) for hop in n.path] for n in current
        },
        "generation": generation,
        "process_order": [str(p) for p in session.spec.process_order],
        "debugger": str(session.spec.debugger),
    }


def record_run(
    workload: str,
    params: Optional[Dict[str, Any]] = None,
    seed: int = 0,
    min_frames: int = 12,
    frames_timeout: float = 30.0,
    halt_timeout: float = 20.0,
    probe_grace: float = 3.0,
    collect_timeout: float = 15.0,
) -> TraceArtifact:
    """Record one live cluster run end to end and return its artifact.

    The run is: spawn the cluster with the recorder's observe-mode proxy
    on every user channel, wait until at least ``min_frames`` user-channel
    frames crossed the tap, halt via the watchdog, and collect the global
    state — collection polls until every inter-halted channel has seen its
    closing marker, which guarantees the marker flood is *in* the
    recording before the artifact is assembled. Raises
    :class:`~repro.util.errors.TraceError` if the cluster produces too
    little traffic or the halt does not complete.
    """
    recorder = FrameRecorder()
    session = DistributedDebugSession(
        workload, dict(params or {}), seed=seed,
        frame_stager=recorder.stager,
    )
    try:
        session.start()
        deadline = time.monotonic() + frames_timeout
        while (recorder.frame_count() < min_frames
               and time.monotonic() < deadline):
            time.sleep(0.02)
        if recorder.frame_count() < min_frames:
            raise TraceError(
                f"cluster produced {recorder.frame_count()} frames in "
                f"{frames_timeout:.1f}s (wanted >= {min_frames}); "
                "nothing worth recording"
            )
        report = session.halt_with_watchdog(
            timeout=halt_timeout, probe_grace=probe_grace
        )
        if not report.complete:
            raise TraceError(
                f"halt did not complete cleanly: {report.describe()}"
            )
        # Drives the remaining marker duplicates through the tap (every
        # inter-halted channel must close before this returns).
        session.collect_global_state(timeout=collect_timeout)
        meta = halt_meta(session)
        return TraceArtifact(
            workload=workload,
            params=dict(params or {}),
            seed=seed,
            frames=recorder.frames(),
            meta=meta,
        )
    finally:
        session.shutdown()
        recorder.close()


__all__ = ["FrameRecorder", "halt_meta", "record_run"]
