"""Record/replay: live cluster runs made debuggable after the fact.

Breakpoints and halting act on a *run* — but a run on the real-socket
backend is gone the moment it happens. This package closes that gap with
three layers:

* :mod:`repro.record.store` — the durable artifact: every user-channel
  frame a live run produced, with causal (vector-clock) metadata, in the
  registry-gated wire codec; a :class:`TraceStore` with the checkpoint
  store's format-gating discipline.
* :mod:`repro.record.recorder` — capture: a :class:`FrameRecorder` puts
  the PR 7 :class:`~repro.distributed.framegate.FrameStager` proxy into
  always-pass-through observe mode, so the cluster runs at full speed
  while every frame is reported in one strict total arrival order.
  :func:`record_run` is the whole lifecycle in one call.
* :mod:`repro.record.bridge` — replay: the recorded interleaving is
  reconstructed as a portable gate decision list and re-executed in the
  DES (:func:`replay_trace`), where breakpoints, halting order, and the
  invariant library apply to the run that already happened.
* :mod:`repro.record.perturb` — exploration: seed the checker from the
  recorded schedule and search bounded neighborhoods (swap-distance DFS
  plus trace-biased walks) for near-miss violations
  (:func:`explore_from_trace`); ddmin shrinks any hit.

Entry points: ``python -m repro record`` (:mod:`repro.record.cli`) and
``python -m repro check --from-trace TRACE [--radius K]``.
"""

from repro.record.bridge import (
    ReplayPlan,
    ReplayReport,
    TraceGuidedStrategy,
    replay_trace,
    run_trace_record,
    trace_scenario,
)
from repro.record.perturb import PerturbationReport, explore_from_trace
from repro.record.recorder import FrameRecorder, record_run
from repro.record.store import (
    TRACE_FORMAT,
    RecordedFrame,
    TraceArtifact,
    TraceStore,
    load_trace,
    payload_key,
    save_trace,
)

__all__ = [
    "FrameRecorder",
    "PerturbationReport",
    "RecordedFrame",
    "ReplayPlan",
    "ReplayReport",
    "TRACE_FORMAT",
    "TraceArtifact",
    "TraceGuidedStrategy",
    "TraceStore",
    "explore_from_trace",
    "load_trace",
    "payload_key",
    "record_run",
    "replay_trace",
    "run_trace_record",
    "save_trace",
    "trace_scenario",
]
