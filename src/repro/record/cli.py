"""``python -m repro record`` — capture a live cluster run as a trace.

Usage::

    python -m repro record token_ring n=3 max_hops=100000 hold_time=0.05
    python -m repro record token_ring n=3 --frames 20 --out trace.json
    python -m repro record pipeline stages=2 items=12 --store traces/
    python -m repro record --list

Options::

    --frames N    keep recording until at least N user-channel frames
                  crossed the tap before halting (default 12)
    --seed N      cluster seed (default 0); also the replay's DES seed
    --out FILE    write the artifact to exactly this path
    --store DIR   save into a TraceStore directory (trace-NNNNNN.json);
                  default: ./repro-traces
    --no-verify   skip the replay-fidelity check after recording

After recording, the artifact is replayed into the DES and judged for
fidelity (identical per-channel frame sequences, halting order, invariant
verdicts) unless ``--no-verify`` is given. Explore around a saved trace
with ``python -m repro check --from-trace FILE [--radius K]``.

Exit codes: ``0`` recorded (and the replay was faithful), ``1`` the
replay diverged from the recording, ``2`` usage error.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List, Optional

from repro.distributed.spec import DISTRIBUTED_WORKLOADS
from repro.record.recorder import record_run
from repro.record.store import TraceStore, save_trace
from repro.util.errors import TraceError


def _parse_value(text: str) -> Any:
    for parser in (int, float):
        try:
            return parser(text)
        except ValueError:
            continue
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    return text


def record_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro record``; returns the exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--help" in argv or "-h" in argv:
        print(__doc__)
        return 0
    if "--list" in argv:
        print("recordable workloads:")
        for name in sorted(DISTRIBUTED_WORKLOADS):
            print(f"  {name}")
        return 0

    frames, seed = 12, 0
    out: Optional[str] = None
    store_dir: Optional[str] = None
    verify = True
    workload: Optional[str] = None
    params: Dict[str, Any] = {}
    i = 0
    while i < len(argv):
        arg = argv[i]

        def value(flag: str = arg) -> str:
            nonlocal i
            i += 1
            if i >= len(argv):
                raise SystemExit(_usage_error(f"{flag} needs a value"))
            return argv[i]

        if arg == "--frames":
            frames = int(value())
        elif arg == "--seed":
            seed = int(value())
        elif arg == "--out":
            out = value()
        elif arg == "--store":
            store_dir = value()
        elif arg == "--no-verify":
            verify = False
        elif arg.startswith("-"):
            return _usage_error(f"unknown option {arg!r}")
        elif workload is None:
            workload = arg
        else:
            key, sep, text = arg.partition("=")
            if not sep:
                return _usage_error(
                    f"arguments must be key=value, got {arg!r}"
                )
            params[key] = _parse_value(text)
        i += 1

    if workload is None:
        return _usage_error("a workload name is required; try --list")
    if workload not in DISTRIBUTED_WORKLOADS:
        return _usage_error(
            f"unknown workload {workload!r}; try --list"
        )
    if out is not None and store_dir is not None:
        return _usage_error("--out and --store are mutually exclusive")

    try:
        artifact = record_run(
            workload, params, seed=seed, min_frames=frames
        )
    except TraceError as exc:
        print(f"repro record: {exc}", file=sys.stderr)
        return 1
    if out is not None:
        path = save_trace(artifact, out)
    else:
        path = TraceStore(store_dir or "repro-traces").save(artifact)
    print(
        f"recorded {len(artifact.frames)} frame(s) "
        f"({artifact.user_frame_count()} user) on "
        f"{len(artifact.channels())} channel(s) -> {path}"
    )
    if not verify:
        return 0
    from repro.record.bridge import replay_trace

    report, _ = replay_trace(artifact)
    print(report.summary())
    return 0 if report.fidelity_ok else 1


def _usage_error(message: str) -> int:
    print(f"repro record: {message}", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover - console entry
    raise SystemExit(record_main())
