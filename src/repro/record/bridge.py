"""The record→replay bridge: a recorded live run, re-executed in the DES.

A :class:`~repro.record.store.TraceArtifact` fixes three things about the
live run: the global arrival order of user-channel frames, each channel's
FIFO frame sequence, and the halt metadata (§2.2.4 halting order and
marker paths). The bridge rebuilds the same user program inside the DES
— the live debugger ``d`` becomes the DES :class:`DebugSession`'s
debugger — and reconstructs the recorded interleaving in PR 7's portable
label space:

* :class:`ReplayPlan` digests the artifact into per-channel cursors, the
  pre-marker send counts (how much each process produced before its halt
  froze it), and the halting order with each process's halt *cause*.
* :class:`TraceGuidedStrategy` drives any scheduling gate so recorded
  deliveries fire in recorded order, the debugger's halt markers are
  withheld until the recorded halting order makes them due, and
  everything the recording cannot see (timers, internal steps, control
  traffic to ``d``) fires eagerly so the computation can produce the
  sends the cursor is waiting to deliver.
* The guided run's choice-point decisions are an ordinary portable
  schedule: :func:`replay_trace` re-runs them through a stock
  :class:`~repro.check.scheduler.ScriptedStrategy` (the authoritative
  replay — the exact artifact ``repro check`` explores and ddmin
  shrinks) and judges fidelity: per-channel user-frame sequences, marker
  coverage, halting order, and the invariant library's verdicts.

Once a trace is a decision list, everything downstream of the checker
works on it unchanged: breakpoints via the session, invariants via
:func:`~repro.check.runner.run_schedule`, perturbation via
:mod:`repro.record.perturb`, minimization via ddmin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.check.gate import KernelGate, drive
from repro.check.invariants import RunRecord
from repro.check.runner import Scenario, ScheduleResult, run_schedule
from repro.check.scheduler import ScriptedStrategy, Strategy
from repro.debugger.session import DebugSession
from repro.distributed.protocol import decode_payload, encode_payload
from repro.distributed.spec import build_user_program
from repro.events.event import EventKind
from repro.halting.algorithm import HaltingAgent
from repro.network.latency import FixedLatency
from repro.record.store import RecordedFrame, TraceArtifact, payload_key
from repro.runtime.state_capture import ProcessStateSnapshot
from repro.runtime.system import System
from repro.snapshot.state import ChannelState, GlobalState
from repro.util.errors import TraceError
from repro.util.ids import ChannelId, ProcessId

#: Invariants every trace replay is judged under (the session-mode set —
#: the recorded run has a debugger, so the extended §2.2.3 model applies).
TRACE_INVARIANTS: Tuple[str, ...] = (
    "halt_convergence",
    "theorem1_consistency",
    "fifo_per_channel",
    "exactly_once_conservation",
    "halting_order_prefix",
)


@dataclass(frozen=True)
class ReplayPlan:
    """The artifact digested into what the guided strategy consults."""

    #: Recorded channels in global arrival order, one entry per frame.
    arrival_order: Tuple[str, ...]
    #: Per channel, its frames in FIFO order.
    sequences: Dict[str, Tuple[RecordedFrame, ...]]
    #: Per channel, how many *user* frames precede its first halt marker
    #: (== everything the source sent there before halting froze it).
    pre_marker_sends: Dict[str, int]
    #: Live halting order (meta), padded with any missing user processes.
    halt_sequence: Tuple[ProcessId, ...]
    #: Per process, who delivered the marker it halted via (the last hop
    #: before itself on its notification path; the debugger if the path
    #: is empty — a marker straight from ``d``).
    halt_cause: Dict[ProcessId, ProcessId]
    #: The debugger process name the live run used.
    debugger: ProcessId

    @classmethod
    def from_artifact(cls, artifact: TraceArtifact) -> "ReplayPlan":
        """Digest one artifact; TraceError when the meta is unusable."""
        meta = artifact.meta
        debugger = str(meta.get("debugger", "d"))
        sequences = {
            channel: tuple(frames)
            for channel, frames in artifact.channel_sequences().items()
        }
        pre_marker: Dict[str, int] = {}
        for channel, frames in sequences.items():
            count = 0
            for frame in frames:
                if frame.kind != "user":
                    break
                count += 1
            pre_marker[channel] = count
        halt_order = [str(p) for p in meta.get("halt_order", ())]
        if not halt_order:
            raise TraceError(
                "trace meta carries no halt_order — was the recording "
                "halted before the artifact was assembled?"
            )
        users = [
            str(p) for p in meta.get("process_order", ()) if p != debugger
        ]
        halt_sequence = tuple(
            halt_order + sorted(p for p in users if p not in halt_order)
        )
        cause: Dict[ProcessId, ProcessId] = {}
        for process, path in dict(meta.get("halt_paths", {})).items():
            # Notification paths carry the process's own name last; the
            # hop before it is whoever forwarded the marker it halted via.
            hops = [str(h) for h in path]
            cause[str(process)] = hops[-2] if len(hops) >= 2 else debugger
        ordered = tuple(
            frame.channel
            for frame in sorted(artifact.frames, key=lambda f: f.index)
        )
        return cls(
            arrival_order=ordered,
            sequences=sequences,
            pre_marker_sends=pre_marker,
            halt_sequence=halt_sequence,
            halt_cause=cause,
            debugger=debugger,
        )


class TraceGuidedStrategy(Strategy):
    """Drive a gate so the recorded interleaving re-emerges in the DES.

    Works on the raw label stream (``on_step`` is overridden wholesale,
    forced steps included) with four rules, in priority order:

    1. **Due halt markers.** ``chan:d->p`` deliveries are withheld — the
       DES debugger initiates the halt at virtual time zero, but the
       recorded run halted each process at a specific point. A marker is
       due when ``p`` already halted (a stale duplicate that only closes
       the channel), or when ``p`` is the next unhalted process in the
       recorded halting order, halted *directly* by ``d`` in the live
       run, and has produced every pre-halt send the recording shows.
    2. **Eager plumbing.** Everything the recording cannot see fires as
       soon as it is enabled: control deliveries into ``d``, internal
       steps, ack/retransmission work, and timers — except timers of a
       live process that already produced all its recorded sends (firing
       those could push it past the recording).
    3. **Recorded deliveries.** Among enabled recorded channels with
       frames left, deliver the one whose next frame is globally
       earliest. Per-channel FIFO is structural; this rule recreates the
       cross-channel arrival order.
    4. **Fallback.** First enabled label, counted as a divergence.
    """

    def __init__(self, plan: ReplayPlan) -> None:
        self.plan = plan
        self.divergences = 0
        self._consumed: Dict[str, int] = {c: 0 for c in plan.sequences}
        self._remaining = sum(len(s) for s in plan.sequences.values())
        self._system: Optional[System] = None
        self._out_channels: Dict[ProcessId, List[object]] = {}
        self._users: Tuple[ProcessId, ...] = ()

    # -- wiring --------------------------------------------------------------

    def bind(self, system: System, debugger: ProcessId) -> None:
        """Attach to the live replay system (called by the trace runner)."""
        self._system = system
        self._users = tuple(system.user_process_names)
        user = set(self._users)
        self._out_channels = {name: [] for name in self._users}
        for channel in system.channels():
            if channel.id.src in user and channel.id.dst in user:
                self._out_channels[channel.id.src].append(channel)

    # -- the rules -----------------------------------------------------------

    def _done(self, process: ProcessId) -> bool:
        """True once ``process`` sent everything the recording shows it
        sending before it halted (per outgoing channel)."""
        for channel in self._out_channels.get(process, ()):
            wanted = self.plan.pre_marker_sends.get(str(channel.id), 0)
            if channel.stats.sent < wanted:
                return False
        return True

    def _halted(self, process: ProcessId) -> bool:
        assert self._system is not None
        return bool(self._system.controller(process).halted)

    def _first_unhalted(self) -> Optional[ProcessId]:
        for process in self.plan.halt_sequence:
            if not self._halted(process):
                return process
        return None

    def _marker_due(self, target: ProcessId) -> bool:
        if self._halted(target):
            return True  # stale duplicate: it only closes the channel
        if self._first_unhalted() != target:
            return False
        if self._remaining == 0:
            # Cursor exhausted: nothing recorded can halt anyone anymore,
            # so the debugger's markers finish the flood in order.
            return True
        return (
            self.plan.halt_cause.get(target) == self.plan.debugger
            and self._done(target)
        )

    def _eager(self, label: str) -> bool:
        kind, _, rest = label.partition(":")
        if kind == "chan":
            return rest.endswith(f"->{self.plan.debugger}")
        if kind == "timer":
            process = rest
            if process in set(self._users):
                return self._halted(process) or not self._done(process)
            return True
        return kind in ("ack", "rtx", "internal", "entry")

    def on_step(self, labels: Sequence[str]) -> str:
        """Pick per the four rules (forced steps included — the cursor
        must advance even when only one label is enabled)."""
        enabled = list(labels)
        prefix = f"chan:{self.plan.debugger}->"
        for label in enabled:
            if label.startswith(prefix) and self._marker_due(
                label[len("chan:"):].split("->", 1)[1]
            ):
                return label
        for label in enabled:
            if label.startswith(prefix):
                continue
            if self._eager(label):
                return label
        best: Optional[str] = None
        best_index: Optional[int] = None
        for label in enabled:
            if not label.startswith("chan:") or label.startswith(prefix):
                continue
            channel = label[len("chan:"):]
            frames = self.plan.sequences.get(channel)
            if frames is None:
                continue
            cursor = self._consumed[channel]
            if cursor >= len(frames):
                continue
            index = frames[cursor].index
            if best_index is None or index < best_index:
                best, best_index = label, index
        if best is not None:
            channel = best[len("chan:"):]
            self._consumed[channel] += 1
            self._remaining -= 1
            return best
        self.divergences += 1
        return enabled[0]

    def choose(self, labels: Sequence[str]) -> str:  # pragma: no cover
        """Unreachable — ``on_step`` is overridden wholesale."""
        return labels[0]


# -- the trace runner (runner.py's ``mode == "trace"`` backend) ---------------


def trace_scenario(
    artifact: TraceArtifact, name: Optional[str] = None
) -> Scenario:
    """A checker :class:`Scenario` whose runs replay inside ``artifact``'s
    recorded world: same workload, same seed, same debugger. The trigger
    fields are unused — the debugger initiates the halt and the strategy
    times the marker deliveries."""
    plan = ReplayPlan.from_artifact(artifact)
    workload, params = artifact.workload, dict(artifact.params)
    first = plan.halt_sequence[0]
    return Scenario(
        name=name or f"trace:{workload}",
        description=(
            f"recorded {workload} run "
            f"({artifact.user_frame_count()} user frame(s), "
            f"{len(artifact.channels())} channel(s)) replayed in the DES"
        ),
        mode="trace",
        builder=lambda: build_user_program(workload, params),
        trigger_process=first,
        trigger_event=10 ** 9,
        invariants=TRACE_INVARIANTS,
        seed=artifact.seed,
        backends=("des",),
        trace=artifact,
    )


def run_trace_record(
    scenario: Scenario,
    strategy: Optional[Strategy] = None,
    agent_factory: Optional[Callable[..., HaltingAgent]] = None,
    on_branch_point: Optional[Callable[[System], None]] = None,
) -> RunRecord:
    """Execute one schedule of a trace scenario on the DES.

    The session mirrors :func:`repro.check.runner._run_session` — same
    unit latency, same halt bookkeeping — except the halt is initiated by
    the debugger up front (matching the recorded run, where ``d`` started
    the flood) and mutated halting agents may be injected on the user
    processes via ``agent_factory``. Trace-guided strategies are bound to
    the live system before driving so their rules can read halt flags and
    channel counters.
    """
    artifact = scenario.trace
    if not isinstance(artifact, TraceArtifact):
        raise TraceError(
            f"scenario {scenario.name!r} carries no trace artifact"
        )
    debugger = str(artifact.meta.get("debugger", "d"))
    topology, processes = scenario.builder()
    session = DebugSession(
        topology,
        processes,
        seed=scenario.seed,
        latency=FixedLatency(1.0),
        debugger_name=debugger,
        halting_factory=agent_factory,
    )
    system = session.system
    gate = KernelGate(system.kernel)
    if isinstance(strategy, ScriptedStrategy) and on_branch_point is not None:
        strategy.on_exhausted = lambda: on_branch_point(system)
    if hasattr(strategy, "bind"):
        strategy.bind(system, debugger)

    halt_order: List[ProcessId] = []
    agents = session._halting_agents
    for name in system.user_process_names:
        agents[name].notify_on_halt(
            lambda agent: halt_order.append(agent.controller.name)
        )
    _start_system(system)
    session.halt()  # markers enter the network; the strategy times them
    result = drive(gate, strategy, max_steps=scenario.max_steps)
    gate.close()
    return _assemble_trace_record(scenario, system, agents, halt_order,
                                  result)


def _assemble_trace_record(
    scenario: Scenario,
    system: System,
    agents: Dict[ProcessId, "HaltingAgent"],
    halt_order: List[ProcessId],
    result,
) -> RunRecord:
    """Fold one driven trace-session run into a :class:`RunRecord`.

    Shared by :func:`run_trace_record` and the worker-resident engine,
    which keeps the session world alive and assembles each rewound run
    here.
    """
    all_halted = system.all_user_processes_halted()
    halt_state = None
    if result.quiesced and all_halted:
        halt_state = _collect_halt(system, agents, halt_order)
    halt_paths = {
        name: agents[name].halted_via.path
        for name in system.user_process_names
        if agents[name].halted_via is not None
    }
    return RunRecord(
        scenario=scenario.name,
        mode=scenario.mode,
        system=system,
        quiesced=result.quiesced,
        all_halted=all_halted,
        halt_state=halt_state,
        halt_order=list(halt_order),
        halt_paths=halt_paths,
        trace=result.trace,
        decisions=result.decisions,
        choice_points=result.choice_points,
        events_executed=result.steps,
        backend="des",
    )


def _start_system(system: System) -> None:
    if not getattr(system, "_started", False):
        system.start()


def _collect_halt(
    system: System,
    agents: Dict[ProcessId, HaltingAgent],
    halt_order: List[ProcessId],
) -> GlobalState:
    """``S_h`` from the frozen controllers (halt buffers are the channel
    states, Lemma 2.2) — the session-mode assembly, shared shape."""
    processes: Dict[ProcessId, ProcessStateSnapshot] = {}
    channels: Dict[ChannelId, ChannelState] = {}
    generation = 0
    for name in system.user_process_names:
        controller = system.controller(name)
        assert controller.halted_snapshot is not None
        processes[name] = controller.halted_snapshot
        generation = max(generation, agents[name].last_halt_id)
        for channel_id, envelopes in controller.halt_buffers.items():
            channels[channel_id] = ChannelState(
                channel=channel_id,
                messages=tuple(env.payload for env in envelopes),
                complete=channel_id in controller.closed_channels,
            )
    return GlobalState(
        origin="halting",
        processes=processes,
        channels=channels,
        generation=generation,
        meta={
            "halt_order": list(halt_order),
            "clock_frame": list(system.clock_frame.order),
        },
    )


# -- fidelity ------------------------------------------------------------------


@dataclass
class ReplayReport:
    """How faithfully one artifact replayed, and what the checker said."""

    #: The portable schedule the guided run produced — seed this into
    #: :class:`~repro.check.scheduler.ScriptedStrategy` or the perturber.
    decisions: List[str] = field(default_factory=list)
    #: Times the guided strategy fell off its rules (0 == clean).
    guided_divergences: int = 0
    #: Divergences of the authoritative scripted re-run of ``decisions``.
    scripted_divergences: int = 0
    #: True when the scripted re-run walked the guided run's exact trace.
    scripted_identical: bool = False
    quiesced: bool = False
    #: Per channel, a description of any user-frame sequence mismatch.
    channel_mismatches: List[str] = field(default_factory=list)
    #: Recorded marker-carrying channels the replay never closed.
    missing_markers: List[str] = field(default_factory=list)
    halt_order_recorded: List[str] = field(default_factory=list)
    halt_order_replayed: List[str] = field(default_factory=list)
    #: Invariant name → True when it held on the replay.
    verdicts: Dict[str, bool] = field(default_factory=dict)

    @property
    def halt_order_ok(self) -> bool:
        """Recorded and replayed §2.2.4 halting orders agree exactly."""
        return self.halt_order_recorded == self.halt_order_replayed

    @property
    def fidelity_ok(self) -> bool:
        """The acceptance bar: identical per-channel frame sequences,
        marker coverage, halting order, and all-green verdicts, via a
        schedule the stock scripted strategy reproduces exactly."""
        return (
            self.quiesced
            and self.scripted_identical
            and not self.channel_mismatches
            and not self.missing_markers
            and self.halt_order_ok
            and all(self.verdicts.values())
        )

    def summary(self) -> str:
        """One human-readable block, stable line order."""
        verdict = "FAITHFUL" if self.fidelity_ok else "DIVERGED"
        lines = [
            f"replay: {verdict} ({len(self.decisions)} decision(s), "
            f"guided divergences={self.guided_divergences}, "
            f"scripted divergences={self.scripted_divergences})",
            f"  halt order recorded={self.halt_order_recorded} "
            f"replayed={self.halt_order_replayed}",
        ]
        for name, ok in sorted(self.verdicts.items()):
            lines.append(f"  invariant {name}: {'ok' if ok else 'VIOLATED'}")
        lines.extend(f"  {detail}" for detail in self.channel_mismatches)
        lines.extend(
            f"  marker never closed {channel}"
            for channel in self.missing_markers
        )
        return "\n".join(lines)


def _recorded_user_keys(frames: Sequence[RecordedFrame]) -> List[str]:
    """Comparison keys of a channel's recorded user frames, FIFO order.

    Clocks are deliberately excluded: the replay reaches the same sends
    via a different control-traffic schedule, so piggybacked clock values
    legitimately differ while the computation is the same.
    """
    keys = []
    for frame in frames:
        if frame.kind != "user":
            continue
        message = decode_payload(frame.payload)
        keys.append(payload_key(
            "user",
            encode_payload({
                "payload": message.payload, "tag": message.tag,
            }),
        ))
    return keys


def _replayed_user_keys(record: RunRecord) -> Dict[str, List[str]]:
    """Per user-channel, the replay's SEND sequence as comparison keys."""
    user = set(record.system.user_process_names)
    sends: Dict[str, List[str]] = {}
    for event in record.system.log:
        if event.kind is not EventKind.SEND or event.channel is None:
            continue
        if event.channel.src not in user or event.channel.dst not in user:
            continue
        sends.setdefault(str(event.channel), []).append(payload_key(
            "user",
            encode_payload({
                "payload": event.message, "tag": event.detail,
            }),
        ))
    return sends


def replay_trace(
    artifact: TraceArtifact,
    agent_factory: Optional[Callable[..., HaltingAgent]] = None,
) -> Tuple[ReplayReport, ScheduleResult]:
    """Replay one artifact in the DES and judge fidelity.

    Two runs: the :class:`TraceGuidedStrategy` reconstructs the recorded
    interleaving and yields a portable decision list; then a stock
    :class:`ScriptedStrategy` re-executes that list through the ordinary
    checker path (:func:`~repro.check.runner.run_schedule`) — the
    authoritative run every judgement is made on, proving the schedule
    stands alone without the guided rules.
    """
    scenario = trace_scenario(artifact)
    plan = ReplayPlan.from_artifact(artifact)
    guided = TraceGuidedStrategy(plan)
    guided_record = run_trace_record(scenario, guided, agent_factory)
    scripted = ScriptedStrategy(list(guided_record.decisions))
    result = run_schedule(scenario, scripted, agent_factory)
    record = result.record

    report = ReplayReport(
        decisions=list(guided_record.decisions),
        guided_divergences=guided.divergences,
        scripted_divergences=scripted.divergences,
        scripted_identical=(
            scripted.divergences == 0
            and list(record.trace) == list(guided_record.trace)
        ),
        quiesced=record.quiesced,
        halt_order_recorded=[
            str(p) for p in artifact.meta.get("halt_order", ())
        ],
        halt_order_replayed=[str(p) for p in record.halt_order],
    )

    replayed = _replayed_user_keys(record)
    for channel, frames in sorted(plan.sequences.items()):
        wanted = _recorded_user_keys(frames)
        got = replayed.get(channel, [])
        if wanted != got:
            report.channel_mismatches.append(
                f"{channel}: recorded {len(wanted)} user frame(s), "
                f"replayed {len(got)}; first difference at position "
                f"{_first_difference(wanted, got)}"
            )
    for channel, frames in sorted(plan.sequences.items()):
        if not any(frame.kind == "halt_marker" for frame in frames):
            continue
        channel_id = ChannelId.parse(channel)
        controller = record.system.controller(channel_id.dst)
        if channel_id not in controller.closed_channels:
            report.missing_markers.append(channel)

    violated = {violation.invariant for violation in result.violations}
    report.verdicts = {
        name: name not in violated for name in scenario.invariants
    }
    return report, result


def _first_difference(wanted: List[str], got: List[str]) -> int:
    for index, (a, b) in enumerate(zip(wanted, got)):
        if a != b:
            return index
    return min(len(wanted), len(got))


__all__ = [
    "ReplayPlan",
    "ReplayReport",
    "TRACE_INVARIANTS",
    "TraceGuidedStrategy",
    "replay_trace",
    "run_trace_record",
    "trace_scenario",
]
