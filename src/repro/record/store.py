"""Trace artifacts: a live cluster's frame stream made durable.

A recording is the totally ordered stream of user-channel ``env`` frames
the :class:`~repro.distributed.framegate.FrameStager` observed in
pass-through mode, plus the halt metadata the debugger collected at the
end of the run. Frames keep their *wire* encoding — the registry-gated
JSON the cluster itself trusted (:mod:`repro.distributed.protocol`) — so
a trace artifact round-trips exactly and never instantiates classes
outside the wire registry.

The store follows :class:`~repro.recovery.checkpoint.CheckpointStore`'s
discipline: versioned format-gated JSON artifacts named
``trace-NNNNNN.json``, atomic writes, and
:class:`~repro.util.errors.TraceError` on anything corrupt, truncated, or
from an incompatible format.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.distributed.protocol import decode_payload, encode_payload
from repro.util.errors import TraceError

#: Bump when the artifact layout changes incompatibly.
TRACE_FORMAT = 1

_KIND = "repro-trace"

_ARTIFACT_RE = re.compile(r"^trace-(\d{6})\.json$")


@dataclass(frozen=True)
class RecordedFrame:
    """One user-channel ``env`` frame, in global arrival order.

    ``payload`` stays in its wire encoding (JSON-safe, registry-tagged);
    decode it with :func:`repro.distributed.protocol.decode_payload` when
    the live object is needed.
    """

    #: Global arrival index across all recorded channels (strict total
    #: order — the tap assigns it under the stager's lock).
    index: int
    #: Channel the frame travelled on, ``src->dst``.
    channel: str
    #: :class:`~repro.network.message.MessageKind` value ("user",
    #: "halt_marker", ...).
    kind: str
    #: System-wide message sequence number at the sender.
    seq: int
    #: Sender-side virtual send time.
    send_time: float
    #: Piggybacked ``(lamport, vector)`` clocks, or None.
    clock: Optional[Tuple[int, Tuple[int, ...]]] = None
    #: Wire-encoded payload, exactly as it crossed the socket.
    payload: Any = None

    def to_jsonable(self) -> Dict[str, Any]:
        """This frame as plain JSON-safe data (payload already is)."""
        clock: Any = None
        if self.clock is not None:
            lamport, vector = self.clock
            clock = [int(lamport), [int(v) for v in vector]]
        return {
            "index": self.index,
            "channel": self.channel,
            "kind": self.kind,
            "seq": self.seq,
            "send_time": self.send_time,
            "clock": clock,
            "payload": self.payload,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "RecordedFrame":
        """Inverse of :meth:`to_jsonable`; raises TraceError when malformed."""
        try:
            clock: Optional[Tuple[int, Tuple[int, ...]]] = None
            if data.get("clock") is not None:
                lamport, vector = data["clock"]
                clock = (int(lamport), tuple(int(v) for v in vector))
            return cls(
                index=int(data["index"]),
                channel=str(data["channel"]),
                kind=str(data["kind"]),
                seq=int(data["seq"]),
                send_time=float(data["send_time"]),
                clock=clock,
                payload=data.get("payload"),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise TraceError(f"malformed recorded frame: {exc}") from exc


@dataclass(frozen=True)
class TraceArtifact:
    """One recorded run: enough to rebuild and replay it in the DES.

    ``meta`` carries the halt metadata observed live (halting order,
    per-process halt paths as notified, process order, debugger name,
    halt generation) — the fidelity baseline the bridge replay is judged
    against.
    """

    #: Workload name (a :data:`repro.distributed.spec.DISTRIBUTED_WORKLOADS`
    #: key) — replays rebuild the same user program from it.
    workload: str
    #: Workload build parameters.
    params: Dict[str, Any] = field(default_factory=dict)
    #: Cluster seed (also the replay's DES seed).
    seed: int = 0
    #: Every observed user-channel frame, ascending ``index``.
    frames: Tuple[RecordedFrame, ...] = ()
    #: Halt metadata from the live debugger (see class docstring).
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_jsonable(self) -> Dict[str, Any]:
        """Serialize to the stable-keyed JSON layout :func:`save_trace`
        writes."""
        return {
            "format": TRACE_FORMAT,
            "kind": _KIND,
            "workload": self.workload,
            "params": encode_payload(dict(self.params)),
            "seed": self.seed,
            "frames": [frame.to_jsonable() for frame in self.frames],
            "meta": encode_payload(dict(self.meta)),
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "TraceArtifact":
        """Decode a :meth:`to_jsonable` payload, gating kind and format."""
        if not isinstance(data, dict):
            raise TraceError(f"not a trace artifact: {type(data).__name__}")
        if data.get("kind") != _KIND:
            raise TraceError(
                f"not a trace artifact (kind={data.get('kind')!r})"
            )
        fmt = data.get("format")
        if fmt != TRACE_FORMAT:
            raise TraceError(
                f"unsupported trace format {fmt!r} "
                f"(this build reads {TRACE_FORMAT})"
            )
        try:
            frames = tuple(
                RecordedFrame.from_jsonable(f) for f in data["frames"]
            )
            return cls(
                workload=str(data["workload"]),
                params=dict(decode_payload(data.get("params", {}))),
                seed=int(data["seed"]),
                frames=frames,
                meta=dict(decode_payload(data.get("meta", {}))),
            )
        except TraceError:
            raise
        except Exception as exc:
            raise TraceError(f"malformed trace data: {exc}") from exc

    # -- derived views -------------------------------------------------------

    def channels(self) -> List[str]:
        """Every channel that carried at least one frame, sorted."""
        return sorted({frame.channel for frame in self.frames})

    def channel_sequences(self) -> Dict[str, List[RecordedFrame]]:
        """Per channel, its frames in arrival (== FIFO send) order."""
        sequences: Dict[str, List[RecordedFrame]] = {}
        for frame in sorted(self.frames, key=lambda f: f.index):
            sequences.setdefault(frame.channel, []).append(frame)
        return sequences

    def user_frame_count(self) -> int:
        """How many recorded frames are user messages (not markers)."""
        return sum(1 for frame in self.frames if frame.kind == "user")


def payload_key(kind: str, payload: Any) -> str:
    """Canonical comparison key for one frame's content.

    ``payload`` must already be wire-encoded (frames store it that way;
    encode live objects with ``encode_payload`` first). Canonical JSON
    makes the key stable across dict orderings.
    """
    return json.dumps([kind, payload], sort_keys=True)


def save_trace(artifact: TraceArtifact, path: str) -> str:
    """Write one trace artifact atomically; returns ``path``."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=".trace-", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fp:
            json.dump(artifact.to_jsonable(), fp, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_trace(path: str) -> TraceArtifact:
    """Read one trace artifact; TraceError on unreadable/corrupt files."""
    try:
        with open(path, "r", encoding="utf-8") as fp:
            data = json.load(fp)
    except (OSError, ValueError) as exc:
        raise TraceError(f"cannot read trace {path!r}: {exc}") from exc
    return TraceArtifact.from_jsonable(data)


class TraceStore:
    """Versioned trace artifacts in one directory.

    Artifacts are named ``trace-NNNNNN.json`` with a monotonically
    increasing sequence number; writes are atomic (temp file +
    ``os.replace``), so a crash mid-save never leaves a half-written
    trace where :meth:`latest` would find it — the
    :class:`~repro.recovery.checkpoint.CheckpointStore` discipline.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    # -- write ---------------------------------------------------------------

    def save(self, artifact: TraceArtifact) -> str:
        """Persist one recording; returns the artifact path."""
        seq = self._next_seq()
        path = os.path.join(self.directory, f"trace-{seq:06d}.json")
        return save_trace(artifact, path)

    # -- read ----------------------------------------------------------------

    def sequence_numbers(self) -> List[int]:
        """All stored trace sequence numbers, ascending."""
        seqs = []
        for name in os.listdir(self.directory):
            match = _ARTIFACT_RE.match(name)
            if match:
                seqs.append(int(match.group(1)))
        return sorted(seqs)

    def path_for(self, seq: int) -> str:
        """Artifact path for one sequence number."""
        return os.path.join(self.directory, f"trace-{seq:06d}.json")

    def latest(self) -> Optional[Tuple[int, str]]:
        """``(seq, path)`` of the newest trace, or None if empty."""
        seqs = self.sequence_numbers()
        if not seqs:
            return None
        seq = seqs[-1]
        return seq, self.path_for(seq)

    def load(self, target: Any) -> TraceArtifact:
        """Load one trace by sequence number or by path."""
        path = self.path_for(target) if isinstance(target, int) else str(target)
        return load_trace(path)

    # -- hygiene -------------------------------------------------------------

    def prune(self, keep: int = 3) -> List[str]:
        """Delete all but the newest ``keep`` artifacts; returns removals."""
        if keep < 1:
            raise TraceError(f"keep must be >= 1, got {keep!r}")
        removed = []
        for seq in self.sequence_numbers()[:-keep]:
            path = self.path_for(seq)
            try:
                os.unlink(path)
                removed.append(path)
            except OSError:
                pass
        return removed

    def _next_seq(self) -> int:
        seqs = self.sequence_numbers()
        return (seqs[-1] + 1) if seqs else 1


__all__ = [
    "TRACE_FORMAT",
    "RecordedFrame",
    "TraceArtifact",
    "TraceStore",
    "load_trace",
    "payload_key",
    "save_trace",
]
