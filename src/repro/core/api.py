"""High-level facade: the few calls most users need.

    from repro.core.api import attach_debugger
    from repro.workloads import bank

    topology, processes = bank.build(n=4, transfers=25)
    session = attach_debugger(topology, processes, seed=1)
    session.set_breakpoint("state(balance<500)@branch0")
    outcome = session.run()

Everything here is a thin, documented veneer over the real packages —
nothing happens in this module that you could not do directly.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.breakpoints.detector import BreakpointCoordinator
from repro.debugger.session import DebugSession
from repro.halting.algorithm import HaltingCoordinator
from repro.network.latency import LatencyModel, UniformLatency
from repro.network.topology import Topology
from repro.runtime.process import Process
from repro.runtime.system import System
from repro.snapshot.chandy_lamport import SnapshotCoordinator
from repro.snapshot.state import GlobalState
from repro.util.ids import ChannelId, ProcessId

__all__ = [
    "attach_debugger",
    "build_system",
    "snapshot_now",
    "halt_with_breakpoint",
    "WORKLOADS",
    "build_workload",
]


def build_system(
    topology: Topology,
    processes: Mapping[ProcessId, Process],
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    channel_latencies: Optional[Mapping[ChannelId, LatencyModel]] = None,
    **kwargs: object,
) -> System:
    """A bare instrumented system (no debugging algorithms installed).
    Extra keyword arguments (``fault_plan``, ``reliability``, ``reliable``)
    are forwarded to :class:`~repro.runtime.system.System`."""
    return System(
        topology,
        processes,
        seed=seed,
        latency=latency or UniformLatency(0.4, 1.6),
        channel_latencies=channel_latencies,
        **kwargs,  # type: ignore[arg-type]
    )


def attach_debugger(
    topology: Topology,
    processes: Mapping[ProcessId, Process],
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    **kwargs: object,
) -> DebugSession:
    """The paper's full system: extended topology, debugger process,
    halting + breakpoint machinery. Returns a ready session."""
    return DebugSession(
        topology,
        processes,
        seed=seed,
        latency=latency or UniformLatency(0.4, 1.6),
        **kwargs,  # type: ignore[arg-type]
    )


def snapshot_now(system: System, initiators: Optional[list] = None) -> GlobalState:
    """One-shot Chandy-Lamport snapshot of a (freshly built) system: runs
    the system until the snapshot completes, returns ``S_r``. The system
    keeps its coordinator installed for further snapshots."""
    coordinator = SnapshotCoordinator(system)
    if not system.kernel.pending:
        system.start()
    coordinator.initiate(initiators)
    system.kernel.run(stop_when=coordinator.is_complete)
    return coordinator.collect()


def halt_with_breakpoint(
    topology: Topology,
    processes: Mapping[ProcessId, Process],
    predicate: str,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    max_events: int = 1_000_000,
) -> Tuple[System, GlobalState]:
    """Basic-model one-liner (no debugger process): arm one predicate, run
    to quiescence, return the system and the halted state ``S_h``.

    Only valid on strongly-connected topologies — on anything else use
    :func:`attach_debugger` (that is the point of §2.2.3).
    """
    system = build_system(topology, processes, seed=seed, latency=latency)
    halting = HaltingCoordinator(system)
    breakpoints = BreakpointCoordinator(system)
    breakpoints.set_breakpoint(predicate)
    system.run_to_quiescence(max_events=max_events)
    return system, halting.collect()


# -- workload registry ----------------------------------------------------------

from repro.workloads import (  # noqa: E402 — registry import at the bottom
    bank,
    chatter,
    echo,
    election,
    gossip,
    mutex,
    philosophers,
    pipeline,
    token_ring,
    two_phase_commit,
)

#: Name → build function returning ``(topology, processes)`` (or a 3-tuple
#: with channel latencies for scenarios that need them).
WORKLOADS: Dict[str, Callable] = {
    "bank": bank.build,
    "chatter": chatter.build,
    "echo": echo.build,
    "election": election.build,
    "gossip": gossip.build,
    "mutex": mutex.build,
    "philosophers": philosophers.build,
    "pipeline": pipeline.build,
    "token_ring": token_ring.build,
    "two_phase_commit": two_phase_commit.build,
}


def build_workload(name: str, **params: object):
    """Build a named workload: ``build_workload("bank", n=4)``."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
    return factory(**params)
