"""Public facade for the reproduction. See :mod:`repro.core.api`."""

from repro.core.api import (
    WORKLOADS,
    attach_debugger,
    build_system,
    build_workload,
    halt_with_breakpoint,
    snapshot_now,
)

__all__ = [
    "WORKLOADS",
    "attach_debugger",
    "build_system",
    "build_workload",
    "halt_with_breakpoint",
    "snapshot_now",
]
