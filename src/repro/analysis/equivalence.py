"""Theorem 2 as an executable check: is ``S_h`` the same as ``S_r``?

§2.2.1 claims equality in exactly two clauses:

1. "the state of each process in S_h is the same as the recorded state of
   the corresponding process in S_r" (Lemma 2.1), and
2. "the undelivered messages in each channel in S_h are the same as the
   recorded state of the corresponding channel in S_r" (Lemma 2.2).

:func:`states_equivalent` checks both clauses structurally. It compares the
application-visible content: state dicts, event counts, logical clocks, and
per-channel message sequences (missing channel entries count as empty —
an empty channel may simply not appear in one of the two maps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.snapshot.state import GlobalState


@dataclass
class EquivalenceReport:
    """Outcome of comparing two global states clause by clause."""

    equivalent: bool
    differences: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.equivalent


def states_equivalent(halted: GlobalState, recorded: GlobalState) -> EquivalenceReport:
    """Compare per Theorem 2. Argument order is conventional, not enforced —
    the relation is symmetric."""
    report = EquivalenceReport(equivalent=True)

    # Clause 0 (sanity): same process population.
    halted_names = set(halted.processes)
    recorded_names = set(recorded.processes)
    if halted_names != recorded_names:
        report.differences.append(
            f"process populations differ: only-left={sorted(halted_names - recorded_names)}, "
            f"only-right={sorted(recorded_names - halted_names)}"
        )

    # Clause 1: per-process states.
    for name in sorted(halted_names & recorded_names):
        left, right = halted.processes[name], recorded.processes[name]
        if left.comparable() != right.comparable():
            detail = []
            if left.state != right.state:
                detail.append(f"state {left.state!r} vs {right.state!r}")
            if left.local_seq != right.local_seq:
                detail.append(f"events {left.local_seq} vs {right.local_seq}")
            if (left.lamport, left.vector) != (right.lamport, right.vector):
                detail.append(
                    f"clocks ({left.lamport},{left.vector}) vs "
                    f"({right.lamport},{right.vector})"
                )
            report.differences.append(f"process {name}: " + "; ".join(detail))

    # Clause 2: per-channel undelivered/recorded messages.
    channels = set(halted.channels) | set(recorded.channels)
    for channel in sorted(channels):
        left_keys = (
            halted.channels[channel].content_keys()
            if channel in halted.channels else ()
        )
        right_keys = (
            recorded.channels[channel].content_keys()
            if channel in recorded.channels else ()
        )
        if left_keys != right_keys:
            report.differences.append(
                f"channel {channel}: {len(left_keys)} undelivered "
                f"({left_keys!r}) vs {len(right_keys)} recorded ({right_keys!r})"
            )

    report.equivalent = not report.differences
    return report
