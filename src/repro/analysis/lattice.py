"""The lattice of consistent cuts, with Possibly/Definitely detection.

§3.5 ends with the observation that unordered conjunctive predicates can
only be confirmed by gathering, after the fact. The literature that grew
out of this paper (Cooper & Marzullo's global-predicate detection) made
that precise: a recorded execution induces a *lattice* of consistent cuts,
and an after-the-fact detector can ask

* ``Possibly(φ)`` — some consistent cut satisfies φ (some observation of
  the execution could have seen φ hold), and
* ``Definitely(φ)`` — every observation passes through a cut satisfying φ.

This module implements that machinery over the ground-truth event log: cut
consistency from per-channel send/receive prefix counts, state
reconstruction by replaying STATE_CHANGE events, breadth-first lattice
enumeration, and the two detection modalities. It is the offline complement
of the paper's online detectors: the gather detector of
:mod:`repro.debugger.gather` approximates ``Possibly`` at run time, while a
Linked Predicate witnesses a causal path — a strictly stronger fact than
``Possibly`` and incomparable with ``Definitely``.

Cut representation: a tuple ``c`` with one entry per process (in a fixed
order), ``c[i]`` = how many of process i's events are inside the cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.events.event import EventKind
from repro.events.log import EventLog
from repro.snapshot.state import GlobalState
from repro.util.errors import AnalysisError
from repro.util.ids import ChannelId, ProcessId

Cut = Tuple[int, ...]
CutPredicate = Callable[[Mapping[ProcessId, Mapping[str, object]]], bool]


@dataclass(frozen=True)
class PossiblyResult:
    """Outcome of a Possibly query."""

    holds: bool
    witness: Optional[Cut]
    cuts_explored: int


@dataclass(frozen=True)
class DefinitelyResult:
    """Outcome of a Definitely query."""

    holds: bool
    #: A φ-avoiding observation path (bottom→top), when one exists.
    escape_path_length: Optional[int]
    cuts_explored: int


class CutLattice:
    """All consistent cuts of one recorded execution."""

    def __init__(self, log: EventLog, processes: Optional[Sequence[ProcessId]] = None,
                 max_cuts: int = 250_000) -> None:
        self.processes: Tuple[ProcessId, ...] = tuple(
            processes if processes is not None else sorted(log.processes())
        )
        self._index = {name: i for i, name in enumerate(self.processes)}
        self.max_cuts = max_cuts
        self._events: List[List] = [list(log.for_process(p)) for p in self.processes]
        self._lengths: Cut = tuple(len(evs) for evs in self._events)
        self._send_prefix: Dict[ChannelId, List[int]] = {}
        self._recv_prefix: Dict[ChannelId, List[int]] = {}
        self._build_channel_prefixes()
        self._state_prefixes: List[List[Dict[str, object]]] = [
            self._replay_states(events) for events in self._events
        ]

    # -- construction helpers ------------------------------------------------

    def _build_channel_prefixes(self) -> None:
        for process_index, events in enumerate(self._events):
            del process_index
            for event in events:
                if event.channel is None:
                    continue
                if event.kind is EventKind.SEND:
                    self._ensure_channel(event.channel)
                elif event.kind is EventKind.RECEIVE:
                    self._ensure_channel(event.channel)
        for channel in list(self._send_prefix):
            src_events = self._events_of(channel.src)
            dst_events = self._events_of(channel.dst)
            self._send_prefix[channel] = _prefix_counts(
                src_events, EventKind.SEND, channel
            )
            self._recv_prefix[channel] = _prefix_counts(
                dst_events, EventKind.RECEIVE, channel
            )

    def _ensure_channel(self, channel: ChannelId) -> None:
        if channel.src in self._index and channel.dst in self._index:
            self._send_prefix.setdefault(channel, [])
            self._recv_prefix.setdefault(channel, [])

    def _events_of(self, process: ProcessId) -> List:
        return self._events[self._index[process]]

    @staticmethod
    def _replay_states(events: List) -> List[Dict[str, object]]:
        """State after each prefix length (index k = after k events)."""
        states: List[Dict[str, object]] = [{}]
        current: Dict[str, object] = {}
        for event in events:
            if event.kind is EventKind.STATE_CHANGE and "key" in event.attrs:
                key = event.attrs["key"]
                if event.attrs.get("deleted"):
                    current.pop(key, None)
                else:
                    current[key] = event.attrs["value"]
            states.append(dict(current))
        return states

    # -- cut queries --------------------------------------------------------------

    @property
    def bottom(self) -> Cut:
        return tuple(0 for _ in self.processes)

    @property
    def top(self) -> Cut:
        return self._lengths

    def is_consistent(self, cut: Cut) -> bool:
        """No channel has more receives than sends inside the cut."""
        if len(cut) != len(self.processes):
            raise AnalysisError("cut arity does not match the process set")
        for i, k in enumerate(cut):
            if not 0 <= k <= self._lengths[i]:
                return False
        for channel, send_prefix in self._send_prefix.items():
            src = self._index[channel.src]
            dst = self._index[channel.dst]
            sends = send_prefix[cut[src]]
            receives = self._recv_prefix[channel][cut[dst]]
            if receives > sends:
                return False
        return True

    def state_at(self, cut: Cut) -> Dict[ProcessId, Mapping[str, object]]:
        """Per-process states at the cut (replayed from STATE_CHANGEs)."""
        return {
            name: self._state_prefixes[i][cut[i]]
            for i, name in enumerate(self.processes)
        }

    def successors(self, cut: Cut) -> Iterator[Cut]:
        """Consistent cuts one event above ``cut``."""
        for i in range(len(cut)):
            if cut[i] < self._lengths[i]:
                candidate = cut[:i] + (cut[i] + 1,) + cut[i + 1:]
                if self.is_consistent(candidate):
                    yield candidate

    def enumerate_cuts(self) -> Iterator[Cut]:
        """All consistent cuts, breadth-first from the bottom."""
        seen = {self.bottom}
        frontier = [self.bottom]
        yield self.bottom
        while frontier:
            next_frontier: List[Cut] = []
            for cut in frontier:
                for successor in self.successors(cut):
                    if successor in seen:
                        continue
                    seen.add(successor)
                    if len(seen) > self.max_cuts:
                        raise AnalysisError(
                            f"lattice exceeds max_cuts={self.max_cuts}; "
                            "use a smaller run or raise the bound"
                        )
                    next_frontier.append(successor)
                    yield successor
            frontier = next_frontier

    def count_cuts(self) -> int:
        return sum(1 for _ in self.enumerate_cuts())

    def cut_of_state(self, state: GlobalState) -> Cut:
        """The lattice cut a captured global state corresponds to."""
        cut = []
        for name in self.processes:
            snapshot = state.processes.get(name)
            if snapshot is None:
                raise AnalysisError(f"state lacks process {name}")
            cut.append(snapshot.local_seq)
        return tuple(cut)

    # -- detection modalities ----------------------------------------------------------

    def possibly(self, predicate: CutPredicate) -> PossiblyResult:
        """Does φ hold at some consistent cut?"""
        explored = 0
        for cut in self.enumerate_cuts():
            explored += 1
            if predicate(self.state_at(cut)):
                return PossiblyResult(holds=True, witness=cut, cuts_explored=explored)
        return PossiblyResult(holds=False, witness=None, cuts_explored=explored)

    def definitely(self, predicate: CutPredicate) -> DefinitelyResult:
        """Does every observation pass through a φ-cut?

        Equivalent formulation: there is *no* bottom→top path through
        ¬φ-cuts only. We search for such an escape path.
        """
        explored = 0

        def phi(cut: Cut) -> bool:
            return predicate(self.state_at(cut))

        if phi(self.bottom):
            return DefinitelyResult(holds=True, escape_path_length=None,
                                    cuts_explored=1)
        if self.bottom == self.top:
            # The empty execution's single observation never sees φ.
            return DefinitelyResult(holds=False, escape_path_length=0,
                                    cuts_explored=1)
        seen = {self.bottom}
        frontier = [self.bottom]
        depth = 0
        while frontier:
            depth += 1
            next_frontier: List[Cut] = []
            for cut in frontier:
                for successor in self.successors(cut):
                    if successor in seen:
                        continue
                    seen.add(successor)
                    explored += 1
                    if explored > self.max_cuts:
                        raise AnalysisError(
                            f"lattice exceeds max_cuts={self.max_cuts}"
                        )
                    if phi(successor):
                        continue  # observations through here hit φ... avoid
                    if successor == self.top:
                        return DefinitelyResult(
                            holds=False, escape_path_length=depth,
                            cuts_explored=explored,
                        )
                    next_frontier.append(successor)
            frontier = next_frontier
        return DefinitelyResult(holds=True, escape_path_length=None,
                                cuts_explored=explored)


def _prefix_counts(events: List, kind: EventKind, channel: ChannelId) -> List[int]:
    counts = [0]
    running = 0
    for event in events:
        if event.kind is kind and event.channel == channel:
            running += 1
        counts.append(running)
    return counts


def state_predicate(**conditions: Callable[[object], bool]) -> CutPredicate:
    """Build a cut predicate from per-``process.key`` conditions, e.g.::

        state_predicate(**{"branch0.balance": lambda v: v is not None and v < 500})
    """
    parsed = []
    for dotted, condition in conditions.items():
        process, _, key = dotted.partition(".")
        if not key:
            raise AnalysisError(f"condition key must be 'process.key', got {dotted!r}")
        parsed.append((process, key, condition))

    def predicate(states: Mapping[ProcessId, Mapping[str, object]]) -> bool:
        for process, key, condition in parsed:
            if process not in states:
                return False
            if not condition(states[process].get(key)):
                return False
        return True

    return predicate
