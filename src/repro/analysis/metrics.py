"""Quantitative metrics for the experiment harnesses.

These turn the paper's qualitative claims (§4's criticisms of naive halting
and hub rerouting, §5's "minimal change" promise) into measured numbers:

* **drift** — how far past a reference cut each process executed before it
  actually stopped (0 everywhere for the Halting Algorithm vs the matching
  snapshot, growing with latency x message-rate for the naive baseline);
* **overhead** — debugging-system messages per user message;
* **halt latency / span** — how long halting took and how skewed the halt
  instants were.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.runtime.system import System
from repro.snapshot.state import GlobalState
from repro.util.ids import ProcessId


@dataclass
class DriftReport:
    """Events executed past a reference cut, per process."""

    per_process: Dict[ProcessId, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.per_process.values())

    @property
    def maximum(self) -> int:
        return max(self.per_process.values(), default=0)

    @property
    def processes_past_cut(self) -> int:
        return sum(1 for drift in self.per_process.values() if drift > 0)


def drift_between(reference: GlobalState, actual: GlobalState) -> DriftReport:
    """How far each process in ``actual`` ran past the ``reference`` cut.

    Negative drift (stopping *before* the reference) is reported as-is; for
    the marker-based Halting Algorithm both directions are zero because
    ``S_h`` equals ``S_r`` exactly.
    """
    report = DriftReport()
    for name, ref_snap in reference.processes.items():
        actual_snap = actual.processes.get(name)
        if actual_snap is None:
            continue
        report.per_process[name] = actual_snap.local_seq - ref_snap.local_seq
    return report


@dataclass(frozen=True)
class OverheadReport:
    """Message accounting for one run."""

    user_messages: int
    control_messages: int
    by_kind: Mapping[str, int]

    @property
    def control_per_user(self) -> float:
        if self.user_messages == 0:
            return float(self.control_messages)
        return self.control_messages / self.user_messages


def message_overhead(system: System) -> OverheadReport:
    totals = system.message_totals()
    user = totals.get("user", 0)
    control = sum(count for kind, count in totals.items() if kind != "user")
    return OverheadReport(
        user_messages=user, control_messages=control, by_kind=dict(totals)
    )


@dataclass(frozen=True)
class HaltTimingReport:
    """When processes actually froze."""

    initiated_at: float
    first_halt: float
    last_halt: float

    @property
    def latency(self) -> float:
        """Initiation to full stop."""
        return self.last_halt - self.initiated_at

    @property
    def span(self) -> float:
        """Skew between the first and last process freezing — the physical
        non-simultaneity the paper says we must tolerate (§1)."""
        return self.last_halt - self.first_halt


def halt_timing(state: GlobalState, initiated_at: float) -> Optional[HaltTimingReport]:
    times = [snap.time for snap in state.processes.values()]
    if not times:
        return None
    return HaltTimingReport(
        initiated_at=initiated_at,
        first_halt=min(times),
        last_halt=max(times),
    )


def mean_user_latency(system: System) -> float:
    """Average delivery latency of user messages (hub-perturbation metric)."""
    total = 0.0
    count = 0
    for channel in system.channels():
        total += channel.stats.total_latency
        count += channel.stats.delivered
    return total / count if count else 0.0
