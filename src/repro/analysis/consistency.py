"""Cut-consistency checking (the property behind Theorem 1).

A global state defines a *cut*: for every process, a prefix of its local
event sequence (everything up to the captured ``local_seq``). The state is
consistent when:

1. **No orphan messages** — nothing is received inside the cut that was sent
   outside it (a receive without its send would be an effect without cause).
2. **Channel exactness** — each channel's recorded state is exactly the
   messages sent inside the sender's cut but not yet received inside the
   receiver's cut, in FIFO order.
3. **Frontier knowledge** — the paper's §2 claim: "the halted state of a
   process is not affected by the halted state of the other process". In
   vector-clock terms: no captured state may know more about process p than
   p's own captured state does (``V_q[p] <= V_p[p]`` for all p, q). Note
   this is *weaker* than pairwise vector concurrency — a state may
   legitimately sit causally after another's (receiving a message sent
   before the sender's cut, inside the receiver's cut, is consistent).

The checker works from the ground-truth event log, entirely outside the
algorithms under test — it is the oracle, not the subject.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.events.event import EventKind
from repro.events.log import EventLog
from repro.snapshot.state import GlobalState
from repro.util.ids import ChannelId, ProcessId


@dataclass
class ConsistencyReport:
    """Outcome of checking one global state against the event log."""

    consistent: bool
    violations: List[str] = field(default_factory=list)
    #: Messages in transit per channel according to the log (ground truth).
    expected_in_transit: Dict[ChannelId, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.consistent


def check_cut_consistency(log: EventLog, state: GlobalState) -> ConsistencyReport:
    """Verify the three consistency clauses for ``state`` against ``log``."""
    report = ConsistencyReport(consistent=True)
    cut = {name: snap.local_seq for name, snap in state.processes.items()}

    _check_channels(log, state, cut, report)
    _check_frontier_concurrency(state, report)

    report.consistent = not report.violations
    return report


def _check_channels(
    log: EventLog,
    state: GlobalState,
    cut: Mapping[ProcessId, int],
    report: ConsistencyReport,
) -> None:
    sends_by_channel: Dict[ChannelId, List] = {}
    receives_by_channel: Dict[ChannelId, List] = {}
    for event in log:
        if event.kind is EventKind.SEND and event.channel is not None:
            sends_by_channel.setdefault(event.channel, []).append(event)
        elif event.kind is EventKind.RECEIVE and event.channel is not None:
            receives_by_channel.setdefault(event.channel, []).append(event)

    channels = set(sends_by_channel) | set(receives_by_channel) | set(state.channels)
    for channel in sorted(channels):
        src, dst = channel.src, channel.dst
        if src not in cut or dst not in cut:
            # Channel touches a process outside the captured population
            # (e.g. debugger control channels) — not part of the state.
            continue
        sends = sends_by_channel.get(channel, [])
        receives = receives_by_channel.get(channel, [])
        cut_sends = [e for e in sends if e.local_seq <= cut[src]]
        cut_receives = [e for e in receives if e.local_seq <= cut[dst]]

        if len(cut_receives) > len(cut_sends):
            report.violations.append(
                f"{channel}: {len(cut_receives)} receives inside the cut but "
                f"only {len(cut_sends)} sends — orphan message(s)"
            )
            continue

        in_transit = cut_sends[len(cut_receives):]
        report.expected_in_transit[channel] = len(in_transit)
        recorded = state.pending_on(channel)
        if len(recorded) != len(in_transit):
            report.violations.append(
                f"{channel}: recorded channel state has {len(recorded)} "
                f"messages, log says {len(in_transit)} were in transit"
            )
            continue
        for position, (send_event, message) in enumerate(zip(in_transit, recorded)):
            if _payload_key(send_event.message) != _payload_key(message.payload):
                report.violations.append(
                    f"{channel}[{position}]: recorded {message.payload!r} but "
                    f"log says {send_event.message!r} was in transit"
                )


def _check_frontier_concurrency(state: GlobalState, report: ConsistencyReport) -> None:
    snaps = list(state.processes.values())
    if not snaps or not snaps[0].vector:
        return
    for owner in snaps:
        own_knowledge = owner.vector[owner.vector_index]
        for other in snaps:
            if other.process == owner.process:
                continue
            if other.vector[owner.vector_index] > own_knowledge:
                report.violations.append(
                    f"captured state of {other.process} knows "
                    f"{other.vector[owner.vector_index]} events of "
                    f"{owner.process}, but {owner.process}'s own captured "
                    f"state has only {own_knowledge} — {other.process} saw "
                    f"an effect whose cause is outside the cut"
                )


def _payload_key(value: object) -> object:
    if isinstance(value, dict):
        return tuple(sorted((k, _payload_key(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_payload_key(v) for v in value)
    return value


def cut_of(state: GlobalState) -> Dict[ProcessId, int]:
    """The cut (per-process local_seq frontier) a global state defines."""
    return {name: snap.local_seq for name, snap in state.processes.items()}


def events_inside_cut(log: EventLog, state: GlobalState) -> List:
    """All logged events inside the state's cut (user-population only)."""
    cut = cut_of(state)
    return [
        e for e in log
        if e.process in cut and e.local_seq <= cut[e.process]
    ]
