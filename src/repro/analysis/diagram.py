"""ASCII space-time diagrams of recorded executions.

The classic way to *see* a distributed execution (and the way Lamport's and
this paper's figures draw them): one lane per process, time flowing down,
message arrows between lanes. The renderer works from the ground-truth
event log, marks halt points, and can restrict to a time window — the
debugger CLI's ``diagram`` command uses it, and it makes worked examples
legible.

Output shape (lanes are fixed-width columns)::

    t=6.17     p0 ●recv(token)
    t=6.17     p0 ●state(tokens_seen)
    t=7.02     p1 ●send(token)        ~~> p2
    t=8.30     p2 ●recv(token)
    ...

plus, optionally, a per-process summary header.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.events.event import Event, EventKind
from repro.events.log import EventLog
from repro.snapshot.state import GlobalState
from repro.util.ids import ProcessId

_GLYPHS = {
    EventKind.SEND: "↦",
    EventKind.RECEIVE: "↤",
    EventKind.PROCEDURE_ENTRY: "⟨",
    EventKind.PROCEDURE_EXIT: "⟩",
    EventKind.STATE_CHANGE: "•",
    EventKind.TIMER: "◷",
    EventKind.PROCESS_CREATED: "✚",
    EventKind.PROCESS_TERMINATED: "✖",
    EventKind.CHANNEL_CREATED: "⊕",
    EventKind.CHANNEL_DESTROYED: "⊖",
}

_ASCII_GLYPHS = {
    EventKind.SEND: ">",
    EventKind.RECEIVE: "<",
    EventKind.PROCEDURE_ENTRY: "(",
    EventKind.PROCEDURE_EXIT: ")",
    EventKind.STATE_CHANGE: "*",
    EventKind.TIMER: "T",
    EventKind.PROCESS_CREATED: "+",
    EventKind.PROCESS_TERMINATED: "x",
    EventKind.CHANNEL_CREATED: "{",
    EventKind.CHANNEL_DESTROYED: "}",
}


def render_spacetime(
    log: EventLog,
    processes: Optional[Sequence[ProcessId]] = None,
    start: float = 0.0,
    end: Optional[float] = None,
    max_rows: int = 200,
    kinds: Optional[Iterable[EventKind]] = None,
    halted_state: Optional[GlobalState] = None,
    unicode_glyphs: bool = True,
) -> str:
    """Render the execution as one text block.

    ``halted_state`` draws a ``━━ HALT ━━`` bar at each process's halt
    point. ``kinds`` filters the event classes shown (state changes are
    noisy; pass e.g. ``{SEND, RECEIVE, TIMER}`` for a traffic-only view).
    """
    lanes: Tuple[ProcessId, ...] = tuple(
        processes if processes is not None else sorted(log.processes())
    )
    lane_index = {name: i for i, name in enumerate(lanes)}
    glyphs = _GLYPHS if unicode_glyphs else _ASCII_GLYPHS
    wanted = set(kinds) if kinds is not None else None

    halt_seq: Dict[ProcessId, int] = {}
    if halted_state is not None:
        halt_seq = {
            name: snap.local_seq
            for name, snap in halted_state.processes.items()
        }

    width = max((len(name) for name in lanes), default=4) + 2
    header = "time      " + "".join(name.ljust(width) for name in lanes)
    rule = "-" * len(header)
    rows: List[str] = [header, rule]

    shown = 0
    halted_drawn: Dict[ProcessId, bool] = {}
    for event in log:
        if event.process not in lane_index:
            continue
        if event.time < start or (end is not None and event.time > end):
            continue
        if wanted is not None and event.kind not in wanted:
            continue
        if shown >= max_rows:
            rows.append(f"... ({len(log)} events total; truncated at {max_rows} rows)")
            break
        lane = lane_index[event.process]
        label = _label(event, glyphs)
        cells = ["".ljust(width)] * len(lanes)
        cells[lane] = label.ljust(width)
        arrow = ""
        if event.kind is EventKind.SEND and event.channel is not None:
            arrow = f"~~> {event.channel.dst}"
        elif event.kind is EventKind.RECEIVE and event.channel is not None:
            arrow = f"<~~ {event.channel.src}"
        rows.append(f"t={event.time:7.2f}  " + "".join(cells) + arrow)
        shown += 1
        if (
            event.process in halt_seq
            and event.local_seq == halt_seq[event.process]
            and not halted_drawn.get(event.process)
        ):
            halted_drawn[event.process] = True
            cells = ["".ljust(width)] * len(lanes)
            bar = "== HALT ==" if not unicode_glyphs else "━━ HALT ━━"
            cells[lane] = bar.ljust(width)
            rows.append(" " * 11 + "".join(cells))
    return "\n".join(rows)


_SHORT = {
    EventKind.SEND: "send",
    EventKind.RECEIVE: "recv",
    EventKind.PROCEDURE_ENTRY: "enter",
    EventKind.PROCEDURE_EXIT: "exit",
    EventKind.STATE_CHANGE: "set",
    EventKind.TIMER: "timer",
    EventKind.PROCESS_CREATED: "start",
    EventKind.PROCESS_TERMINATED: "term",
    EventKind.CHANNEL_CREATED: "mkchan",
    EventKind.CHANNEL_DESTROYED: "rmchan",
}


def _label(event: Event, glyphs: Dict[EventKind, str]) -> str:
    glyph = glyphs.get(event.kind, "?")
    short = _SHORT.get(event.kind, event.kind.value[:6])
    detail = event.detail or ""
    if detail:
        return f"{glyph}{short}({detail[:10]})"
    return f"{glyph}{short}"


def render_summary(log: EventLog) -> str:
    """Per-process one-line summaries: event counts by kind."""
    lines = []
    for process in sorted(log.processes()):
        events = log.for_process(process)
        by_kind: Dict[str, int] = {}
        for event in events:
            by_kind[event.kind.value] = by_kind.get(event.kind.value, 0) + 1
        parts = ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items()))
        lines.append(f"{process:12s} {len(events):5d} events  ({parts})")
    return "\n".join(lines)
