"""Oracles and metrics: consistency, Theorem-2 equivalence, drift, overhead."""

from repro.analysis.consistency import (
    ConsistencyReport,
    check_cut_consistency,
    cut_of,
    events_inside_cut,
)
from repro.analysis.equivalence import EquivalenceReport, states_equivalent
from repro.analysis.diagram import render_spacetime, render_summary
from repro.analysis.lattice import (
    CutLattice,
    DefinitelyResult,
    PossiblyResult,
    state_predicate,
)
from repro.analysis.order import OrderStats, compute_order_stats
from repro.analysis.metrics import (
    DriftReport,
    HaltTimingReport,
    OverheadReport,
    drift_between,
    halt_timing,
    mean_user_latency,
    message_overhead,
)

__all__ = [
    "ConsistencyReport",
    "CutLattice",
    "DefinitelyResult",
    "DriftReport",
    "EquivalenceReport",
    "HaltTimingReport",
    "OrderStats",
    "OverheadReport",
    "PossiblyResult",
    "check_cut_consistency",
    "compute_order_stats",
    "cut_of",
    "drift_between",
    "events_inside_cut",
    "halt_timing",
    "mean_user_latency",
    "message_overhead",
    "render_spacetime",
    "render_summary",
    "state_predicate",
    "states_equivalent",
]
