"""Execution-order statistics: concurrency, critical path, message depth.

Numbers that characterize *how distributed* a recorded execution was —
useful in reports and in judging whether a workload actually exercises
concurrency (a fully sequential "distributed" test proves little about the
halting algorithm).

* **concurrency ratio** — fraction of event pairs that are concurrent
  (0 for a fully sequential execution, →1 for fully independent ones);
* **critical path** — the longest happened-before chain; its length over
  the total event count bounds the speedup any scheduler could get;
* **message depth** — the longest chain counting only cross-process hops,
  i.e. how many sequential network latencies the execution needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.events.event import Event, EventKind
from repro.events.log import EventLog
from repro.util.errors import AnalysisError


@dataclass(frozen=True)
class OrderStats:
    """Summary statistics of one execution's causal structure."""

    events: int
    ordered_pairs: int
    concurrent_pairs: int
    critical_path_length: int
    message_depth: int

    @property
    def concurrency_ratio(self) -> float:
        total = self.ordered_pairs + self.concurrent_pairs
        return self.concurrent_pairs / total if total else 0.0

    @property
    def parallelism(self) -> float:
        """events / critical path — the average width of the execution."""
        if self.critical_path_length == 0:
            return 0.0
        return self.events / self.critical_path_length


def compute_order_stats(log: EventLog, max_events: int = 4000) -> OrderStats:
    """O(n²) pairwise statistics plus DAG longest paths.

    The happened-before DAG is reconstructed from program order plus
    matched send/receive pairs (FIFO ordinal matching per channel).
    """
    events = list(log)
    if len(events) > max_events:
        raise AnalysisError(
            f"log has {len(events)} events (> {max_events}); sample it first"
        )

    # Build successor lists: program order + message edges.
    successors: Dict[int, List[int]] = {e.eid: [] for e in events}
    by_process: Dict[str, List[Event]] = {}
    for event in events:
        by_process.setdefault(event.process, []).append(event)
    for sequence in by_process.values():
        for a, b in zip(sequence, sequence[1:]):
            successors[a.eid].append(b.eid)

    sends: Dict[Tuple[str, int], Event] = {}
    counters: Dict[str, int] = {}
    receives: Dict[Tuple[str, int], Event] = {}
    recv_counters: Dict[str, int] = {}
    message_edges = []
    for event in events:
        if event.channel is None:
            continue
        channel = str(event.channel)
        if event.kind is EventKind.SEND:
            ordinal = counters.get(channel, 0)
            counters[channel] = ordinal + 1
            sends[(channel, ordinal)] = event
        elif event.kind is EventKind.RECEIVE:
            ordinal = recv_counters.get(channel, 0)
            recv_counters[channel] = ordinal + 1
            receives[(channel, ordinal)] = event
    for key, receive in receives.items():
        send = sends.get(key)
        if send is not None:
            successors[send.eid].append(receive.eid)
            message_edges.append((send.eid, receive.eid))

    # Longest paths over the DAG (events are topologically ordered by eid:
    # every edge goes from a lower eid to a higher one — program order and
    # send-before-receive both guarantee it).
    depth: Dict[int, int] = {}
    message_hops: Dict[int, int] = {}
    message_edge_set = set(message_edges)
    for event in events:
        depth.setdefault(event.eid, 1)
        message_hops.setdefault(event.eid, 0)
        for nxt in successors[event.eid]:
            depth[nxt] = max(depth.get(nxt, 1), depth[event.eid] + 1)
            hop = 1 if (event.eid, nxt) in message_edge_set else 0
            message_hops[nxt] = max(
                message_hops.get(nxt, 0), message_hops[event.eid] + hop
            )

    ordered = 0
    concurrent = 0
    for i, a in enumerate(events):
        for b in events[i + 1:]:
            if a.happened_before(b) or b.happened_before(a):
                ordered += 1
            else:
                concurrent += 1

    return OrderStats(
        events=len(events),
        ordered_pairs=ordered,
        concurrent_pairs=concurrent,
        critical_path_length=max(depth.values(), default=0),
        message_depth=max(message_hops.values(), default=0),
    )
