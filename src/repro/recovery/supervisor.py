"""The cluster supervisor: crash recovery by rollback to a consistent cut.

Theorem 2's equality ``S_h == S_r`` makes every consistent cut a valid
recovery point, and the distributed backend can already *produce* those
cuts (halt → collect) and *restore* them (``ClusterSpec.restore_checkpoint``
→ each child preloads its snapshot and re-sends pending channel traffic).
The :class:`ClusterSupervisor` closes the loop: it runs the cluster as a
sequence of *incarnations*, periodically turning halts into durable
checkpoints, and when a child dies — SIGKILL, a :class:`FaultPlan` crash,
or any fail-stop — it tears the whole incarnation down and relaunches
every process from the last checkpoint.

Recovery is deliberately *coordinated* (Koo–Toueg style): restoring only
the victim would need message logging to stay consistent with survivors
that have already moved past the cut, whereas rolling everyone back to
one consistent cut is correct by the same argument that makes the cut a
snapshot. The cost is lost progress since the last checkpoint, which is
why the checkpoint cadence is the supervisor's main tuning knob.

Fault plans carry over across incarnations with *one-shot-per-campaign*
semantics: a crash that already fired is removed (otherwise recovery
would loop forever), and time-windowed faults (stalls, partitions) are
rewritten relative to the checkpoint's virtual time, so a partition that
was scheduled for the future still happens after the rollback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.distributed.session import DistributedDebugSession
from repro.distributed.spec import ClusterSpec
from repro.faults.plan import FaultPlan
from repro.recovery.checkpoint import CheckpointStore
from repro.snapshot.state import GlobalState
from repro.util.errors import CheckpointError, HaltingError, RecoveryError
from repro.util.ids import ProcessId

if False:  # pragma: no cover - typing only
    from repro.observe.integrate import Observability

#: ``validate`` callback: returns a violation message, or None if the cut
#: satisfies the workload's conservation law and is safe to checkpoint.
Validator = Callable[[GlobalState], Optional[str]]


@dataclass(frozen=True)
class RecoveryEvent:
    """One completed recovery: who died, what we rolled back to, how long."""

    #: Processes whose OS process was found dead.
    victims: Tuple[ProcessId, ...]
    #: Sequence number of the checkpoint restored, or None when no
    #: checkpoint existed yet and the cluster restarted from its initial
    #: state (the empty cut is also consistent).
    checkpoint_seq: Optional[int]
    #: Incarnation index *after* this recovery (the first launch is 0).
    incarnation: int
    #: Wall-clock time (``time.time()``) the deaths were acted upon.
    detected_at: float
    #: Seconds tearing down the old incarnation (survivor shutdown,
    #: corpse reaping, socket close).
    teardown_s: float
    #: Seconds relaunching: spawn, port rendezvous, checkpoint restore,
    #: channel replay, go.
    restart_s: float

    @property
    def total_s(self) -> float:
        """Detection-to-restored recovery latency, wall seconds."""
        return self.teardown_s + self.restart_s


class ClusterSupervisor:
    """Run a distributed cluster under checkpoint/restart supervision.

    The supervisor owns the session lifecycle: ``start()`` launches
    incarnation 0, :meth:`checkpoint` turns a whole-cluster halt into a
    durable artifact, :meth:`poll` reports children whose OS process has
    died, and :meth:`recover` rolls the cluster back to the last
    checkpoint. The driving loop (a test, or :mod:`repro.recovery.chaos`)
    decides *when* to do each.
    """

    def __init__(
        self,
        workload: str,
        params: Optional[dict] = None,
        seed: int = 0,
        time_scale: float = 0.02,
        fault_plan: Optional[FaultPlan] = None,
        store: Union[str, CheckpointStore, None] = None,
        observe: Optional["Observability"] = None,
        validate: Optional[Validator] = None,
        max_recoveries: int = 5,
        keep_checkpoints: int = 3,
        on_incarnation: Optional[Callable[[DistributedDebugSession], None]] = None,
    ) -> None:
        if store is None:
            raise RecoveryError(
                "a checkpoint store (directory path or CheckpointStore) "
                "is required"
            )
        self.workload = workload
        self.params = dict(params or {})
        self.seed = seed
        self.time_scale = time_scale
        self.store = store if isinstance(store, CheckpointStore) else (
            CheckpointStore(store)
        )
        self.observe = observe
        self.validate = validate
        self.max_recoveries = max_recoveries
        self.keep_checkpoints = keep_checkpoints
        #: The fault plan for the *current* incarnation (rewritten at
        #: every recovery; see :meth:`_remaining_plan`).
        self.plan: Optional[FaultPlan] = fault_plan
        #: Called with each incarnation's freshly started session — the
        #: debugger service re-arms its breakpoint registry here, which is
        #: how pending/armed breakpoints survive a recovery (the markers
        #: armed on the dead cluster died with it).
        self.on_incarnation = on_incarnation
        self.session: Optional[DistributedDebugSession] = None
        self.incarnation = 0
        self.recoveries: List[RecoveryEvent] = []
        #: seq -> incarnation-relative virtual time the checkpoint froze.
        self._checkpoint_virtual: Dict[int, float] = {}
        self._wall0 = 0.0
        self._paused_wall = 0.0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Launch incarnation 0 from the initial state."""
        if self.session is not None:
            return
        self._launch(restore=None)

    def shutdown(self) -> None:
        if self.session is not None:
            self.session.shutdown()
            self.session = None

    def __enter__(self) -> "ClusterSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def _launch(self, restore: Optional[str]) -> None:
        spec = ClusterSpec.plan(
            self.workload,
            self.params,
            seed=self.seed,
            time_scale=self.time_scale,
            fault_plan=self.plan,
        )
        if restore is not None:
            spec = replace(spec, restore_checkpoint=restore)
        session = DistributedDebugSession(
            spec.workload, spec=spec, observe=self.observe
        )
        session.start()
        self.session = session
        self._wall0 = time.monotonic()
        self._paused_wall = 0.0
        if self.on_incarnation is not None:
            self.on_incarnation(session)

    def _require_session(self) -> DistributedDebugSession:
        if self.session is None:
            raise RecoveryError("supervisor is not running; call start()")
        return self.session

    def _virtual_now(self) -> float:
        """Virtual time elapsed in the current incarnation.

        Wall time since launch, minus time the cluster spent halted for
        checkpoints, over ``time_scale`` — an estimate (scheduling skew is
        real), but fault windows are coarse enough for it.
        """
        if self.session is None:
            return 0.0
        elapsed = time.monotonic() - self._wall0 - self._paused_wall
        return max(0.0, elapsed) / (self.time_scale or 1.0)

    # -- supervision -----------------------------------------------------------

    def poll(self) -> Tuple[ProcessId, ...]:
        """Children whose OS process is dead right now, sorted."""
        session = self._require_session()
        return tuple(sorted(
            name for name in session.spec.user_names
            if not session.alive(name)
        ))

    def checkpoint(
        self, timeout: float = 10.0, probe_grace: float = 2.0
    ) -> Optional[Tuple[int, str]]:
        """Halt the whole cluster, persist the cut, resume.

        Returns ``(seq, path)`` of the new artifact, or None when no
        whole-cluster cut was available: a member died mid-halt, the halt
        never converged, or the watchdog reported dead/unresolved members.
        Survivors are resumed either way, so a failed checkpoint leaves
        the campaign running — recovery is :meth:`poll`'s job.

        When a ``validate`` callback is installed, a cut that violates the
        workload's conservation law raises :class:`CheckpointError`
        (after resuming): persisting a corrupt cut would turn one bug into
        a permanently wrong recovery point.
        """
        session = self._require_session()
        pause0 = time.monotonic()
        try:
            report = session.halt_with_watchdog(
                timeout=timeout, probe_grace=probe_grace
            )
            if not report.complete:
                session.resume(allow_partial=True)
                return None
            state = session.collect_global_state(timeout=timeout)
            if self.validate is not None:
                violation = self.validate(state)
                if violation:
                    session.resume(allow_partial=True)
                    raise CheckpointError(
                        f"refusing to persist a violating cut: {violation}"
                    )
            virtual = self._virtual_now()
            path = self.store.save(state, extra_meta={
                "incarnation": self.incarnation,
                "virtual_elapsed": virtual,
            })
            latest = self.store.latest()
            assert latest is not None
            seq = latest[0]
            self._checkpoint_virtual[seq] = virtual
            if not session.resume(allow_partial=True) and not self.poll():
                # Everyone is alive yet nobody confirmed the resume: the
                # cluster is wedged, and saving more identical cuts of it
                # would loop forever. Surface it. (When the failure is a
                # member dying mid-resume, poll() is non-empty and the
                # caller's recovery loop handles the corpse instead.)
                raise RecoveryError(
                    "cluster failed to confirm resume after checkpoint "
                    f"{seq}; it may be partitioned or wedged"
                )
            self.store.prune(keep=self.keep_checkpoints)
            return seq, path
        except HaltingError:
            # Convergence or collection failed — typically a crash racing
            # the halt. Best-effort resume; the caller's poll() will see
            # the corpse.
            try:
                session.resume(allow_partial=True)
            except HaltingError:  # pragma: no cover - resume is lenient
                pass
            return None
        finally:
            self._paused_wall += time.monotonic() - pause0

    def recover(
        self, victims: Optional[Tuple[ProcessId, ...]] = None
    ) -> RecoveryEvent:
        """Roll the whole cluster back to the last checkpoint.

        Tears down the current incarnation (survivors get an orderly
        shutdown; corpses are reaped), rewrites the fault plan so spent
        faults cannot re-fire, and relaunches every process with
        ``restore_checkpoint`` pointing at the newest artifact — or from
        the initial state when none exists yet.
        """
        session = self._require_session()
        victims = tuple(sorted(
            victims if victims is not None else self.poll()
        ))
        if not victims:
            raise RecoveryError("recover() called with no dead processes")
        if len(self.recoveries) >= self.max_recoveries:
            raise RecoveryError(
                f"recovery budget exhausted ({self.max_recoveries}); "
                f"latest victims: {list(victims)}"
            )
        detected_at = time.time()
        t0 = time.monotonic()
        session.shutdown()
        self.session = None
        t1 = time.monotonic()
        latest = self.store.latest()
        if latest is not None:
            checkpoint_seq, restore_path = latest
            rollback_virtual = self._checkpoint_virtual.get(
                checkpoint_seq, 0.0
            )
        else:
            checkpoint_seq, restore_path = None, None
            rollback_virtual = 0.0
        self.plan = self._remaining_plan(victims, rollback_virtual)
        self._launch(restore=restore_path)
        t2 = time.monotonic()
        self.incarnation += 1
        # The restored incarnation's clock restarts at the checkpoint's
        # cut, and the rewritten plan is relative to that — so is the
        # recorded virtual time of any checkpoint it will take.
        self._checkpoint_virtual = {}
        event = RecoveryEvent(
            victims=victims,
            checkpoint_seq=checkpoint_seq,
            incarnation=self.incarnation,
            detected_at=detected_at,
            teardown_s=t1 - t0,
            restart_s=t2 - t1,
        )
        self.recoveries.append(event)
        if self.observe is not None:
            self.observe.note_recovery(event)
        return event

    def _remaining_plan(
        self, victims: Tuple[ProcessId, ...], rollback_virtual: float
    ) -> Optional[FaultPlan]:
        """The fault plan for the next incarnation.

        One-shot-per-campaign: crashes of the victims are removed (they
        fired — keeping them would crash-loop the cluster), as is any
        timed crash whose moment is already behind the rollback point.
        Stall and partition windows are shifted to the new incarnation's
        clock (which restarts at the checkpoint): finished windows drop
        out, in-progress ones keep their remainder, future ones keep
        their full width.
        """
        plan = self.plan
        if plan is None:
            return None
        dead = set(victims)
        v = rollback_virtual
        crashes = []
        for crash in plan.crashes:
            if crash.process in dead:
                continue
            if crash.at_time is not None:
                if crash.at_time <= v:
                    continue  # already behind the rollback point
                crashes.append(replace(crash, at_time=crash.at_time - v))
            else:
                # after_events counts local events; the restored
                # controller continues from the snapshot's sequence, so
                # the spec carries over unchanged.
                crashes.append(crash)
        stalls = []
        for stall in plan.stalls:
            end = stall.at_time + stall.duration - v
            if end <= 0:
                continue
            start = max(0.0, stall.at_time - v)
            stalls.append(replace(
                stall, at_time=start, duration=end - start
            ))
        partitions = []
        for partition in plan.partitions:
            end = partition.end_time - v
            if end <= 0:
                continue
            start = max(0.0, partition.at_time - v)
            partitions.append(replace(
                partition, at_time=start, duration=end - start
            ))
        return replace(
            plan,
            crashes=tuple(crashes),
            stalls=tuple(stalls),
            partitions=tuple(partitions),
        )


__all__ = ["ClusterSupervisor", "RecoveryEvent"]
