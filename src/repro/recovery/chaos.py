"""Seeded chaos campaigns: crash it, partition it, prove it still adds up.

A campaign runs one workload on the distributed backend under a
:class:`~repro.faults.plan.FaultPlan` that contains at least one crash
and one partition, with the :class:`~repro.recovery.supervisor.
ClusterSupervisor` taking periodic checkpoints and rolling the cluster
back whenever a child dies. The campaign's claims are falsifiable:

* every victim is recovered (from the newest checkpoint, or the initial
  state when it died before the first one),
* every persisted checkpoint satisfies the workload's conservation law
  (:mod:`repro.recovery.invariants` gates the save),
* the workload still *finishes its job* — the token completes its hops,
  the pipeline drains — despite the mayhem.

Reports split into a deterministic core and timing. Which faults fire
and who dies is fixed by the plan and seed, so :meth:`ChaosReport.
core_json` is byte-identical across runs of the same campaign; wall-
clock latencies (checkpoint cadence, recovery times) are real time and
live outside the core.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.faults.plan import FaultPlan
from repro.recovery.invariants import completion, conservation_violation, validator
from repro.recovery.supervisor import ClusterSupervisor, RecoveryEvent
from repro.util.errors import RecoveryError

if False:  # pragma: no cover - typing only
    from repro.observe.integrate import Observability

#: The canonical campaign scenario: small, fast, and with a conserved
#: quantity (exactly one token) that faults would love to violate.
DEFAULT_WORKLOAD = "token_ring"
DEFAULT_PARAMS: Dict[str, Any] = {"n": 3, "max_hops": 150, "hold_time": 0.2}


def default_campaign(seed: int = 0) -> FaultPlan:
    """One crash plus one partition for the canonical token ring.

    The partition severs both debugger links of ``p1`` early in the run
    (virtual window ``[2, 5)``) — control traffic is dropped, so halts
    initiated inside the window cannot converge and the supervisor must
    retry after it lifts. The crash kills ``p1`` after its 400th local
    event, far enough in that a checkpoint normally precedes it (so the
    recovery restores a persisted cut, not the initial state). User
    channels are left connected: a partitioned *data* link would drop
    the token itself, which is a different experiment (message loss
    needs the reliable-channel layer, not recovery).
    """
    return (
        FaultPlan(seed=seed)
        .with_partition(("d->p1", "p1->d"), at_time=2.0, duration=3.0)
        .with_crash("p1", after_events=400)
    )


@dataclass
class ChaosReport:
    """Outcome of one campaign: a deterministic core plus timing."""

    workload: str
    params: Dict[str, Any]
    seed: int
    plan: Dict[str, Any]
    #: Did the workload finish its whole job?
    completed: bool
    #: Final conservation-law violation ("" = the law held).
    violation: str
    #: Victim tuples in recovery order — fixed by the plan and seed.
    recovery_victims: List[Tuple[str, ...]] = field(default_factory=list)
    #: Full recovery events, including wall-clock latencies.
    recoveries: List[RecoveryEvent] = field(default_factory=list)
    #: Checkpoints successfully persisted (timing-dependent).
    checkpoints: int = 0
    #: Checkpoint each recovery restored (None = initial state).
    restored_from: List[Optional[int]] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.completed and not self.violation

    def core(self) -> Dict[str, Any]:
        """The seed-determined part of the report."""
        return {
            "workload": self.workload,
            "params": dict(self.params),
            "seed": self.seed,
            "plan": self.plan,
            "completed": self.completed,
            "violation": self.violation,
            "recovery_victims": [list(v) for v in self.recovery_victims],
        }

    def core_json(self) -> str:
        """Byte-identical across runs of the same campaign."""
        return json.dumps(self.core(), sort_keys=True, separators=(",", ":"))

    def to_dict(self) -> Dict[str, Any]:
        data = self.core()
        data.update({
            "checkpoints": self.checkpoints,
            "restored_from": self.restored_from,
            "wall_s": self.wall_s,
            "recoveries": [
                {
                    "victims": list(e.victims),
                    "checkpoint_seq": e.checkpoint_seq,
                    "incarnation": e.incarnation,
                    "teardown_s": e.teardown_s,
                    "restart_s": e.restart_s,
                    "total_s": e.total_s,
                }
                for e in self.recoveries
            ],
        })
        return data


def run_campaign(
    workload: str = DEFAULT_WORKLOAD,
    params: Optional[Mapping[str, Any]] = None,
    seed: int = 0,
    plan: Optional[FaultPlan] = None,
    store_dir: Optional[str] = None,
    time_scale: float = 0.02,
    checkpoint_every: float = 0.25,
    max_wall: float = 60.0,
    max_recoveries: int = 5,
    observe: Optional["Observability"] = None,
) -> ChaosReport:
    """Run one seeded chaos campaign to completion (or the wall deadline).

    The loop is the whole supervision policy: watch for corpses, recover
    them; every ``checkpoint_every`` wall seconds take a checkpoint; use
    the checkpoint's own artifact to judge completion. Raises
    :class:`RecoveryError` only when the recovery *budget* is exhausted —
    an unfinished workload at the deadline is reported, not raised, so
    callers can assert on the report.
    """
    params = dict(DEFAULT_PARAMS if params is None and
                  workload == DEFAULT_WORKLOAD else (params or {}))
    if plan is None:
        plan = default_campaign(seed)
    if store_dir is None:
        import tempfile

        store_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    supervisor = ClusterSupervisor(
        workload,
        params,
        seed=seed,
        time_scale=time_scale,
        fault_plan=plan,
        store=store_dir,
        observe=observe,
        validate=validator(workload, params),
        max_recoveries=max_recoveries,
    )
    report = ChaosReport(
        workload=workload,
        params=params,
        seed=seed,
        plan=plan.to_dict(),
        completed=False,
        violation="",
    )
    final_state = None
    with supervisor:
        # Clock from *after* start(): spawning and the rendezvous take
        # real time, and a checkpoint at cluster age ~0 would halt the
        # workload before it has done anything worth saving.
        started = time.monotonic()
        last_checkpoint = started
        while time.monotonic() - started < max_wall:
            dead = supervisor.poll()
            if dead:
                event = supervisor.recover(dead)
                report.recoveries.append(event)
                report.recovery_victims.append(event.victims)
                report.restored_from.append(event.checkpoint_seq)
                last_checkpoint = time.monotonic()
                continue
            if time.monotonic() - last_checkpoint >= checkpoint_every:
                saved = supervisor.checkpoint(timeout=8.0, probe_grace=1.5)
                last_checkpoint = time.monotonic()
                if saved is None:
                    continue  # mid-halt death or partitioned control plane
                seq, _path = saved
                report.checkpoints += 1
                state = supervisor.store.load(seq)
                final_state = state
                if completion(workload, params, state):
                    report.completed = True
                    break
            time.sleep(0.02)
        else:
            # Deadline: take one last look so the report has a verdict.
            saved = supervisor.checkpoint(timeout=8.0, probe_grace=1.5)
            if saved is not None:
                report.checkpoints += 1
                final_state = supervisor.store.load(saved[0])
                report.completed = completion(workload, params, final_state)
    if final_state is not None:
        report.violation = conservation_violation(
            workload, final_state, params
        )
    else:
        report.violation = "campaign produced no consistent cut to check"
    report.wall_s = time.monotonic() - started
    return report


# -- CLI ----------------------------------------------------------------------

CHAOS_USAGE = """\
usage: python -m repro chaos [key=value ...]

Run a seeded chaos campaign on the distributed backend: real OS
processes, a fault plan with crashes and partitions, checkpoint/restart
supervision, conservation invariants checked at every checkpoint.

options (key=value):
  workload=NAME        registry workload (default: token_ring)
  seed=N               campaign seed (default: 0)
  max_wall=S           wall-clock budget in seconds (default: 60)
  checkpoint_every=S   checkpoint cadence, wall seconds (default: 0.25)
  store=DIR            checkpoint directory (default: temp dir)
  json=PATH            write the full report as JSON to PATH
  any other key        forwarded to the workload build (e.g. n=4)
"""


def chaos_main(argv: List[str]) -> int:
    if "--help" in argv or "-h" in argv:
        print(CHAOS_USAGE)
        return 0
    options: Dict[str, Any] = {}
    params: Dict[str, Any] = {}
    from repro.__main__ import parse_value

    for arg in argv:
        key, sep, value = arg.partition("=")
        if not sep:
            print(CHAOS_USAGE)
            return 2
        if key in ("workload", "store", "json"):
            options[key] = value
        elif key in ("seed",):
            options[key] = int(value)
        elif key in ("max_wall", "checkpoint_every"):
            options[key] = float(value)
        else:
            params[key] = parse_value(value)
    workload = options.get("workload", DEFAULT_WORKLOAD)
    try:
        report = run_campaign(
            workload,
            params or None,
            seed=int(options.get("seed", 0)),
            store_dir=options.get("store"),
            checkpoint_every=float(options.get("checkpoint_every", 0.25)),
            max_wall=float(options.get("max_wall", 60.0)),
        )
    except RecoveryError as exc:
        print(f"chaos: recovery failed: {exc}")
        return 1
    verdict = "OK" if report.ok else "FAIL"
    print(
        f"chaos {verdict}: workload={report.workload} seed={report.seed} "
        f"recoveries={len(report.recoveries)} "
        f"checkpoints={report.checkpoints} wall={report.wall_s:.1f}s"
    )
    for event in report.recoveries:
        origin = (
            f"checkpoint {event.checkpoint_seq}"
            if event.checkpoint_seq is not None else "initial state"
        )
        print(
            f"  recovered {list(event.victims)} from {origin} "
            f"in {event.total_s:.2f}s"
        )
    if report.violation:
        print(f"  conservation violated: {report.violation}")
    if not report.completed:
        print("  workload did not complete within the wall budget")
    out = options.get("json")
    if out:
        with open(out, "w", encoding="utf-8") as fp:
            json.dump(report.to_dict(), fp, indent=2, sort_keys=True)
        print(f"  report written to {out}")
    return 0 if report.ok else 1


__all__ = [
    "ChaosReport",
    "DEFAULT_PARAMS",
    "DEFAULT_WORKLOAD",
    "chaos_main",
    "default_campaign",
    "run_campaign",
]
