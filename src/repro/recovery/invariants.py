"""Workload conservation laws, checked against consistent global states.

A chaos campaign is only meaningful if something falsifiable survives it.
For every registry workload with a conserved quantity, this module states
the law as a function of one :class:`~repro.snapshot.state.GlobalState`:
a *consistent* cut must satisfy it exactly — no message is invented, none
is lost — whether the cut came from a live halt, a checkpoint artifact,
or a post-recovery halt. The recovery supervisor uses these as checkpoint
gates, and :mod:`repro.recovery.chaos` asserts them at every checkpoint
and at campaign end.

``completion`` answers the campaign's other question: did the workload
actually *finish* its job, despite crashes and partitions, rather than
merely not corrupting state?
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

from repro.snapshot.state import GlobalState
from repro.util.errors import ConfigurationError

#: law(state, params) -> violation message, or "" when the law holds.
Law = Callable[[GlobalState, Mapping[str, Any]], str]


def _states(state: GlobalState) -> Dict[str, Mapping[str, Any]]:
    return {name: snap.state for name, snap in state.processes.items()}


def _token_ring_law(state: GlobalState, params: Mapping[str, Any]) -> str:
    """Exactly one token — until the ring retires it at ``max_hops``.

    The last receiver of a value ``>= max_hops`` keeps the token out of
    circulation by design, so a *finished* ring legitimately holds zero:
    the law distinguishes that from a lost token via the highest value
    seen, which only the params can calibrate.
    """
    states = _states(state)
    held = sum(1 for s in states.values() if s.get("holding"))
    pending = state.total_pending_messages()
    total = held + pending
    if total == 1:
        return ""
    max_hops = params.get("max_hops")
    last = max(
        (int(s.get("last_value", -1)) for s in states.values()), default=-1
    )
    if total == 0 and max_hops is not None and last >= int(max_hops):
        return ""  # the ring finished; the token was retired, not lost
    if total == 0 and any(
        s.get("injected") is False for s in states.values()
    ):
        return ""  # cut taken before the injector ever released the token
    return f"{total} tokens (held {held} + {pending} in flight), expected 1"


def _pipeline_law(state: GlobalState, params: Mapping[str, Any]) -> str:
    states = _states(state)
    produced = int(states["producer"].get("produced", 0))
    consumed = int(states["consumer"].get("consumed", 0))
    pending = state.total_pending_messages()
    if produced == consumed + pending:
        return ""
    return (
        f"produced {produced} != consumed {consumed} + {pending} in flight"
    )


def _chatter_law(state: GlobalState, params: Mapping[str, Any]) -> str:
    states = _states(state)
    sent = sum(int(s.get("sent", 0)) for s in states.values())
    received = sum(int(s.get("received", 0)) for s in states.values())
    pending = state.total_pending_messages()
    if sent == received + pending:
        return ""
    return f"sent {sent} != received {received} + {pending} in flight"


#: Conservation law per workload registry key.
LAWS: Dict[str, Law] = {
    "token_ring": _token_ring_law,
    "pipeline": _pipeline_law,
    "chatter": _chatter_law,
    "infrequent": _chatter_law,  # two clusters of chatter processes
}


def conservation_violation(
    workload: str,
    state: GlobalState,
    params: Optional[Mapping[str, Any]] = None,
) -> str:
    """Empty string iff ``workload``'s conservation law holds in ``state``.

    ``params`` (the workload build parameters) calibrate completion-aware
    laws — without them a finished token ring reads as a lost token.
    """
    law = LAWS.get(workload)
    if law is None:
        raise ConfigurationError(
            f"no conservation law for workload {workload!r}; "
            f"known: {sorted(LAWS)}"
        )
    return law(state, dict(params or {}))


def validator(workload: str, params: Optional[Mapping[str, Any]] = None):
    """The law as a supervisor ``validate`` callback, bound to one workload."""
    if workload not in LAWS:
        raise ConfigurationError(
            f"no conservation law for workload {workload!r}; "
            f"known: {sorted(LAWS)}"
        )
    return lambda state: conservation_violation(workload, state, params)


def completion(
    workload: str, params: Mapping[str, Any], state: GlobalState
) -> bool:
    """Has the workload finished its whole job in ``state``?

    Completion is judged on the cut alone, so a campaign can halt,
    check, and (if unfinished) resume and keep running.
    """
    states = _states(state)
    pending = state.total_pending_messages()
    if workload == "token_ring":
        max_hops = int(params.get("max_hops", 40))
        last = max(
            (int(s.get("last_value", -1)) for s in states.values()),
            default=-1,
        )
        return last >= max_hops and pending == 0
    if workload == "pipeline":
        items = int(params.get("items", 0))
        return int(states["consumer"].get("consumed", 0)) >= items
    if workload in ("chatter", "infrequent"):
        budget = int(params.get("budget", 0))
        sent = sum(int(s.get("sent", 0)) for s in states.values())
        return sent >= budget * len(states) and pending == 0
    raise ConfigurationError(
        f"no completion criterion for workload {workload!r}"
    )


__all__ = [
    "LAWS",
    "completion",
    "conservation_violation",
    "validator",
]
