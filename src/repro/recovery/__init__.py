"""Crash recovery from consistent cuts (Theorem 2, made operational).

``S_h == S_r`` means every consistent cut the halting machinery produces
is a valid recovery point. This package turns that into a supervision
stack for the distributed backend:

* :mod:`repro.recovery.checkpoint` — consistent global states as durable,
  versioned artifacts (the wire codec, not pickle).
* :mod:`repro.recovery.supervisor` — the :class:`ClusterSupervisor`:
  periodic checkpoints, death detection, coordinated rollback restarts.
* :mod:`repro.recovery.invariants` — workload conservation laws that gate
  checkpoints and judge campaigns.
* :mod:`repro.recovery.chaos` — seeded crash+partition campaigns
  (``python -m repro chaos``).
"""

from repro.recovery.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointStore,
    load_checkpoint,
)
from repro.recovery.chaos import ChaosReport, default_campaign, run_campaign
from repro.recovery.invariants import (
    completion,
    conservation_violation,
    validator,
)
from repro.recovery.supervisor import ClusterSupervisor, RecoveryEvent

__all__ = [
    "CHECKPOINT_FORMAT",
    "ChaosReport",
    "CheckpointStore",
    "ClusterSupervisor",
    "RecoveryEvent",
    "completion",
    "conservation_violation",
    "default_campaign",
    "load_checkpoint",
    "run_campaign",
    "validator",
]
