"""Durable checkpoints: consistent global states as recovery artifacts.

Theorem 2 says the halted state ``S_h`` equals the recorded snapshot state
``S_r`` — so every consistent cut the halting machinery can already
produce is a *valid recovery point*: process states plus in-flight channel
contents, nothing invented, nothing lost. This module makes those cuts
durable: a :class:`CheckpointStore` serializes each
:class:`~repro.snapshot.state.GlobalState` through the same wire codec the
cluster already trusts (:mod:`repro.distributed.protocol` — a registry,
not pickle) into versioned JSON artifacts, and loads them back for the
supervisor's rollback restarts.

Only *complete* cuts are storable: a channel state without its closing
marker is not restorable (re-sending it could duplicate or lose traffic),
so :meth:`CheckpointStore.save` refuses it — the same rule
:mod:`repro.halting.restore` enforces for the DES backend.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from repro.distributed.protocol import decode_payload, encode_payload
from repro.snapshot.state import ChannelState, GlobalState
from repro.util.errors import CheckpointError
from repro.util.ids import ChannelId

#: Bump when the artifact layout changes incompatibly.
CHECKPOINT_FORMAT = 1

_ARTIFACT_RE = re.compile(r"^checkpoint-(\d{6})\.json$")


def state_to_jsonable(state: GlobalState) -> Dict[str, Any]:
    """One consistent global state as plain JSON-safe data."""
    incomplete = sorted(
        str(cid) for cid, cs in state.channels.items() if not cs.complete
    )
    if incomplete:
        raise CheckpointError(
            f"refusing to checkpoint an incomplete cut: channels {incomplete} "
            "have no closing marker, so their contents are not restorable"
        )
    return {
        "format": CHECKPOINT_FORMAT,
        "origin": state.origin,
        "generation": state.generation,
        "meta": encode_payload(dict(state.meta)),
        "processes": {
            str(name): encode_payload(snapshot)
            for name, snapshot in sorted(state.processes.items())
        },
        "channels": [
            {
                "channel": str(cid),
                "messages": [encode_payload(m) for m in cs.messages],
            }
            for cid, cs in sorted(state.channels.items())
        ],
    }


def state_from_jsonable(data: Dict[str, Any]) -> GlobalState:
    """Inverse of :func:`state_to_jsonable`."""
    try:
        fmt = int(data.get("format", -1))
        if fmt != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"checkpoint format {fmt} unsupported "
                f"(this build reads format {CHECKPOINT_FORMAT})"
            )
        processes = {
            str(name): decode_payload(snapshot)
            for name, snapshot in dict(data["processes"]).items()
        }
        channels = {}
        for record in data["channels"]:
            cid = ChannelId.parse(record["channel"])
            channels[cid] = ChannelState(
                channel=cid,
                messages=tuple(
                    decode_payload(m) for m in record["messages"]
                ),
                complete=True,
            )
        return GlobalState(
            origin=str(data.get("origin", "checkpoint")),
            processes=processes,
            channels=channels,
            generation=int(data.get("generation", 0)),
            meta=dict(decode_payload(data.get("meta", {}))),
        )
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(f"malformed checkpoint data: {exc}") from exc


class CheckpointStore:
    """Versioned recovery artifacts in one directory.

    Artifacts are named ``checkpoint-NNNNNN.json`` with a monotonically
    increasing sequence number; writes are atomic (temp file +
    ``os.replace``), so a crash mid-save never leaves a half-written
    recovery point where :meth:`latest` would find it.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    # -- write ---------------------------------------------------------------

    def save(self, state: GlobalState, extra_meta: Optional[Dict[str, Any]] = None) -> str:
        """Persist one consistent cut; returns the artifact path."""
        payload = state_to_jsonable(state)
        if extra_meta:
            payload["checkpoint_meta"] = encode_payload(dict(extra_meta))
        seq = self._next_seq()
        payload["seq"] = seq
        path = os.path.join(self.directory, f"checkpoint-{seq:06d}.json")
        fd, tmp = tempfile.mkstemp(
            prefix=".checkpoint-", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fp:
                json.dump(payload, fp, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # -- read ----------------------------------------------------------------

    def sequence_numbers(self) -> List[int]:
        """All stored checkpoint sequence numbers, ascending."""
        seqs = []
        for name in os.listdir(self.directory):
            match = _ARTIFACT_RE.match(name)
            if match:
                seqs.append(int(match.group(1)))
        return sorted(seqs)

    def path_for(self, seq: int) -> str:
        return os.path.join(self.directory, f"checkpoint-{seq:06d}.json")

    def latest(self) -> Optional[Tuple[int, str]]:
        """``(seq, path)`` of the newest checkpoint, or None if empty."""
        seqs = self.sequence_numbers()
        if not seqs:
            return None
        seq = seqs[-1]
        return seq, self.path_for(seq)

    def load(self, target: Any) -> GlobalState:
        """Load one checkpoint by sequence number or by path."""
        path = self.path_for(target) if isinstance(target, int) else str(target)
        return load_checkpoint(path)

    # -- hygiene -------------------------------------------------------------

    def prune(self, keep: int = 3) -> List[str]:
        """Delete all but the newest ``keep`` artifacts; returns removals."""
        if keep < 1:
            raise CheckpointError(f"keep must be >= 1, got {keep!r}")
        removed = []
        for seq in self.sequence_numbers()[:-keep]:
            path = self.path_for(seq)
            try:
                os.unlink(path)
                removed.append(path)
            except OSError:
                pass
        return removed

    def _next_seq(self) -> int:
        seqs = self.sequence_numbers()
        return (seqs[-1] + 1) if seqs else 1


def load_checkpoint(path: str) -> GlobalState:
    """Read one checkpoint artifact from disk."""
    try:
        with open(path, "r", encoding="utf-8") as fp:
            data = json.load(fp)
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    return state_from_jsonable(data)


__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointStore",
    "load_checkpoint",
    "state_from_jsonable",
    "state_to_jsonable",
]
