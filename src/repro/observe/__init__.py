"""Live observability: metrics, trace spans, and exporters (stdlib-only).

The paper's instrumentation claims — §2.2.4's halting order, §4's message
overhead — are *observability* claims. This package makes them visible
while the system runs instead of post-hoc:

* :mod:`repro.observe.metrics` — a registry of counters, gauges, and
  histograms with labeled series; channel and process series are *pulled*
  from the runtime's existing accounting at collection time, so an
  attached-but-idle registry costs the hot path nothing;
* :mod:`repro.observe.spans` — structured trace spans (halt convergence,
  snapshot recording, predicate-marker hops, retransmission episodes),
  each carrying vector-clock context so spans order causally;
* :mod:`repro.observe.export` — Chrome ``trace_event`` JSON (loadable in
  Perfetto / ``about:tracing``) and Prometheus-style text exposition;
* :mod:`repro.observe.narrative` — renders the halting order and spans as
  a human-readable account of who halted when and why;
* :mod:`repro.observe.integrate` — the :class:`Observability` container
  that wires all of the above into a ``System`` / ``ThreadedSystem``.

Observability is **off by default**: every runtime object takes
``observe=None`` and guards each hook with a single ``is not None`` check,
so the disabled path adds no messages, no kernel events, and no
measurable overhead (benchmark E11 asserts this).
"""

from repro.observe.export import (
    chrome_trace,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.observe.integrate import Observability
from repro.observe.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.observe.narrative import halt_narrative
from repro.observe.spans import Span, SpanTracer

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "SpanTracer",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "halt_narrative",
]
