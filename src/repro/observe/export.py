"""Exporters: Chrome ``trace_event`` JSON and Prometheus text exposition.

The Chrome format is the JSON Array/Object format documented for
``about:tracing`` / Perfetto: a ``traceEvents`` list of phase-tagged
events. Spans become complete events (``"ph": "X"``) with microsecond
``ts``/``dur``, one ``pid`` per process (plus pid 0 for system-wide
spans), and ``args`` carrying the span attributes and vector-clock
context. Metadata events (``"ph": "M"``) name the processes, so the
Perfetto track names read ``branch0``, ``branch1``, … instead of numbers.

The Prometheus exporter renders the registry in the text exposition
format (``# HELP`` / ``# TYPE`` plus one line per labeled series;
histograms as ``_bucket``/``_sum``/``_count``).
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.observe.metrics import HistogramValue, MetricsRegistry
from repro.observe.spans import SpanTracer
from repro.util.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe.integrate import Observability

#: Conventional category for Perfetto's track-sorting metadata.
_SYSTEM_PID_NAME = "system"


class ExportError(ReproError):
    """A trace document failed schema validation."""


def _json_safe(value: object) -> object:
    """Coerce span attrs to JSON-serializable values (repr as last resort)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def chrome_trace(observe: "Observability") -> Dict[str, object]:
    """Render every recorded span as a Chrome ``trace_event`` document.

    Events are emitted in causal order (vector clocks break wall-clock
    ties); Perfetto re-sorts by ``ts`` for display, but the ``args``
    carry each span's vector so the causal story survives the export.
    """
    tracer = observe.tracer
    pids: Dict[str, int] = {_SYSTEM_PID_NAME: 0}
    events: List[Dict[str, object]] = []
    for span in tracer.causal_order():
        process = span.process or _SYSTEM_PID_NAME
        pid = pids.setdefault(process, len(pids))
        args: Dict[str, object] = {
            str(key): _json_safe(value) for key, value in span.attrs.items()
        }
        if span.vector is not None:
            args["vector"] = list(span.vector)
            if span.vector_index is not None:
                args["vector_index"] = span.vector_index
        event: Dict[str, object] = {
            "name": span.name,
            "cat": span.category,
            "ts": round(span.start * 1_000_000, 3),
            "pid": pid,
            "tid": 0,
            "args": args,
        }
        if span.duration == 0:
            # Zero-length lifecycles (a process freezing, a state recording)
            # render as instant markers, not invisible zero-width slices.
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = round(span.duration * 1_000_000, 3)
        events.append(event)
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process},
        }
        for process, pid in pids.items()
    ]
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.observe", "spanCount": len(events)},
    }


def validate_chrome_trace(document: Dict[str, object]) -> None:
    """Check a document against the ``trace_event`` schema essentials.

    Raises :class:`ExportError` naming the first violation; returns None
    on success. The checks mirror what ``about:tracing`` requires to load
    a file at all: a ``traceEvents`` array whose entries carry ``ph``,
    ``pid``, ``tid``, ``ts`` (and ``name``/``dur`` where the phase needs
    them), all JSON-serializable with finite numbers.
    """
    if not isinstance(document, dict):
        raise ExportError(f"trace document must be an object, got {type(document)}")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ExportError("trace document lacks a 'traceEvents' array")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ExportError(f"traceEvents[{index}] is not an object")
        phase = event.get("ph")
        if phase not in {"X", "B", "E", "i", "I", "M", "C"}:
            raise ExportError(f"traceEvents[{index}] has unknown phase {phase!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ExportError(f"traceEvents[{index}] lacks integer {key!r}")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or not math.isfinite(ts):
                raise ExportError(f"traceEvents[{index}] lacks finite 'ts'")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or not math.isfinite(dur) or dur < 0:
                raise ExportError(f"traceEvents[{index}] lacks finite 'dur' >= 0")
        if not isinstance(event.get("name"), str):
            raise ExportError(f"traceEvents[{index}] lacks a string 'name'")
    try:
        json.dumps(document)
    except (TypeError, ValueError) as exc:
        raise ExportError(f"trace document is not JSON-serializable: {exc}") from exc


def write_chrome_trace(observe: "Observability", path: str) -> Dict[str, object]:
    """Validate and write the Chrome trace to ``path``; returns the doc."""
    document = chrome_trace(observe)
    validate_chrome_trace(document)
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(document, fp, indent=1)
    return document


# -- Prometheus text exposition ---------------------------------------------------


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _render_labels(pairs) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Collect and render the registry in Prometheus' text format."""
    registry.collect()
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, value in sorted(family.series().items()):
            if isinstance(value, HistogramValue):
                cumulative = 0
                for bound, count in zip(value.buckets, value.counts):
                    cumulative = count
                    bucket_labels = labels + (("le", _format_value(bound)),)
                    lines.append(
                        f"{family.name}_bucket{_render_labels(bucket_labels)}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{family.name}_sum{_render_labels(labels)}"
                    f" {_format_value(value.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_render_labels(labels)} {value.count}"
                )
            else:
                lines.append(
                    f"{family.name}{_render_labels(labels)}"
                    f" {_format_value(float(value))}"  # type: ignore[arg-type]
                )
    return "\n".join(lines) + "\n"


def metrics_dict(registry: MetricsRegistry) -> Dict[str, Dict[str, float]]:
    """Collect and flatten scalar families into ``{name: {labels: value}}``
    with Prometheus-style label strings as keys — the programmatic twin of
    :func:`prometheus_text`, used by the benchmarks."""
    registry.collect()
    flat: Dict[str, Dict[str, float]] = {}
    for family in registry.families():
        series: Dict[str, float] = {}
        for labels, value in family.series().items():
            if isinstance(value, HistogramValue):
                continue
            series[_render_labels(labels)] = float(value)  # type: ignore[arg-type]
        flat[family.name] = series
    return flat
