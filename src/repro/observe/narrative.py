"""The halt narrative: §2.2.4's halting order rendered as prose.

The paper argues the halting order itself is debugging information: "the
order in which processes are halted … indicates the progress of the halt"
and each halt marker carries the path of already-halted processes it
travelled through. This module turns the debugger's halt notifications
(plus trace spans, when an :class:`~repro.observe.integrate.Observability`
is attached) into a human-readable account of who halted when, via whom,
and why.
"""

from __future__ import annotations

from typing import List, Optional


def _session_now(session) -> float:
    """Current time of either backend (virtual or wall-since-start)."""
    kernel = getattr(session.system, "kernel", None)
    if kernel is not None:
        return kernel.now
    return session.system.now


def halt_narrative(session) -> str:
    """Render the latest halt of a debug session as readable text.

    Works on both :class:`~repro.debugger.session.DebugSession` and
    :class:`~repro.debugger.threaded_session.ThreadedDebugSession`; when
    the session carries an ``observe`` layer the narrative is enriched
    with span timings (halt convergence latency, breakpoint marker hops).
    """
    agent = session.agent
    notifications = agent.halting_order()
    lines: List[str] = []
    if not notifications:
        return "No process has reported halting yet."
    generation = max(n.halt_id for n in notifications)
    current = [n for n in notifications if n.halt_id == generation]
    first = min(n.time for n in current)
    last = max(n.time for n in current)
    lines.append(
        f"Halt generation {generation}: {len(current)} processes froze "
        f"between t={first:.3f} and t={last:.3f} "
        f"(convergence took {last - first:.3f} time units)."
    )
    hits = [h for h in getattr(agent, "breakpoint_hits", [])]
    if hits:
        hit = hits[-1]
        trail = hit.marker.trail
        stages = " -> ".join(s.term for s in trail) or str(hit.marker.residual)
        lines.append(
            f"Cause: breakpoint lp#{hit.marker.lp_id} completed at "
            f"{hit.process} (t={hit.time:.3f}) after {len(trail)} "
            f"stage hit(s): {stages}."
        )
    else:
        lines.append(
            "Cause: an explicit halt initiated by the debugger "
            f"({session.debugger_name!r})."
        )
    lines.append("Halting order (§2.2.4), with each marker's path of "
                 "already-halted processes:")
    for rank, notification in enumerate(current, start=1):
        via = " -> ".join(notification.path)
        how = (
            f"marker path {via}" if via
            else "halted spontaneously (it initiated, or the debugger "
                 "reached it directly)"
        )
        lines.append(
            f"  {rank}. {notification.process} at t={notification.time:.3f} — {how}"
        )
    observe = getattr(session, "observe", None)
    if observe is not None:
        retransmissions = observe.tracer.spans("retransmission")
        if retransmissions:
            recovered = sum(
                1 for s in retransmissions
                if s.attrs.get("outcome") == "recovered"
            )
            lines.append(
                f"While halting, the reliable layer fought the wire: "
                f"{len(retransmissions)} retransmission episode(s), "
                f"{recovered} recovered."
            )
        snapshots = [
            s for s in observe.tracer.spans("snapshot")
            if s.name == "snapshot.record"
        ]
        if snapshots:
            lines.append(
                f"{len(snapshots)} Chandy-Lamport snapshot(s) recorded "
                f"alongside, slowest took "
                f"{max(s.duration for s in snapshots):.3f} time units."
            )
    survivors = [
        n for n in session.system.user_process_names
        if not session.system.controller(n).halted
    ]
    if survivors:
        lines.append(
            f"Still running (halt incomplete or degraded): {sorted(survivors)}."
        )
    else:
        lines.append(
            f"All user processes are frozen; the cut is consistent and "
            f"inspectable (now t={_session_now(session):.3f})."
        )
    return "\n".join(lines)
