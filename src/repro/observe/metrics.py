"""A small, stdlib-only metrics registry (counters, gauges, histograms).

Design: series are *labeled* (``counter.inc(channel="p0->p1", kind="user")``)
and most runtime series are **pulled**, not pushed — a collector callback
registered with the registry reads the runtime's existing accounting
(``ChannelStats``, controller event counters) at collection time. The hot
path therefore pays nothing for an attached registry; only exporting costs
anything, and only when asked.

Thread-safety: one lock per registry guards every series mutation, so the
threaded backend's forwarder and process threads can feed the same
registry the DES backend uses single-threaded.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets — latencies here are virtual-time units (DES)
#: or seconds (threaded), both of order 1, so a decade around 1 suffices.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, float("inf")
)


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Family:
    """Base of one named metric family holding its labeled series."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help_text
        self._lock = lock
        self._series: Dict[LabelKey, object] = {}

    def series(self) -> Dict[LabelKey, object]:
        """Snapshot of every labeled series' current value."""
        with self._lock:
            return dict(self._series)

    def clear(self) -> None:
        """Drop every series (used by pull-style collectors that rebuild)."""
        with self._lock:
            self._series.clear()


class Counter(_Family):
    """A monotonically increasing count, one value per label set.

    Pull-style collectors mirror an external monotonic count with
    :meth:`set_total`; push-style callers use :meth:`inc`.
    """

    kind = "counter"

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def set_total(self, value: float, **labels: object) -> None:
        """Overwrite the series with an externally tracked total."""
        with self._lock:
            self._series[_label_key(labels)] = value

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)  # type: ignore[return-value]


class Gauge(_Family):
    """A value that can go up and down (rates, in-flight counts)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._series[_label_key(labels)] = value

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)  # type: ignore[return-value]


class HistogramValue:
    """The state of one histogram series: bucket counts, sum, count."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Histogram(_Family):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str, lock: threading.Lock,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help_text, lock)
        self.buckets = tuple(buckets)
        if self.buckets[-1] != float("inf"):
            self.buckets = self.buckets + (float("inf"),)

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = HistogramValue(self.buckets)
            series.observe(value)  # type: ignore[union-attr]

    def set_from(self, values: Iterable[float], **labels: object) -> None:
        """Rebuild one series from a full value list (pull-style: derived
        from spans at collection time, so repeated collections are
        idempotent instead of double-counting)."""
        series = HistogramValue(self.buckets)
        for value in values:
            series.observe(value)
        with self._lock:
            self._series[_label_key(labels)] = series

    def value(self, **labels: object) -> Optional[HistogramValue]:
        with self._lock:
            return self._series.get(_label_key(labels))  # type: ignore[return-value]


class MetricsRegistry:
    """Named metric families plus the collectors that feed the pulled ones.

    ``collect()`` runs every registered collector (each reads some runtime
    object and overwrites its families' series), then the exporters render
    whatever the families hold. Families are created idempotently:
    requesting an existing name returns the existing family.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self._collectors: List[Callable[[], None]] = []

    # -- family creation ------------------------------------------------------

    def _family(self, cls, name: str, help_text: str, **kwargs) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help_text, self._lock, **kwargs)
                self._families[name] = family
            elif not isinstance(family, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            return family

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._family(Counter, name, help_text)  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._family(Gauge, name, help_text)  # type: ignore[return-value]

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._family(Histogram, name, help_text, buckets=buckets)  # type: ignore[return-value]

    # -- collection -----------------------------------------------------------

    def add_collector(self, collector: Callable[[], None]) -> None:
        """Register a callback run at the start of every :meth:`collect`."""
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> None:
        """Run every collector so pulled series reflect the runtime now."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector()

    def families(self) -> Tuple[_Family, ...]:
        with self._lock:
            return tuple(self._families[name] for name in sorted(self._families))

    def snapshot(self) -> Dict[str, Dict[LabelKey, object]]:
        """Collect, then return ``{family: {labelkey: value}}`` for tests
        and programmatic reads."""
        self.collect()
        return {family.name: family.series() for family in self.families()}
