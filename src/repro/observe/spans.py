"""Trace spans with vector-clock context.

A :class:`Span` is one lifecycle the paper cares about — a halt spreading
to convergence, a Chandy-Lamport snapshot recording, a predicate marker
hopping between linked-predicate stages, a retransmission episode. Spans
carry the *vector clock* of the event that closed them, so two spans can
be ordered causally (``happened_before``) rather than by the wall clock —
which, as §1 insists, proves nothing in a distributed system.

Span times are backend times: virtual time on the DES backend, seconds
since system start on the threaded one. Within one run they are mutually
comparable; across backends only the causal order is.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.events.clocks import vector_less


@dataclass(frozen=True)
class Span:
    """One completed interval of interest, causally stamped."""

    #: What happened, e.g. ``halt.process`` or ``lp.stage``.
    name: str
    #: Taxonomy bucket: ``halt`` / ``snapshot`` / ``breakpoint`` /
    #: ``retransmission`` (see docs/OBSERVABILITY.md).
    category: str
    start: float
    end: float
    #: Process the span belongs to; None for system-wide spans.
    process: Optional[str] = None
    attrs: Dict[str, object] = field(default_factory=dict)
    #: Vector clock at the event that closed the span, when known.
    vector: Optional[Tuple[int, ...]] = None
    vector_index: Optional[int] = None

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def happened_before(self, other: "Span") -> bool:
        """Causal order where both spans carry vectors; False otherwise."""
        if self.vector is None or other.vector is None:
            return False
        return vector_less(self.vector, other.vector)


class SpanTracer:
    """Collects spans, grouped by category.

    Push-style producers (snapshot completion, retransmission recovery)
    call :meth:`add` once per occurrence. Derived producers (halt and
    breakpoint spans, rebuilt from the debugger's notification lists on
    every sync) call :meth:`replace` with the whole category, which keeps
    repeated syncs idempotent.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_category: Dict[str, List[Span]] = {}

    def add(self, span: Span) -> Span:
        with self._lock:
            self._by_category.setdefault(span.category, []).append(span)
        return span

    def replace(self, category: str, spans: Sequence[Span]) -> None:
        with self._lock:
            self._by_category[category] = list(spans)

    def spans(self, category: Optional[str] = None) -> Tuple[Span, ...]:
        with self._lock:
            if category is not None:
                return tuple(self._by_category.get(category, ()))
            merged: List[Span] = []
            for name in sorted(self._by_category):
                merged.extend(self._by_category[name])
            return tuple(merged)

    def categories(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._by_category))

    def causal_order(self, category: Optional[str] = None) -> Tuple[Span, ...]:
        """Spans in an order consistent with happened-before.

        Start-time order is the first approximation; a bubble pass then
        repairs any pair the vector clocks prove inverted (wall clocks can
        disagree with causality — that disagreement is the paper's opening
        argument). The pass terminates because happened-before is acyclic.
        """
        spans = sorted(
            self.spans(category), key=lambda s: (s.start, s.end, s.name)
        )
        changed = True
        while changed:
            changed = False
            for i in range(len(spans) - 1):
                if spans[i + 1].happened_before(spans[i]):
                    spans[i], spans[i + 1] = spans[i + 1], spans[i]
                    changed = True
        return tuple(spans)

    def durations(self, category: str, name: Optional[str] = None) -> Tuple[float, ...]:
        """Span durations of one category (optionally one span name) — the
        raw material of the derived latency histograms."""
        return tuple(
            span.duration for span in self.spans(category)
            if name is None or span.name == name
        )
