"""The :class:`Observability` hub: one object wiring metrics + spans into a run.

Attachment is explicit and off by default — ``System(…, observe=obs)`` /
``ThreadedSystem(…, observe=obs)``. The hub holds a
:class:`~repro.observe.metrics.MetricsRegistry` and a
:class:`~repro.observe.spans.SpanTracer` and feeds them two ways:

* **pull** (the common case): a collector registered with the registry
  reads the runtime's *existing* accounting — ``ChannelStats``, controller
  event counters, ``message_totals()`` — at collection time. Nothing is
  added to the hot path, and ``messages_sent_total`` matches
  :func:`repro.analysis.metrics.message_overhead` exactly because both
  read the same counters.
* **push** (event-driven lifecycles): channels get retransmission hooks,
  the snapshot coordinator reports recordings, sessions report halt
  initiations. Each produces a :class:`~repro.observe.spans.Span` with
  vector-clock context where the closing event has one.

Halt and breakpoint spans are *derived*: :meth:`Observability.sync_session`
rebuilds them from the debugger's notification lists (idempotently, via
``SpanTracer.replace``), so they exist whether or not the hub was attached
before the halt began.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.observe.metrics import MetricsRegistry
from repro.observe.spans import Span, SpanTracer

#: Buckets for small count-valued histograms (hops, attempts).
_COUNT_BUCKETS: Tuple[float, ...] = (1, 2, 3, 4, 5, 8, 13, 21, float("inf"))


class Observability:
    """Metrics + tracing for one ``System`` / ``ThreadedSystem`` run."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = SpanTracer()
        #: Backend time source; set by :meth:`attach_system`.
        self.clock = lambda: 0.0
        self._system = None
        self._lock = threading.Lock()
        #: generation -> time the debugger initiated that halt.
        self._halt_initiated: Dict[int, float] = {}
        #: (channel, rseq) -> open retransmission episode.
        self._open_rtx: Dict[Tuple[str, int], Dict[str, object]] = {}
        self._snapshot_started: Dict[int, float] = {}
        self._snapshots_reported: set = set()
        #: Supervisor recoveries (see :meth:`note_recovery`).
        self._recoveries: List[Dict[str, object]] = []

    # -- system attachment -----------------------------------------------------

    def attach_system(self, system) -> None:
        """Bind to a runtime: adopt its clock and register the pull collector.

        Called by the system constructors; channels are wired separately
        (see :meth:`wire_channel`) so dynamically created channels join too.
        """
        self._system = system
        kernel = getattr(system, "kernel", None)
        if kernel is not None:
            self.clock = lambda: kernel.now
        else:
            self.clock = lambda: system.now
        self.metrics.add_collector(self._collect)

    def wire_channel(self, channel) -> None:
        """Install retransmission-episode hooks on one channel.

        Raw channels have no retransmission protocol and are left alone;
        for reliable ones the hooks close a span per recovered / abandoned
        message. The pre-existing ``on_give_up`` hook, if any, is chained.
        """
        if not hasattr(channel, "on_retransmit"):
            return
        channel.on_retransmit = (
            lambda rseq, envelope, attempts, ch=channel:
                self._retransmit_fired(ch, rseq, envelope, attempts)
        )
        channel.on_recovered = (
            lambda rseq, envelope, attempts, ch=channel:
                self._retransmit_recovered(ch, rseq, envelope, attempts)
        )
        previous = getattr(channel, "on_give_up", None)

        def give_up(envelope, ch=channel, prev=previous):
            self._retransmit_gave_up(ch, envelope)
            if prev is not None:
                prev(envelope)

        channel.on_give_up = give_up

    # -- push: retransmission episodes -----------------------------------------

    def _retransmit_fired(self, channel, rseq, envelope, attempts) -> None:
        key = (str(channel.id), rseq)
        with self._lock:
            episode = self._open_rtx.setdefault(
                key, {"start": envelope.send_time, "attempts": 0}
            )
            episode["attempts"] = attempts

    def _retransmit_recovered(self, channel, rseq, envelope, attempts) -> None:
        key = (str(channel.id), rseq)
        with self._lock:
            episode = self._open_rtx.pop(key, None)
        if episode is None:
            return  # acked on the first try: not an episode
        self._close_episode(channel, envelope, episode, "recovered")

    def _retransmit_gave_up(self, channel, envelope) -> None:
        with self._lock:
            key = next(
                (k for k, v in self._open_rtx.items()
                 if k[0] == str(channel.id)),
                None,
            )
            episode = self._open_rtx.pop(key, None) if key else None
        if episode is None:
            episode = {"start": envelope.send_time, "attempts": 0}
        self._close_episode(channel, envelope, episode, "gave_up")

    def _close_episode(self, channel, envelope, episode, outcome: str) -> None:
        self.tracer.add(Span(
            name="channel.retransmission",
            category="retransmission",
            start=float(episode["start"]),  # type: ignore[arg-type]
            end=self.clock(),
            process=channel.id.src,
            attrs={
                "channel": str(channel.id),
                "kind": envelope.kind.value,
                "attempts": int(episode["attempts"]),  # type: ignore[arg-type]
                "outcome": outcome,
            },
        ))

    # -- push: halts and snapshots ----------------------------------------------

    def note_halt_initiated(self, generation: int) -> None:
        """Record when the debugger kicked off halt ``generation`` — the
        start anchor of that generation's convergence span."""
        with self._lock:
            self._halt_initiated.setdefault(generation, self.clock())

    def note_snapshot_initiated(self, snapshot_id: int) -> None:
        with self._lock:
            self._snapshot_started.setdefault(snapshot_id, self.clock())

    def note_snapshot_complete(self, snapshot_id: int, records) -> None:
        """One C&L snapshot finished: ``records`` is a list of
        ``(process, time, vector, vector_index)`` recording instants."""
        with self._lock:
            if snapshot_id in self._snapshots_reported:
                return
            self._snapshots_reported.add(snapshot_id)
            start = self._snapshot_started.get(snapshot_id)
        times = [t for _, t, _, _ in records]
        if start is None:
            start = min(times) if times else self.clock()
        end = self.clock()
        self.tracer.add(Span(
            name="snapshot.record",
            category="snapshot",
            start=start,
            end=end,
            attrs={"snapshot_id": snapshot_id, "processes": len(records)},
        ))
        for process, time_, vector, vector_index in records:
            self.tracer.add(Span(
                name="snapshot.process",
                category="snapshot",
                start=time_,
                end=time_,
                process=process,
                attrs={"snapshot_id": snapshot_id},
                vector=vector,
                vector_index=vector_index,
            ))

    def note_recovery(self, event) -> None:
        """Record one supervisor recovery (a
        :class:`repro.recovery.supervisor.RecoveryEvent`): counts and
        latencies surface through the metrics registry, and the restart
        becomes a wall-clock span."""
        with self._lock:
            self._recoveries.append({
                "victims": tuple(getattr(event, "victims", ())),
                "checkpoint_seq": getattr(event, "checkpoint_seq", None),
                "incarnation": getattr(event, "incarnation", None),
                "teardown_s": float(getattr(event, "teardown_s", 0.0)),
                "restart_s": float(getattr(event, "restart_s", 0.0)),
                "total_s": float(getattr(event, "total_s", 0.0)),
            })
        self.tracer.add(Span(
            name="recovery.restart",
            category="recovery",
            start=0.0,
            end=float(getattr(event, "total_s", 0.0)),
            attrs={
                "victims": list(getattr(event, "victims", ())),
                "checkpoint_seq": getattr(event, "checkpoint_seq", None),
                "incarnation": getattr(event, "incarnation", None),
            },
        ))

    # -- derived: session sync ----------------------------------------------------

    def sync_session(self, session) -> None:
        """Rebuild halt and breakpoint spans from the debugger's state.

        Idempotent — categories are replaced wholesale, so sessions call
        this after every run/halt without double-counting.
        """
        agent = getattr(session, "agent", None)
        if agent is None:
            return
        self._sync_halt_spans(agent, session.system)
        self._sync_breakpoint_spans(agent, session.system)

    def _sync_halt_spans(self, agent, system) -> None:
        by_generation: Dict[int, List] = {}
        for notification in agent.halting_order():
            by_generation.setdefault(notification.halt_id, []).append(notification)
        spans: List[Span] = []
        for generation in sorted(by_generation):
            group = by_generation[generation]
            times = [n.time for n in group]
            with self._lock:
                start = self._halt_initiated.get(generation, min(times))
            spans.append(Span(
                name="halt.converge",
                category="halt",
                start=start,
                end=max(times),
                attrs={
                    "generation": generation,
                    "processes": len(group),
                    "order": [n.process for n in group],
                },
            ))
            for notification in group:
                vector = vector_index = None
                controller = system.controllers.get(notification.process)
                snapshot = getattr(controller, "halted_snapshot", None)
                if (
                    snapshot is not None
                    and snapshot.meta.get("halt_id") == notification.halt_id
                ):
                    vector = snapshot.vector
                    vector_index = snapshot.vector_index
                spans.append(Span(
                    name="halt.process",
                    category="halt",
                    start=notification.time,
                    end=notification.time,
                    process=notification.process,
                    attrs={
                        "generation": generation,
                        "path": list(notification.path),
                        "hops": len(notification.path),
                    },
                    vector=vector,
                    vector_index=vector_index,
                ))
        self.tracer.replace("halt", spans)

    def _sync_breakpoint_spans(self, agent, system) -> None:
        by_eid = {event.eid: event for event in system.log.events}
        spans: List[Span] = []
        for hit in agent.breakpoint_hits:
            trail = hit.marker.trail
            for index, stage in enumerate(trail):
                event = by_eid.get(stage.eid)
                spans.append(Span(
                    name="lp.stage",
                    category="breakpoint",
                    start=trail[index - 1].time if index else stage.time,
                    end=stage.time,
                    process=stage.process,
                    attrs={
                        "lp_id": hit.marker.lp_id,
                        "stage_index": stage.stage_index,
                        "term": stage.term,
                    },
                    vector=event.vector if event is not None else None,
                    vector_index=(
                        event.vector_index if event is not None else None
                    ),
                ))
            spans.append(Span(
                name="lp.detection",
                category="breakpoint",
                start=trail[0].time if trail else hit.time,
                end=hit.time,
                process=hit.process,
                attrs={"lp_id": hit.marker.lp_id, "hops": len(trail)},
            ))
        self.tracer.replace("breakpoint", spans)

    # -- pull: the collector -------------------------------------------------------

    def _collect(self) -> None:
        system = self._system
        if system is None:
            return
        metrics = self.metrics
        sent = metrics.counter(
            "messages_sent_total",
            "Messages sent, by kind — same counters analysis.metrics reads.",
        )
        for kind, count in system.message_totals().items():
            sent.set_total(count, kind=kind)

        channel_sent = metrics.counter(
            "channel_messages_sent_total", "Per-channel sends by kind.")
        delivered = metrics.counter(
            "channel_messages_delivered_total", "Messages handed to receivers.")
        dropped = metrics.counter(
            "channel_messages_dropped_total",
            "Logical messages permanently lost, by kind.")
        frames = metrics.counter(
            "channel_frames_dropped_total",
            "Wire-eaten frame copies (recovered or not).")
        retransmits = metrics.counter(
            "channel_retransmits_total", "Retransmitted data frames.")
        acks = metrics.counter(
            "channel_acks_total", "Acknowledgement frames by result.")
        duplicates = metrics.counter(
            "channel_duplicates_suppressed_total",
            "Received frames discarded as duplicates.")
        gave_up = metrics.counter(
            "channel_gave_up_total", "Messages abandoned after the retry cap.")
        channels = list(system.channels()) + list(
            getattr(system, "_retired_channels", ())
        )
        for channel in channels:
            stats = channel.stats
            label = str(channel.id)
            for kind, count in stats.sent_by_kind.items():
                if count:
                    channel_sent.set_total(count, channel=label, kind=kind.value)
            delivered.set_total(stats.delivered, channel=label)
            frames.set_total(stats.frames_dropped, channel=label)
            retransmits.set_total(stats.retransmits, channel=label)
            acks.set_total(stats.acks_sent, channel=label, result="sent")
            acks.set_total(stats.acks_dropped, channel=label, result="dropped")
            duplicates.set_total(stats.duplicates_suppressed, channel=label)
            gave_up.set_total(stats.gave_up, channel=label)
            for kind, count in stats.dropped_by_kind.items():
                if count:
                    dropped.set_total(count, channel=label, kind=kind.value)

        events = metrics.counter(
            "process_events_total", "Instrumented events per process.")
        rate = metrics.gauge(
            "process_event_rate", "Events per time unit per process.")
        now = self.clock()
        for name, controller in system.controllers.items():
            count = controller._local_seq
            events.set_total(count, process=name)
            rate.set(count / now if now > 0 else 0.0, process=name)

        tracer = self.tracer
        metrics.histogram(
            "halt_latency", "Halt initiation to convergence, per generation."
        ).set_from(tracer.durations("halt", name="halt.converge"))
        metrics.histogram(
            "snapshot_latency", "C&L snapshot start to completion."
        ).set_from(tracer.durations("snapshot", name="snapshot.record"))
        metrics.histogram(
            "halt_marker_hops",
            "Length of the already-halted path each halt marker carried.",
            buckets=_COUNT_BUCKETS,
        ).set_from(
            float(span.attrs.get("hops", 0))
            for span in tracer.spans("halt") if span.name == "halt.process"
        )
        metrics.histogram(
            "predicate_marker_hops",
            "Stage hits per completed linked-predicate detection.",
            buckets=_COUNT_BUCKETS,
        ).set_from(
            float(span.attrs.get("hops", 0))
            for span in tracer.spans("breakpoint")
            if span.name == "lp.detection"
        )
        metrics.histogram(
            "retransmission_attempts",
            "Retries per retransmission episode.",
            buckets=_COUNT_BUCKETS,
        ).set_from(
            float(span.attrs.get("attempts", 0))
            for span in tracer.spans("retransmission")
        )

        with self._lock:
            recoveries = list(self._recoveries)
        if recoveries:
            metrics.counter(
                "recoveries_total",
                "Supervisor rollback recoveries from checkpoints.",
            ).set_total(len(recoveries))
            victims = metrics.counter(
                "recovered_processes_total",
                "Victim processes restored, per process.",
            )
            per_process: Dict[str, int] = {}
            for record in recoveries:
                for name in record["victims"]:  # type: ignore[union-attr]
                    per_process[name] = per_process.get(name, 0) + 1
            for name, count in sorted(per_process.items()):
                victims.set_total(count, process=name)
            metrics.histogram(
                "recovery_latency",
                "Death detection to cluster restored, wall seconds.",
            ).set_from(float(r["total_s"]) for r in recoveries)  # type: ignore[arg-type]
            metrics.histogram(
                "recovery_restart_latency",
                "Relaunch + re-rendezvous + restore portion, wall seconds.",
            ).set_from(float(r["restart_s"]) for r in recoveries)  # type: ignore[arg-type]
