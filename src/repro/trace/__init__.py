"""Trace recording, serialization, and replay verification."""

from repro.trace.replay import Divergence, assert_replay, compare_logs
from repro.trace.serialize import (
    dump_log,
    dump_state,
    event_from_dict,
    event_to_dict,
    load_log,
    load_state,
    log_from_dict,
    log_to_dict,
    state_from_dict,
    state_to_dict,
)

__all__ = [
    "Divergence",
    "assert_replay",
    "compare_logs",
    "dump_log",
    "dump_state",
    "event_from_dict",
    "event_to_dict",
    "load_log",
    "load_state",
    "log_from_dict",
    "log_to_dict",
    "state_from_dict",
    "state_to_dict",
]
