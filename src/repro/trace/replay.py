"""Deterministic replay verification.

The DES backend is deterministic by construction (seeded RNG streams,
deterministic tie-breaking), which means an execution is fully described by
its configuration. Replay therefore means: run the same configuration again
and demand the identical event history. This module provides the diff
machinery — the first divergence, if any, pinpointed by event index.

Replay is the debugging-world payoff of determinism: a breakpoint session
can be torn down and reconstructed exactly, and a trace file from a bug
report can be validated against the code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.events.event import Event
from repro.events.log import EventLog


@dataclass(frozen=True)
class Divergence:
    """The first point where two executions disagree."""

    index: int
    left: Optional[Event]
    right: Optional[Event]
    reason: str

    def __str__(self) -> str:
        return (
            f"divergence at event #{self.index}: {self.reason}\n"
            f"  left : {self.left!r}\n"
            f"  right: {self.right!r}"
        )


def _event_signature(event: Event) -> Tuple:
    """What must match between a run and its replay. Times are included —
    the simulation clock is part of determinism."""
    return (
        event.process,
        event.kind.value,
        event.detail,
        event.local_seq,
        event.lamport,
        event.vector,
        round(event.time, 9),
        str(event.channel) if event.channel else None,
    )


def compare_logs(left: EventLog, right: EventLog) -> Optional[Divergence]:
    """First divergence between two logs, or None if identical."""
    for index, (a, b) in enumerate(zip(left, right)):
        if _event_signature(a) != _event_signature(b):
            return Divergence(
                index=index, left=a, right=b,
                reason="event signatures differ",
            )
    if len(left) != len(right):
        index = min(len(left), len(right))
        return Divergence(
            index=index,
            left=left[index] if index < len(left) else None,
            right=right[index] if index < len(right) else None,
            reason=f"lengths differ ({len(left)} vs {len(right)})",
        )
    return None


def assert_replay(left: EventLog, right: EventLog) -> None:
    """Raise AssertionError with a readable diff if the logs diverge."""
    divergence = compare_logs(left, right)
    if divergence is not None:
        raise AssertionError(str(divergence))
