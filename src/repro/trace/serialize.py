"""Trace (de)serialization: event logs and global states to/from JSON.

Traces make debugging sessions portable: a run recorded on one machine can
be re-loaded, diffed against a replay, or archived next to a bug report.
Only JSON-representable payloads round-trip exactly; anything else is
stringified (and flagged) rather than dropped.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Union

from repro.events.event import Event, EventKind
from repro.events.log import EventLog
from repro.runtime.state_capture import ProcessStateSnapshot
from repro.snapshot.state import ChannelState, GlobalState
from repro.runtime.payload import UserMessage
from repro.util.codec import payload_to_jsonable as _payload_to_json
from repro.util.errors import TraceError
from repro.util.ids import ChannelId

FORMAT_VERSION = 1


def event_to_dict(event: Event) -> Dict[str, Any]:
    return {
        "eid": event.eid,
        "process": event.process,
        "kind": event.kind.value,
        "time": event.time,
        "lamport": event.lamport,
        "vector": list(event.vector),
        "vector_index": event.vector_index,
        "message": _payload_to_json(event.message),
        "channel": str(event.channel) if event.channel else None,
        "detail": event.detail,
        "local_seq": event.local_seq,
        "attrs": _payload_to_json(dict(event.attrs)),
    }


def event_from_dict(data: Dict[str, Any]) -> Event:
    try:
        return Event(
            eid=data["eid"],
            process=data["process"],
            kind=EventKind(data["kind"]),
            time=data["time"],
            lamport=data["lamport"],
            vector=tuple(data["vector"]),
            vector_index=data["vector_index"],
            message=data.get("message"),
            channel=ChannelId.parse(data["channel"]) if data.get("channel") else None,
            detail=data.get("detail"),
            local_seq=data.get("local_seq", 0),
            attrs=data.get("attrs") or {},
        )
    except (KeyError, ValueError) as exc:
        raise TraceError(f"malformed event record: {exc}") from exc


def log_to_dict(log: EventLog, meta: Union[Dict[str, Any], None] = None) -> Dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "meta": meta or {},
        "events": [event_to_dict(e) for e in log],
    }


def log_from_dict(data: Dict[str, Any]) -> EventLog:
    if data.get("format") != FORMAT_VERSION:
        raise TraceError(f"unsupported trace format {data.get('format')!r}")
    log = EventLog()
    for record in data["events"]:
        log.append(event_from_dict(record))
    return log


def snapshot_to_dict(snapshot: ProcessStateSnapshot) -> Dict[str, Any]:
    return {
        "process": snapshot.process,
        "state": _payload_to_json(snapshot.state),
        "local_seq": snapshot.local_seq,
        "lamport": snapshot.lamport,
        "vector": list(snapshot.vector),
        "vector_index": snapshot.vector_index,
        "time": snapshot.time,
        "terminated": snapshot.terminated,
        "meta": _payload_to_json(snapshot.meta),
    }


def state_to_dict(state: GlobalState) -> Dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "origin": state.origin,
        "generation": state.generation,
        "meta": _payload_to_json(state.meta),
        "processes": {
            name: snapshot_to_dict(snap) for name, snap in state.processes.items()
        },
        "channels": {
            str(channel): {
                "messages": [
                    {
                        "payload": _payload_to_json(m.payload),
                        "tag": m.tag,
                        "lamport": m.lamport,
                        "vector": list(m.vector),
                    }
                    for m in channel_state.messages
                ],
                "complete": channel_state.complete,
            }
            for channel, channel_state in state.channels.items()
        },
    }


def state_from_dict(data: Dict[str, Any]) -> GlobalState:
    if data.get("format") != FORMAT_VERSION:
        raise TraceError(f"unsupported state format {data.get('format')!r}")
    processes = {}
    for name, record in data["processes"].items():
        processes[name] = ProcessStateSnapshot(
            process=record["process"],
            state=dict(record["state"]),
            local_seq=record["local_seq"],
            lamport=record["lamport"],
            vector=tuple(record["vector"]),
            vector_index=record["vector_index"],
            time=record["time"],
            terminated=record["terminated"],
            meta=dict(record.get("meta") or {}),
        )
    channels = {}
    for channel_text, record in data["channels"].items():
        channel = ChannelId.parse(channel_text)
        channels[channel] = ChannelState(
            channel=channel,
            messages=tuple(
                UserMessage(
                    payload=m["payload"],
                    tag=m.get("tag"),
                    lamport=m.get("lamport", 0),
                    vector=tuple(m.get("vector", ())),
                )
                for m in record["messages"]
            ),
            complete=record["complete"],
        )
    return GlobalState(
        origin=data["origin"],
        processes=processes,
        channels=channels,
        generation=data["generation"],
        meta=dict(data.get("meta") or {}),
    )


# -- file helpers ----------------------------------------------------------------


def dump_log(log: EventLog, fp: IO[str], meta: Union[Dict[str, Any], None] = None) -> None:
    json.dump(log_to_dict(log, meta), fp)


def load_log(fp: IO[str]) -> EventLog:
    return log_from_dict(json.load(fp))


def dump_state(state: GlobalState, fp: IO[str]) -> None:
    json.dump(state_to_dict(state), fp)


def load_state(fp: IO[str]) -> GlobalState:
    return state_from_dict(json.load(fp))
