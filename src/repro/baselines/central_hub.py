"""Baseline: the centralized-hub debugger (§4's BUGNET/Schiffenbaur model).

"A variation on the second approach re-routes all normal communications
through a centralized debugger process. While this simplifies the detection
of distributed breakpoints by providing a single point of event ordering,
it also has several disadvantages. First, there can be substantial
communication overhead in re-routing the messages through a central hub.
Second, the change in message flow could substantially change the execution
of the program."

This module builds exactly that system: user processes keep their *logical*
topology (their code is unchanged), but every application message physically
travels src→hub→dst. The hub observes a totally-ordered message stream and
can detect message-sequence breakpoints trivially. Experiment E10 measures
the costs the paper lists: 2× message hops, ~2× delivery latency, and the
perturbation of the program's timing relative to a direct run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.network.latency import LatencyModel
from repro.network.topology import Topology, star
from repro.runtime.context import ProcessContext
from repro.runtime.process import Process
from repro.runtime.system import System
from repro.util.errors import ConfigurationError
from repro.util.ids import ProcessId

HUB_NAME: ProcessId = "hub"


@dataclass(frozen=True)
class HubRecord:
    """One message observed (and forwarded) by the hub."""

    seq: int
    src: ProcessId
    dst: ProcessId
    tag: Optional[str]
    time: float


class HubProcess(Process):
    """The central relay: unwraps, records, re-sends."""

    def __init__(self) -> None:
        self.records: List[HubRecord] = []
        self._seq = 0

    def on_message(self, ctx: ProcessContext, src: ProcessId, payload: Any) -> None:
        wrapper = dict(payload)
        self._seq += 1
        self.records.append(
            HubRecord(
                seq=self._seq,
                src=wrapper["src"],
                dst=wrapper["dst"],
                tag=wrapper.get("tag"),
                time=ctx.now,
            )
        )
        ctx.send(wrapper["dst"], wrapper, tag="hubfwd")

    # -- the "single point of event ordering" ---------------------------------

    def detect_sequence(
        self, pattern: Sequence[Tuple[Optional[ProcessId], Optional[ProcessId], Optional[str]]]
    ) -> Optional[Tuple[HubRecord, ...]]:
        """Find the pattern (src, dst, tag — None matches anything) as a
        subsequence of the hub's totally-ordered message stream. This is the
        detection simplicity the paper concedes the hub buys."""
        found: List[HubRecord] = []
        index = 0
        for record in self.records:
            want_src, want_dst, want_tag = pattern[index]
            if (
                (want_src is None or record.src == want_src)
                and (want_dst is None or record.dst == want_dst)
                and (want_tag is None or record.tag == want_tag)
            ):
                found.append(record)
                index += 1
                if index == len(pattern):
                    return tuple(found)
        return None


class _HubContext:
    """Context proxy handed to user code in a hubbed system: identical to
    the real context except sends detour through the hub and neighbours
    report the logical topology."""

    def __init__(self, real: ProcessContext, logical: Topology) -> None:
        self._real = real
        self._logical = logical

    def __getattr__(self, name: str) -> Any:
        return getattr(self._real, name)

    @property
    def state(self):
        return self._real.state

    def send(self, dst: ProcessId, payload: Any, tag: Optional[str] = None) -> None:
        if dst not in self.neighbors_out():
            raise ConfigurationError(
                f"{self._real.name!r} has no logical channel to {dst!r}"
            )
        wrapper = {"src": self._real.name, "dst": dst, "data": payload, "tag": tag}
        self._real.send(HUB_NAME, wrapper, tag="hubbound")

    def neighbors_out(self) -> Tuple[ProcessId, ...]:
        return tuple(c.dst for c in self._logical.outgoing(self._real.name))

    def neighbors_in(self) -> Tuple[ProcessId, ...]:
        return tuple(c.src for c in self._logical.incoming(self._real.name))


class _HubbedAdapter(Process):
    """Wraps an unmodified user process for life behind the hub."""

    def __init__(self, inner: Process, logical: Topology) -> None:
        self.inner = inner
        self.logical = logical

    def _ctx(self, ctx: ProcessContext) -> _HubContext:
        return _HubContext(ctx, self.logical)

    def on_start(self, ctx: ProcessContext) -> None:
        self.inner.on_start(self._ctx(ctx))

    def on_message(self, ctx: ProcessContext, src: ProcessId, payload: Any) -> None:
        wrapper = dict(payload)
        self.inner.on_message(self._ctx(ctx), wrapper["src"], wrapper["data"])

    def on_timer(self, ctx: ProcessContext, name: str, payload: Any) -> None:
        self.inner.on_timer(self._ctx(ctx), name, payload)


def build_hubbed_system(
    logical_topology: Topology,
    processes: Dict[ProcessId, Process],
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
) -> Tuple[System, HubProcess]:
    """A system where the same (unmodified) processes communicate through a
    central hub instead of their logical channels.

    Returns ``(system, hub_process)`` — inspect ``hub_process.records`` for
    the totally-ordered stream.
    """
    hub = HubProcess()
    physical = star(HUB_NAME, logical_topology.processes)
    staffed: Dict[ProcessId, Process] = {
        name: _HubbedAdapter(process, logical_topology)
        for name, process in processes.items()
    }
    staffed[HUB_NAME] = hub
    system = System(physical, staffed, seed=seed, latency=latency)
    return system, hub


def hop_count(system: System) -> int:
    """Total user-message hops in a run (hub runs pay two per message)."""
    return system.message_totals().get("user", 0)
