"""Baseline: naive centralized halting (the IDD-style strategy of §4).

The comparator model: a central monitor learns that something interesting
happened (one notification latency), then broadcasts a STOP command to
every process; each process halts the moment its STOP arrives. No markers,
no channel discipline.

What the paper predicts — and experiment E9 measures:

* **Drift.** Every process keeps executing during the notify+broadcast
  round-trip, so the states the programmer inspects lie *past* the
  interesting point by (latency × event rate). The marker algorithm pins
  the cut to the initiation instant exactly (Theorem 2), so its drift
  against the reference snapshot is zero.
* **Indeterminable channels.** Without markers there is no "last message"
  delimiter: after the freeze the debugger cannot know whether a channel
  is drained or a message is still crawling toward it. Every channel state
  is reported ``complete=False``.

The resulting cut is still *causally* consistent (halted processes send
nothing), which is precisely why the interesting comparison is timeliness,
not orphan messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.network.message import Envelope, MessageKind
from repro.runtime.controller import ProcessController
from repro.runtime.interfaces import ControlPlugin
from repro.runtime.state_capture import ProcessStateSnapshot
from repro.runtime.system import System
from repro.snapshot.state import ChannelState, GlobalState
from repro.util.errors import HaltingError
from repro.util.ids import ChannelId, ProcessId


@dataclass(frozen=True)
class NaiveStop:
    """The broadcast STOP command."""

    stop_id: int


@dataclass(frozen=True)
class NaiveTripwire:
    """Notification from the process that observed the interesting point."""

    stop_id: int


class NaiveHaltAgent(ControlPlugin):
    """Halts the process the moment a STOP arrives. On the central monitor
    (a never-halting process) a tripwire notification triggers the
    broadcast instead."""

    kinds = frozenset({MessageKind.DEBUG_CONTROL})

    def __init__(self, controller: ProcessController) -> None:
        self.attach(controller)
        self.last_stop_id = 0

    def on_control(self, envelope: Envelope) -> None:
        command = envelope.payload
        if isinstance(command, NaiveTripwire):
            if not self.controller.never_halts:
                raise HaltingError("tripwire sent to a non-monitor process")
            if command.stop_id > self.last_stop_id:
                self.last_stop_id = command.stop_id
                self.broadcast(command.stop_id)
        elif isinstance(command, NaiveStop):
            if command.stop_id > self.last_stop_id:
                self.last_stop_id = command.stop_id
                if not self.controller.halted and not self.controller.never_halts:
                    self.controller.halt(stop_id=command.stop_id, naive=True)
        else:
            raise HaltingError(f"naive baseline got unknown control {command!r}")

    def broadcast(self, stop_id: int) -> None:
        """Monitor side: one STOP per outgoing channel."""
        for channel_id in self.controller.outgoing_channels():
            self.controller.send_control(
                channel_id, MessageKind.DEBUG_CONTROL, NaiveStop(stop_id=stop_id)
            )

    def report(self, stop_id: int, monitor: ProcessId) -> None:
        """Process side: tell the monitor the interesting point was hit."""
        self.controller.send_control(
            ChannelId(self.controller.name, monitor),
            MessageKind.DEBUG_CONTROL,
            NaiveTripwire(stop_id=stop_id),
        )


class NaiveHaltCoordinator:
    """Drives the naive baseline over an extended (monitor-bearing) topology.

    Use :func:`repro.network.topology.Topology.with_debugger` to add the
    central monitor and build the system with ``never_halt={monitor}`` —
    the same physical set-up the real debugger gets, so the comparison in
    E9 isolates the *algorithm*, not the wiring.
    """

    def __init__(self, system: System, monitor: ProcessId = "d") -> None:
        if monitor not in system.controllers:
            raise HaltingError(
                f"monitor process {monitor!r} not in system — build the "
                "topology with .with_debugger() first"
            )
        self.system = system
        self.monitor = monitor
        self._next_stop_id = 1
        self.agents: Dict[ProcessId, NaiveHaltAgent] = {}
        for name in system.topology.processes:
            controller = system.controller(name)
            agent = NaiveHaltAgent(controller)
            controller.install(agent)
            self.agents[name] = agent

    def trip(self, at_process: ProcessId) -> int:
        """The interesting point was observed at ``at_process``: it notifies
        the monitor, which broadcasts STOP. Returns the stop generation."""
        stop_id = self._next_stop_id
        self._next_stop_id += 1
        self.agents[at_process].report(stop_id, self.monitor)
        return stop_id

    def stop_now(self) -> int:
        """Broadcast STOP directly from the monitor (no tripwire hop)."""
        stop_id = self._next_stop_id
        self._next_stop_id += 1
        self.agents[self.monitor].last_stop_id = stop_id
        self.agents[self.monitor].broadcast(stop_id)
        return stop_id

    def all_halted(self) -> bool:
        return self.system.all_user_processes_halted()

    def collect(self) -> GlobalState:
        """Assemble the naively-halted state. Channel contents are whatever
        happened to be buffered — with no marker behind them, none can be
        declared complete."""
        if not self.all_halted():
            raise HaltingError("not all processes halted")
        processes: Dict[ProcessId, ProcessStateSnapshot] = {}
        channels: Dict[ChannelId, ChannelState] = {}
        for name in self.system.user_process_names:
            controller = self.system.controller(name)
            assert controller.halted_snapshot is not None
            processes[name] = controller.halted_snapshot
            for channel_id, envelopes in controller.halt_buffers.items():
                if channel_id.src == self.monitor:
                    continue
                channels[channel_id] = ChannelState(
                    channel=channel_id,
                    messages=tuple(env.payload for env in envelopes),
                    complete=False,  # no marker: drained-ness is unknowable
                )
        return GlobalState(
            origin="naive",
            processes=processes,
            channels=channels,
            generation=self._next_stop_id - 1,
        )
