"""Comparator baselines from the paper's §4 survey."""

from repro.baselines.central_hub import (
    HUB_NAME,
    HubProcess,
    HubRecord,
    build_hubbed_system,
    hop_count,
)
from repro.baselines.naive_halt import (
    NaiveHaltAgent,
    NaiveHaltCoordinator,
    NaiveStop,
    NaiveTripwire,
)

__all__ = [
    "HUB_NAME",
    "HubProcess",
    "HubRecord",
    "NaiveHaltAgent",
    "NaiveHaltCoordinator",
    "NaiveStop",
    "NaiveTripwire",
    "build_hubbed_system",
    "hop_count",
]
