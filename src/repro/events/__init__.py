"""Event model: the paper's 5-tuple events, logical clocks, event logs."""

from repro.events.clocks import (
    ClockFrame,
    LamportClock,
    VectorClock,
    concurrent,
    vector_less,
)
from repro.events.event import Event, EventKind
from repro.events.log import EventLog

__all__ = [
    "ClockFrame",
    "Event",
    "EventKind",
    "EventLog",
    "LamportClock",
    "VectorClock",
    "concurrent",
    "vector_less",
]
