"""The event model: the paper's 5-tuple plus detectability metadata.

§2.1 defines an event as a 5-tuple ``<p, s, ss, M, c>``: process, state
before, state after, message, and channel (``M``/``c`` null when no message
is involved). :class:`Event` is that tuple made concrete, extended with the
bookkeeping needed by breakpoints and by our analyses:

* ``kind`` — which of the detectable occurrences of §3.2 this is (message
  sent/received, procedure entered, process created/terminated, …);
* ``time`` — virtual occurrence time (for reporting only — the algorithms
  never read it, since a real distributed system has no global clock);
* ``lamport`` / ``vector`` — logical clocks maintained by the instrumentation
  layer. The paper's algorithms do not need them; our *oracles* do (they
  decide happened-before exactly, which is how experiments E7/E8 check the
  detectors against ground truth).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Tuple

from repro.util.ids import ChannelId, ProcessId


class EventKind(enum.Enum):
    """Detectable event classes (§3.2's Simple Predicate vocabulary)."""

    SEND = "send"
    RECEIVE = "receive"
    PROCEDURE_ENTRY = "enter"
    PROCEDURE_EXIT = "exit"
    STATE_CHANGE = "state"
    TIMER = "timer"
    PROCESS_CREATED = "created"
    PROCESS_TERMINATED = "terminated"
    CHANNEL_CREATED = "chan_created"
    CHANNEL_DESTROYED = "chan_destroyed"
    #: A message was lost by the (faulty) network. Recorded by the *system*,
    #: not the process — no process observes a drop, but traces and replay
    #: must see it or lossy executions become unexplainable after the fact.
    MESSAGE_DROPPED = "msg_dropped"
    #: A process was killed by fault injection. Ground truth for the oracle
    #: and for crash-mid-halt reports; invisible to the algorithms under test.
    PROCESS_CRASHED = "crashed"


@dataclass(frozen=True, slots=True)
class Event:
    """One occurrence at one process. Immutable once recorded.

    Slotted: a bounded-exploration run records hundreds of these per
    schedule, so per-instance ``__dict__`` overhead is measurable.
    """

    #: Per-system unique, monotonically increasing id (total order of record).
    eid: int
    #: The process at which the event occurred (the paper's ``p``).
    process: ProcessId
    #: Event class.
    kind: EventKind
    #: Virtual time of occurrence.
    time: float
    #: Lamport logical timestamp.
    lamport: int
    #: Vector clock at (i.e. just after) the event.
    vector: Tuple[int, ...]
    #: Index of ``process`` within the vector-clock component order.
    vector_index: int
    #: The paper's ``s``: process state before the event (may be omitted).
    state_before: Optional[Mapping[str, Any]] = None
    #: The paper's ``ss``: process state after the event (may be omitted).
    state_after: Optional[Mapping[str, Any]] = None
    #: The paper's ``M``: message payload, or None.
    message: Any = None
    #: The paper's ``c``: channel, or None.
    channel: Optional[ChannelId] = None
    #: Kind-specific detail: procedure name, timer name, state key, tag.
    detail: Optional[str] = None
    #: Local (per-process) sequence number of this event.
    local_seq: int = 0
    #: Extra attributes for predicates (message tag, payload fields...).
    attrs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def five_tuple(self) -> Tuple[ProcessId, Any, Any, Any, Optional[ChannelId]]:
        """The literal ``<p, s, ss, M, c>`` of the paper's Definition."""
        return (self.process, self.state_before, self.state_after, self.message, self.channel)

    def happened_before(self, other: "Event") -> bool:
        """Exact Lamport happened-before, decided from vector clocks.

        ``a → b`` iff ``V(a) < V(b)`` component-wise with strict inequality
        somewhere. Requires both events to come from the same execution
        (same vector arity).
        """
        if len(self.vector) != len(other.vector):
            raise ValueError("events come from different executions")
        return _vector_less(self.vector, other.vector)

    def concurrent_with(self, other: "Event") -> bool:
        """True iff neither event happened-before the other."""
        return not self.happened_before(other) and not other.happened_before(self)

    def __repr__(self) -> str:
        where = f"@{self.process}"
        what = self.detail or (str(self.channel) if self.channel else "")
        return f"Event#{self.eid}({self.kind.value}{('/' + what) if what else ''}{where}, t={self.time:.4f})"


def _vector_less(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    le_everywhere = all(x <= y for x, y in zip(a, b))
    return le_everywhere and any(x < y for x, y in zip(a, b))
