"""Logical clocks: Lamport scalar clocks and vector clocks.

Lamport's happened-before relation (his 1978 paper, the paper's reference
[2]) is the ordering that makes events "detectable" (§1, §3). The
instrumentation layer stamps every event with both clock types:

* the **Lamport clock** is cheap and gives a total order *consistent with*
  happened-before (used for readable reports);
* the **vector clock** decides happened-before *exactly* and powers the
  oracles that validate the marker-based detectors (E7) and partition the
  SCP set into ordered/unordered pairs (E8, Fig. 4).

Clock metadata piggybacks on user messages the same way the paper suggests
tagging messages (§3.6); the algorithms under test never read it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.util.ids import ProcessId


class LamportClock:
    """Scalar logical clock for one process."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def tick(self) -> int:
        """Advance for a local or send event; returns the new timestamp."""
        self._value += 1
        return self._value

    def merge(self, received: int) -> int:
        """Advance for a receive event carrying ``received``."""
        self._value = max(self._value, received) + 1
        return self._value

    def load(self, value: int) -> None:
        """Restore a previously captured timestamp (state restoration)."""
        if value < 0:
            raise ValueError(f"lamport timestamp must be >= 0, got {value}")
        self._value = value


class VectorClock:
    """Vector clock for one process over a fixed process population.

    The component order is fixed at system build time; every clock in one
    execution shares the same ``index_of`` mapping so vectors are comparable.
    """

    __slots__ = ("_index", "_components")

    def __init__(self, owner_index: int, size: int) -> None:
        if not 0 <= owner_index < size:
            raise ValueError(f"owner index {owner_index} out of range for size {size}")
        self._index = owner_index
        self._components: List[int] = [0] * size

    @property
    def owner_index(self) -> int:
        return self._index

    def snapshot(self) -> Tuple[int, ...]:
        return tuple(self._components)

    def tick(self) -> Tuple[int, ...]:
        """Advance own component (local/send event)."""
        self._components[self._index] += 1
        return self.snapshot()

    def advance(self) -> None:
        """Advance own component without building a snapshot tuple.

        Hot-path variant of :meth:`tick` for callers that stamp the event
        separately and would otherwise discard the returned snapshot.
        """
        self._components[self._index] += 1

    def merge(self, received: Sequence[int]) -> Tuple[int, ...]:
        """Component-wise max with ``received``, then advance own (receive)."""
        if len(received) != len(self._components):
            raise ValueError("vector clock arity mismatch")
        self._components = [
            max(mine, theirs) for mine, theirs in zip(self._components, received)
        ]
        self._components[self._index] += 1
        return self.snapshot()

    def load(self, values: Sequence[int]) -> None:
        """Restore a previously captured vector (state restoration)."""
        if len(values) != len(self._components):
            raise ValueError("vector clock arity mismatch")
        if any(v < 0 for v in values):
            raise ValueError("vector components must be >= 0")
        self._components = list(values)


class ClockFrame:
    """Shared component-order registry for one execution."""

    def __init__(self, processes: Sequence[ProcessId]) -> None:
        self._order: Tuple[ProcessId, ...] = tuple(processes)
        self._index: Dict[ProcessId, int] = {
            name: i for i, name in enumerate(self._order)
        }
        if len(self._index) != len(self._order):
            raise ValueError("duplicate process names in clock frame")

    @property
    def order(self) -> Tuple[ProcessId, ...]:
        return self._order

    def index_of(self, process: ProcessId) -> int:
        return self._index[process]

    def clock_for(self, process: ProcessId) -> VectorClock:
        return VectorClock(self._index[process], len(self._order))


def vector_less(a: Sequence[int], b: Sequence[int]) -> bool:
    """``a < b`` in the vector-clock partial order (strict)."""
    if len(a) != len(b):
        raise ValueError("vector clock arity mismatch")
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def concurrent(a: Sequence[int], b: Sequence[int]) -> bool:
    """Neither ``a < b`` nor ``b < a``."""
    return not vector_less(a, b) and not vector_less(b, a)
