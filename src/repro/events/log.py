"""Event logs and happened-before queries over a recorded execution.

The log is the ground truth the oracles work from: the marker-based
detectors under test (halting, linked predicates) see only messages, while
the analyses in :mod:`repro.analysis` replay questions against this log.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.events.event import Event, EventKind
from repro.util.ids import ProcessId


class EventLog:
    """Append-only record of every instrumented event in one execution."""

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._by_process: Dict[ProcessId, List[Event]] = {}
        self._last_eid = -1

    def append(self, event: Event) -> None:
        if event.eid <= self._last_eid:
            raise ValueError(
                f"event ids must increase: got {event.eid} after {self._last_eid}"
            )
        self._last_eid = event.eid
        self._events.append(event)
        per_process = self._by_process.get(event.process)
        if per_process is None:
            per_process = self._by_process[event.process] = []
        per_process.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    @property
    def events(self) -> Tuple[Event, ...]:
        return tuple(self._events)

    def for_process(self, process: ProcessId) -> Tuple[Event, ...]:
        """Events at one process, in local (program) order."""
        return tuple(self._by_process.get(process, ()))

    def processes(self) -> Tuple[ProcessId, ...]:
        return tuple(self._by_process)

    def of_kind(self, kind: EventKind) -> Tuple[Event, ...]:
        return tuple(e for e in self._events if e.kind is kind)

    def where(self, predicate: Callable[[Event], bool]) -> Tuple[Event, ...]:
        return tuple(e for e in self._events if predicate(e))

    def find(
        self,
        kind: Optional[EventKind] = None,
        process: Optional[ProcessId] = None,
        detail: Optional[str] = None,
    ) -> Tuple[Event, ...]:
        """Convenience filter used heavily by tests."""
        result: Sequence[Event] = self._events
        if process is not None:
            result = self._by_process.get(process, ())
        if kind is not None:
            result = [e for e in result if e.kind is kind]
        if detail is not None:
            result = [e for e in result if e.detail == detail]
        return tuple(result)

    # -- happened-before utilities -------------------------------------------

    def happened_before(self, a: Event, b: Event) -> bool:
        return a.happened_before(b)

    def causal_past(self, event: Event) -> Tuple[Event, ...]:
        """All logged events that happened-before ``event``."""
        return tuple(e for e in self._events if e.happened_before(event))

    def concurrent_pairs(self) -> Iterator[Tuple[Event, Event]]:
        """All unordered (concurrent) event pairs — O(n²), test-sized logs."""
        for i, a in enumerate(self._events):
            for b in self._events[i + 1 :]:
                if a.concurrent_with(b):
                    yield (a, b)

    def matches_in_order(self, events: Sequence[Event]) -> bool:
        """True iff the given events form a happened-before chain."""
        return all(x.happened_before(y) for x, y in zip(events, events[1:]))
