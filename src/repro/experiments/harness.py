"""Shared experiment harness: paired runs with identical local triggers.

Experiment E2 (Theorem 2) needs two executions of the *same* program that
differ only in which debugging-system algorithm fires at the same execution
point: one run halts, the twin run snapshots. "Same point" cannot be a
wall-clock time (runs drift once control traffic differs) — it must be a
*local* condition: "when process X has executed its N-th user event". The
:class:`LocalTrigger` plugin implements that condition identically in both
runs, because the user-level execution prefix is identical by the system's
determinism contract.

The trigger defers its action by one zero-delay kernel step so that an
algorithm never fires in the middle of a user message handler — a process
"instant" in the simulation is the boundary between two handler steps.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.events.event import Event
from repro.halting.algorithm import HaltingCoordinator
from repro.network.latency import LatencyModel, UniformLatency
from repro.network.topology import Topology
from repro.runtime.interfaces import ControlPlugin
from repro.runtime.process import Process
from repro.runtime.system import System
from repro.simulation.kernel import PRIORITY_INTERNAL
from repro.snapshot.chandy_lamport import SnapshotCoordinator
from repro.snapshot.state import GlobalState
from repro.util.ids import ChannelId, ProcessId


class LocalTrigger(ControlPlugin):
    """Fire ``action`` right after this process's ``nth`` user-level event."""

    kinds = frozenset()

    def __init__(self, nth_event: int, action: Callable[[], None]) -> None:
        self.nth_event = nth_event
        self.action = action
        self.fired = False
        self.fired_at: Optional[float] = None

    def on_local_event(self, event: Event) -> None:
        if self.fired or event.local_seq < self.nth_event:
            return
        self.fired = True
        system = self.controller.system
        kernel = getattr(system, "kernel", None)
        if kernel is None:
            # Threaded backend: defer through the controller, which posts
            # to the mailbox (or stages with the scheduling gate) under
            # the same ``internal:trigger:<process>`` label the DES path
            # produces below — schedules recorded on either backend
            # replay on the other.
            self.fired_at = system.now
            self.controller.defer(self.action, label="trigger")
            return
        self.fired_at = kernel.now
        kernel.schedule(
            0.0,
            self.action,
            priority=PRIORITY_INTERNAL,
            tiebreak=("trigger", self.controller.name),
        )


BuildResult = Tuple[Topology, Dict[ProcessId, Process]]


def build_system(
    builder: Callable[[], BuildResult],
    seed: int,
    latency: Optional[LatencyModel] = None,
    channel_latencies: Optional[Dict[ChannelId, LatencyModel]] = None,
) -> System:
    """One system instance with the harness's default latency model."""
    topo, processes = builder()
    return System(
        topo,
        processes,
        seed=seed,
        latency=latency or UniformLatency(0.4, 1.6),
        channel_latencies=channel_latencies,
    )


def install_trigger(
    system: System,
    process: ProcessId,
    nth_event: int,
    action: Callable[[], None],
) -> LocalTrigger:
    trigger = LocalTrigger(nth_event, action)
    system.controller(process).install(trigger)
    return trigger


def run_halting(
    builder: Callable[[], BuildResult],
    seed: int,
    trigger_process: ProcessId,
    trigger_event: int,
    latency: Optional[LatencyModel] = None,
    channel_latencies: Optional[Dict[ChannelId, LatencyModel]] = None,
    extra_initiators: Tuple[ProcessId, ...] = (),
    max_events: int = 1_000_000,
) -> Tuple[System, HaltingCoordinator, GlobalState]:
    """Run the workload, halting via the paper's algorithm at the trigger.

    ``extra_initiators`` initiate simultaneously with the trigger process
    (same halt_id), exercising the algorithm's multi-initiator tolerance.
    Returns the quiesced system, the coordinator, and ``S_h``.
    """
    system = build_system(builder, seed, latency, channel_latencies)
    coordinator = HaltingCoordinator(system)

    def initiate() -> None:
        coordinator.initiate([trigger_process, *extra_initiators])

    install_trigger(system, trigger_process, trigger_event, initiate)
    system.run_to_quiescence(max_events=max_events)
    state = coordinator.collect()
    return system, coordinator, state


def run_snapshot(
    builder: Callable[[], BuildResult],
    seed: int,
    trigger_process: ProcessId,
    trigger_event: int,
    latency: Optional[LatencyModel] = None,
    channel_latencies: Optional[Dict[ChannelId, LatencyModel]] = None,
    extra_initiators: Tuple[ProcessId, ...] = (),
    max_events: int = 1_000_000,
) -> Tuple[System, SnapshotCoordinator, GlobalState]:
    """Twin of :func:`run_halting` that records a C&L snapshot instead."""
    system = build_system(builder, seed, latency, channel_latencies)
    coordinator = SnapshotCoordinator(system)

    def initiate() -> None:
        coordinator.initiate([trigger_process, *extra_initiators])

    install_trigger(system, trigger_process, trigger_event, initiate)
    system.run_to_quiescence(max_events=max_events)
    state = coordinator.collect()
    return system, coordinator, state
