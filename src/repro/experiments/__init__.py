"""Experiment harnesses shared by tests and benchmarks."""

from repro.experiments.harness import (
    LocalTrigger,
    build_system,
    install_trigger,
    run_halting,
    run_snapshot,
)

__all__ = [
    "LocalTrigger",
    "build_system",
    "install_trigger",
    "run_halting",
    "run_snapshot",
]
