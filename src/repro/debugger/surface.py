"""One command surface over all three debug-session backends.

The debugger service (:mod:`repro.debugger.service`) speaks to exactly one
shape of session — this one. A :class:`SessionSurface` normalizes the small
API differences between :class:`~repro.debugger.session.DebugSession`
(virtual time: "waiting" means driving the kernel),
:class:`~repro.debugger.threaded_session.ThreadedDebugSession`, and
:class:`~repro.distributed.session.DistributedDebugSession` (both wall
clock: "waiting" means polling append-only notification state) into one
vocabulary: names, liveness, halted set, generation, halt / wait_halt /
resume / step / inspect / global state / breakpoints.

The surfaces hold no state of their own beyond the wrapped session — every
query is answered by the session, so two surfaces over one session always
agree (which is what lets many debug-service sessions share one cluster).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.snapshot.state import GlobalState
from repro.util.errors import ReproError
from repro.util.ids import ProcessId


class SessionSurface:
    """Abstract backend-neutral debug-session API (see module docstring)."""

    #: Backend tag reported to attach clients.
    backend = "abstract"
    #: True when waiting requires driving a virtual clock under the service
    #: cluster lock (the DES); False when waits only poll notification
    #: state and may run unlocked alongside other sessions' commands.
    drives_clock = False

    def process_names(self) -> List[ProcessId]:
        """Every user process of the debugged program."""
        raise NotImplementedError

    def alive(self) -> List[ProcessId]:
        """User processes whose host is not crashed/dead."""
        raise NotImplementedError

    def halted_names(self) -> List[ProcessId]:
        """User processes currently frozen."""
        raise NotImplementedError

    def current_generation(self) -> int:
        """The highest halt generation observed."""
        raise NotImplementedError

    def halt(self, timeout: float = 10.0) -> Any:
        """Initiate a watchdog-bounded halt; returns the PartialHaltReport."""
        raise NotImplementedError

    def wait_halt(self, timeout: float = 30.0) -> bool:
        """Block until every user process halted (breakpoint convergence)."""
        raise NotImplementedError

    def resume(self, timeout: float = 10.0, allow_partial: bool = False) -> bool:
        """Resume the halted generation; True when everyone is running."""
        raise NotImplementedError

    def step(self, process: ProcessId, channel: Optional[str] = None) -> Any:
        """Deliver one buffered message at ``process``; returns StepReport."""
        raise NotImplementedError

    def inspect(self, process: ProcessId) -> Dict[str, object]:
        """One process's current state via the control protocol."""
        raise NotImplementedError

    def global_state(self, allow_partial: bool = False) -> GlobalState:
        """The consistent cut ``S_h`` assembled from state reports."""
        raise NotImplementedError

    def set_breakpoint(self, predicate: Any, halt: bool = True) -> int:
        """Arm a linked predicate; returns the session-level lp_id."""
        raise NotImplementedError

    def clear_breakpoint(self, lp_id: int) -> None:
        """Disarm one linked predicate wherever its stages are."""
        raise NotImplementedError

    def halting_order(self) -> List[ProcessId]:
        """§2.2.4 order in which processes reported halting."""
        raise NotImplementedError

    def halt_paths(self) -> Dict[ProcessId, tuple]:
        """Per process, the already-halted path its halt marker carried."""
        raise NotImplementedError

    def breakpoint_hits(self) -> List[Any]:
        """Every BreakpointHit the debugger has learned about."""
        raise NotImplementedError

    def kill(self, process: ProcessId) -> None:
        """SIGKILL one member — real process death, distributed only."""
        raise ReproError(f"kill is distributed-backend-only, not {self.backend}")

    def shutdown(self) -> None:
        """Tear the debugged program down."""
        raise NotImplementedError


class DESSurface(SessionSurface):
    """Surface over the virtual-time :class:`DebugSession`.

    Timeouts are advisory here — the DES "waits" by running the kernel,
    which is always bounded by an event budget, so a wedged program shows
    up as a run that returns without halting rather than a blocked call.
    """

    backend = "des"
    drives_clock = True

    def __init__(self, session: Any) -> None:
        self.session = session

    def process_names(self) -> List[ProcessId]:
        return list(self.session.system.user_process_names)

    def alive(self) -> List[ProcessId]:
        return self.session.alive()

    def halted_names(self) -> List[ProcessId]:
        return [
            n for n in self.session.system.user_process_names
            if self.session.system.controller(n).halted
        ]

    def current_generation(self) -> int:
        return self.session.current_generation()

    def halt(self, timeout: float = 10.0) -> Any:
        # Virtual time: the stock watchdog budget is generous and cheap.
        return self.session.halt_with_watchdog()

    def wait_halt(self, timeout: float = 30.0) -> bool:
        return self.session.run().stopped

    def resume(self, timeout: float = 10.0, allow_partial: bool = False) -> bool:
        self.session.resume()
        return True

    def step(self, process: ProcessId, channel: Optional[str] = None) -> Any:
        return self.session.step(process, channel=channel)

    def inspect(self, process: ProcessId) -> Dict[str, object]:
        return self.session.inspect(process)

    def global_state(self, allow_partial: bool = False) -> GlobalState:
        return self.session.global_state(allow_partial=allow_partial)

    def set_breakpoint(self, predicate: Any, halt: bool = True) -> int:
        return self.session.set_breakpoint(predicate, halt=halt)

    def clear_breakpoint(self, lp_id: int) -> None:
        self.session.clear_breakpoint(lp_id)

    def halting_order(self) -> List[ProcessId]:
        return self.session.halting_order()

    def halt_paths(self) -> Dict[ProcessId, tuple]:
        return self.session.halt_paths()

    def breakpoint_hits(self) -> List[Any]:
        return self.session.breakpoint_hits()

    def shutdown(self) -> None:
        pass  # the DES owns no threads, sockets, or children


class ThreadedSurface(SessionSurface):
    """Surface over :class:`ThreadedDebugSession` (thread per process)."""

    backend = "threaded"

    def __init__(self, session: Any) -> None:
        self.session = session

    def process_names(self) -> List[ProcessId]:
        return list(self.session.system.user_process_names)

    def alive(self) -> List[ProcessId]:
        return self.session.alive()

    def halted_names(self) -> List[ProcessId]:
        return [
            n for n in self.session.system.user_process_names
            if self.session.system.controller(n).halted
        ]

    def current_generation(self) -> int:
        return self.session.current_generation()

    def halt(self, timeout: float = 10.0) -> Any:
        return self.session.halt_with_watchdog(timeout=timeout)

    def wait_halt(self, timeout: float = 30.0) -> bool:
        return self.session.run_until_stopped(timeout=timeout)

    def resume(self, timeout: float = 10.0, allow_partial: bool = False) -> bool:
        return self.session.resume(timeout=timeout)

    def step(self, process: ProcessId, channel: Optional[str] = None) -> Any:
        return self.session.step(process, channel=channel)

    def inspect(self, process: ProcessId) -> Dict[str, object]:
        return self.session.inspect(process)

    def global_state(self, allow_partial: bool = False) -> GlobalState:
        return self.session.global_state(allow_partial=allow_partial)

    def set_breakpoint(self, predicate: Any, halt: bool = True) -> int:
        return self.session.set_breakpoint(predicate, halt=halt)

    def clear_breakpoint(self, lp_id: int) -> None:
        self.session.clear_breakpoint(lp_id)

    def halting_order(self) -> List[ProcessId]:
        return self.session.halting_order()

    def halt_paths(self) -> Dict[ProcessId, tuple]:
        return self.session.halt_paths()

    def breakpoint_hits(self) -> List[Any]:
        return self.session.breakpoint_hits()

    def shutdown(self) -> None:
        self.session.shutdown()


class DistributedSurface(SessionSurface):
    """Surface over :class:`DistributedDebugSession` (one OS process per
    user process, everything over real sockets)."""

    backend = "distributed"

    def __init__(self, session: Any) -> None:
        self.session = session

    def process_names(self) -> List[ProcessId]:
        return list(self.session.spec.user_names)

    def alive(self) -> List[ProcessId]:
        return [
            n for n in self.session.spec.user_names if self.session.alive(n)
        ]

    def halted_names(self) -> List[ProcessId]:
        return self.session.halted_names()

    def current_generation(self) -> int:
        return self.session.current_generation()

    def halt(self, timeout: float = 10.0) -> Any:
        return self.session.halt_with_watchdog(timeout=timeout)

    def wait_halt(self, timeout: float = 30.0) -> bool:
        return self.session.run_until_stopped(timeout=timeout)

    def resume(self, timeout: float = 10.0, allow_partial: bool = False) -> bool:
        return self.session.resume(timeout=timeout, allow_partial=allow_partial)

    def step(self, process: ProcessId, channel: Optional[str] = None) -> Any:
        return self.session.step(process, channel=channel)

    def inspect(self, process: ProcessId) -> Dict[str, object]:
        return self.session.inspect(process)

    def global_state(self, allow_partial: bool = False) -> GlobalState:
        return self.session.collect_global_state()

    def set_breakpoint(self, predicate: Any, halt: bool = True) -> int:
        return self.session.set_breakpoint(predicate, halt=halt)

    def clear_breakpoint(self, lp_id: int) -> None:
        self.session.clear_breakpoint(lp_id)

    def halting_order(self) -> List[ProcessId]:
        return self.session.halting_order()

    def halt_paths(self) -> Dict[ProcessId, tuple]:
        return self.session.halt_paths()

    def breakpoint_hits(self) -> List[Any]:
        return self.session.breakpoint_hits()

    def kill(self, process: ProcessId) -> None:
        self.session.kill(process)

    def shutdown(self) -> None:
        self.session.shutdown()


def surface_for(session: Any) -> SessionSurface:
    """Wrap any of the three session classes in its surface."""
    from repro.debugger.session import DebugSession
    from repro.debugger.threaded_session import ThreadedDebugSession
    from repro.distributed.session import DistributedDebugSession

    if isinstance(session, DebugSession):
        return DESSurface(session)
    if isinstance(session, ThreadedDebugSession):
        return ThreadedSurface(session)
    if isinstance(session, DistributedDebugSession):
        return DistributedSurface(session)
    raise ReproError(f"no surface for {type(session).__name__}")


__all__ = [
    "SessionSurface",
    "DESSurface",
    "ThreadedSurface",
    "DistributedSurface",
    "surface_for",
]
