"""Failure detection and graceful degradation of halting.

The paper's model has no failures: every process eventually receives every
marker, so the Halting Algorithm always converges to a complete global
state. Under the fault model of :mod:`repro.faults` that guarantee breaks
in exactly one way — a *crashed* process can never halt, so a halting run
that includes one would hang forever waiting for its notification.

This module contains the debugger-side machinery that turns "hangs
forever" into "terminates with an honest partial answer":

* :class:`HeartbeatMonitor` — bookkeeping over ping/pong round trips (see
  :class:`~repro.debugger.commands.PingCommand`). The debugger process
  never halts, so its timers keep firing and its control channels keep
  working while the user program is frozen — heartbeats work *during* a
  halt, which is precisely when they are needed.
* :class:`PartialHaltReport` — the outcome of a watchdog-supervised halt:
  which processes halted, which were declared dead (probed and silent),
  and whether the resulting cut is complete or partial.

The partial cut is still *checkable*: the consistency oracle skips
channels incident on processes outside the captured population, so "every
live process halted consistently" remains a falsifiable claim (and the
crash-mid-halt tests falsify it if the implementation regresses).

A failure detector over an asynchronous network is necessarily imperfect
(it cannot distinguish a crashed host from an arbitrarily slow one); the
grace period bounds, but does not eliminate, false suspicions — a stalled
process that outsleeps the probe window will be reported dead. That is
the classic FLP trade-off, surfaced honestly in the report rather than
hidden.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.util.ids import ProcessId


@dataclass(frozen=True)
class PartialHaltReport:
    """What a watchdog-supervised halt actually achieved."""

    #: Halt generation this report belongs to.
    generation: int
    #: Processes that halted (consistent-cut members).
    halted: Tuple[ProcessId, ...]
    #: Processes declared dead: probed after the watchdog fired and silent
    #: through the grace period.
    dead: Tuple[ProcessId, ...]
    #: Processes neither halted nor declared dead (answered the probe but
    #: did not halt in time — e.g. their halt marker is still in flight).
    unresolved: Tuple[ProcessId, ...]
    #: Debugger-local time when the report was assembled.
    time: float
    #: True when every user process halted — the fault-free outcome.
    complete: bool

    @property
    def is_partial(self) -> bool:
        """True when at least one process never halted (it was dead)."""
        return not self.complete

    def describe(self) -> str:
        """One-paragraph human summary of the halt outcome."""
        if self.complete:
            return (
                f"halt complete at t={self.time:.3f} "
                f"(generation {self.generation}): all of "
                f"{', '.join(self.halted)} halted"
            )
        parts = [
            f"halt PARTIAL at t={self.time:.3f} (generation {self.generation}):",
            f"  halted: {', '.join(self.halted) or '(none)'}",
            f"  dead:   {', '.join(self.dead) or '(none)'}",
        ]
        if self.unresolved:
            parts.append(f"  unresolved: {', '.join(self.unresolved)}")
        return "\n".join(parts)


class HeartbeatMonitor:
    """Debugger-side liveness bookkeeping over periodic pings.

    The monitor is passive data plus arithmetic — *sending* the pings is
    the session's job (a debugger timer on the DES backend, wall-clock
    polling on the threaded one), because only the session knows how to
    drive its backend. Every process starts with a grant of ``interval``
    from ``started_at``, refreshed by each pong.
    """

    def __init__(self, processes: Tuple[ProcessId, ...], interval: float,
                 miss_threshold: int = 3) -> None:
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be > 0, got {interval!r}")
        if miss_threshold < 1:
            raise ValueError(f"miss_threshold must be >= 1, got {miss_threshold!r}")
        self.processes = tuple(processes)
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.started_at = 0.0
        #: process -> time its latest pong reached the debugger.
        self.last_seen: Dict[ProcessId, float] = {}
        self.pings_sent = 0

    def start(self, now: float) -> None:
        """Begin the watch: every process counts as seen right now."""
        self.started_at = now
        for process in self.processes:
            self.last_seen.setdefault(process, now)

    def observe(self, last_pong: Dict[ProcessId, float]) -> None:
        """Fold in the debugger agent's freshest pong times."""
        for process, seen in last_pong.items():
            if process in self.last_seen and seen > self.last_seen[process]:
                self.last_seen[process] = seen

    def misses(self, process: ProcessId, now: float) -> int:
        """Whole heartbeat intervals elapsed since this process was seen."""
        seen = self.last_seen.get(process, self.started_at)
        return max(0, int((now - seen) / self.interval))

    def suspected(self, now: float) -> List[ProcessId]:
        """Processes silent for at least ``miss_threshold`` intervals."""
        return [
            process for process in self.processes
            if self.misses(process, now) >= self.miss_threshold
        ]

    def alive(self, now: float) -> List[ProcessId]:
        """Complement of :meth:`suspected`."""
        suspects = set(self.suspected(now))
        return [p for p in self.processes if p not in suspects]


__all__ = ["HeartbeatMonitor", "PartialHaltReport"]
