"""Gather-based detector for *unordered* conjunctive predicates (§3.5).

The paper: "Detecting events that occur at virtual times belonging to the
unordered-SCP is more difficult. … it is necessary to have some process
gather the information from the other process(es) before halting is to be
initiated. We cannot decide until the last notification arrives at the
information gathering process, and the inherent time delay in such
information gathering makes it impossible for the processes to halt soon
enough to preserve the meaningful states of the processes."

We implement that gatherer anyway — as the paper's own argument predicts,
it works but *late*: detection happens at the debugger, one notification
latency after the fact. Experiment E8 measures exactly that lag and the
state drift it causes, which is the paper's justification for declaring
unordered conjunctions undesirable.

Satisfaction notices carry the matching event's vector clock; two
satisfactions are an unordered pair iff their vectors are concurrent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.breakpoints.detector import StageHit
from repro.breakpoints.predicates import ConjunctivePredicate
from repro.debugger.commands import SatisfactionNotice
from repro.events.clocks import concurrent


@dataclass(frozen=True)
class UnorderedDetection:
    """One detected unordered co-satisfaction of a conjunction."""

    watch_id: int
    hits: Tuple[StageHit, ...]
    #: Virtual time at the debugger when the deciding notice arrived.
    detected_at: float

    @property
    def last_event_time(self) -> float:
        """Virtual time of the latest satisfying event."""
        return max(hit.time for hit in self.hits)

    @property
    def detection_lag(self) -> float:
        """How long after the fact the debugger learned about it — the
        'inherent time delay' of §3.5."""
        return self.detected_at - self.last_event_time


class GatherDetector:
    """Debugger-side state for one watched conjunction."""

    def __init__(self, watch_id: int, conjunction: ConjunctivePredicate,
                 history: int = 32) -> None:
        self.watch_id = watch_id
        self.conjunction = conjunction
        self.history = history
        self._seen: Dict[int, List[SatisfactionNotice]] = {
            i: [] for i in range(len(conjunction.terms))
        }
        self.detections: List[UnorderedDetection] = []

    def on_notice(self, notice: SatisfactionNotice, now: float) -> Optional[UnorderedDetection]:
        """Feed one satisfaction notice; returns a detection if the notice
        completes an unordered co-satisfaction."""
        if notice.watch_id != self.watch_id:
            return None
        bucket = self._seen[notice.term_index]
        bucket.append(notice)
        if len(bucket) > self.history:
            del bucket[0]
        detection = self._search(notice, now)
        if detection is not None:
            self.detections.append(detection)
        return detection

    def _search(self, fresh: SatisfactionNotice, now: float) -> Optional[UnorderedDetection]:
        """Find a combination (one satisfaction per term, including the
        fresh one) that is pairwise concurrent."""
        chosen: List[Optional[SatisfactionNotice]] = [None] * len(self._seen)
        chosen[fresh.term_index] = fresh

        def backtrack(term_index: int) -> bool:
            if term_index == len(chosen):
                return True
            if chosen[term_index] is not None:
                return backtrack(term_index + 1)
            for candidate in reversed(self._seen[term_index]):
                if all(
                    other is None
                    or concurrent(candidate.vector, other.vector)
                    for other in chosen
                ):
                    chosen[term_index] = candidate
                    if backtrack(term_index + 1):
                        return True
                    chosen[term_index] = None
            return False

        if not backtrack(0):
            return None
        hits = tuple(notice.hit for notice in chosen)  # type: ignore[union-attr]
        return UnorderedDetection(
            watch_id=self.watch_id, hits=hits, detected_at=now
        )
