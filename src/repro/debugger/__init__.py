"""The extended debugging model (§2.2.3): debugger process, sessions, EDL."""

from repro.debugger.agent import (
    DEFAULT_DEBUGGER_NAME,
    DebuggerAgent,
    DebuggerProcess,
)
from repro.debugger.client import DebugClientAgent
from repro.debugger.commands import (
    BreakpointHit,
    HaltNotification,
    PingCommand,
    PongNotice,
    ResumeCommand,
    SatisfactionNotice,
    StateReport,
    StateRequest,
    StepCommand,
    StepReport,
    UnwatchCommand,
    WatchCommand,
)
from repro.debugger.cli import DebuggerCLI
from repro.debugger.edl import AbstractEvent, EDLRecognizer
from repro.debugger.failure import HeartbeatMonitor, PartialHaltReport
from repro.debugger.gather import GatherDetector, UnorderedDetection
from repro.debugger.remote import DebugClient
from repro.debugger.report import post_mortem
from repro.debugger.service import (
    DebugServer,
    DebuggerService,
    HeldTarget,
    LiveTarget,
)
from repro.debugger.session import DebugSession, RunOutcome
from repro.debugger.surface import (
    DESSurface,
    DistributedSurface,
    SessionSurface,
    ThreadedSurface,
    surface_for,
)
from repro.debugger.threaded_session import ThreadedDebugSession

__all__ = [
    "AbstractEvent",
    "BreakpointHit",
    "DEFAULT_DEBUGGER_NAME",
    "DESSurface",
    "DebugClient",
    "DebugClientAgent",
    "DebugServer",
    "DebugSession",
    "DebuggerAgent",
    "DebuggerCLI",
    "DebuggerProcess",
    "DebuggerService",
    "DistributedSurface",
    "EDLRecognizer",
    "GatherDetector",
    "HaltNotification",
    "HeartbeatMonitor",
    "HeldTarget",
    "LiveTarget",
    "PartialHaltReport",
    "PingCommand",
    "PongNotice",
    "ResumeCommand",
    "RunOutcome",
    "SatisfactionNotice",
    "SessionSurface",
    "StateReport",
    "StateRequest",
    "StepCommand",
    "StepReport",
    "ThreadedDebugSession",
    "ThreadedSurface",
    "UnorderedDetection",
    "UnwatchCommand",
    "WatchCommand",
    "post_mortem",
    "surface_for",
]
