"""The interactive debugger service: many sessions, one cluster.

This is ``repro attach`` grown into a control *plane*. One
:class:`DebuggerService` owns one debug target (a live session behind a
:class:`~repro.debugger.surface.SessionSurface`, or a held one that spawns
on command) and serves any number of concurrent attach sessions over a
request/response JSON protocol — length-prefixed frames via
:mod:`repro.distributed.wire`, the exact framing the cluster itself uses.

Protocol shape (server-dictated client behavior): every request is one
JSON object with an ``op``; every reply is one JSON object with ``ok``.
The ``attach`` reply tells the client everything it must obey — its
session id, the protocol version, the idle timeout it must ping within,
and the command vocabulary. Clients never guess; they do what the attach
frame says (the cideldill/morgul lifecycle).

Contracts the conformance suite pins down:

* :meth:`DebuggerService.handle` **never raises** — malformed frames,
  unknown commands, and stale session ids all get one-line error replies.
* Sessions are cheap views: two sessions share every observation (a
  resume by A is visible to B), and detaching one never affects another.
* One halt generation resumes **once** — the second session to try gets a
  stale-generation error instead of racing the first.
* Abandoned sessions are reaped: on client disconnect (the server calls
  :meth:`drop_connection`) and by idle TTL as a backstop, so the session
  table cannot grow without bound.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.breakpoints.registry import BreakpointRegistry
from repro.debugger.surface import SessionSurface
from repro.distributed import wire
from repro.util.errors import (
    PredicateError,
    ReproError,
    SurvivorsOnlyError,
    WireClosed,
    WireError,
)

PROTOCOL_VERSION = 1

#: op -> one-line help. This is the command table — it is also the
#: vocabulary the ``attach`` reply dictates to clients, and the table
#: docs/DEBUGGER.md renders.
COMMANDS: Dict[str, str] = {
    "attach": "open a session; reply dictates session id, timeout, commands",
    "ping": "keep a session alive (clients ping within the idle timeout)",
    "detach": "close this session (never touches other sessions)",
    "sessions": "list every attached session",
    "spawn": "start a held cluster (binds pending breakpoints)",
    "status": "backend, membership, liveness, halted set, generation",
    "break-set": "register a breakpoint; defers if the target is not up",
    "break-clear": "clear a breakpoint in any state, pending included",
    "break-list": "every breakpoint record with its lifecycle state",
    "halt": "initiate the Halting Algorithm (watchdog-bounded)",
    "wait-halt": "block until a breakpoint halt converges",
    "resume": "resume the halted generation (each generation resumes once)",
    "step": "deliver exactly one buffered message at a halted process",
    "inspect": "one process's state via the control protocol",
    "state": "the consistent global state S_h",
    "order": "the §2.2.4 halting order and marker paths",
    "hits": "breakpoint completions observed so far",
    "kill": "SIGKILL one member (distributed backend only)",
    "shutdown": "stop the cluster and the server",
    "help": "this table",
}


def _one_line(exc: BaseException) -> str:
    """Collapse any exception message to a single line for error replies."""
    return " ".join(f"{type(exc).__name__}: {exc}".split())


# -- debug targets -------------------------------------------------------------


class DebugTarget:
    """What the service debugs: a surface, possibly not spawned yet."""

    def surface(self) -> Optional[SessionSurface]:
        """The live surface, or None before spawn."""
        raise NotImplementedError

    @property
    def spawned(self) -> bool:
        """True once the debugged program is running."""
        return self.surface() is not None

    def spawn(self) -> SessionSurface:
        """Start the program (idempotent); returns the live surface."""
        raise NotImplementedError


class LiveTarget(DebugTarget):
    """A target that is already running when the service starts."""

    def __init__(self, surface: SessionSurface) -> None:
        self._surface = surface

    def surface(self) -> Optional[SessionSurface]:
        return self._surface

    def spawn(self) -> SessionSurface:
        return self._surface


class HeldTarget(DebugTarget):
    """A target built on demand — the deferred-breakpoint configuration.

    ``factory`` must return a *started* surface. Until ``spawn`` runs,
    the target has no processes, so breakpoints registered against it
    park as PENDING; spawn is the moment they bind and arm.
    """

    def __init__(self, factory: Callable[[], SessionSurface]) -> None:
        self._factory = factory
        self._surface: Optional[SessionSurface] = None

    def surface(self) -> Optional[SessionSurface]:
        return self._surface

    def spawn(self) -> SessionSurface:
        if self._surface is None:
            self._surface = self._factory()
        return self._surface


# -- the service ---------------------------------------------------------------


@dataclass
class SessionHandle:
    """One attached debug session (a row in the session table)."""

    session_id: str
    label: str
    created: float
    last_seen: float
    #: Server-connection id that owns this session (None for in-process
    #: callers); disconnecting that connection reaps the session.
    conn_id: Optional[int] = None
    commands: int = 0

    def to_wire(self, now: float) -> Dict[str, object]:
        """JSON-safe row for ``sessions`` replies."""
        return {
            "session": self.session_id,
            "label": self.label,
            "age": round(now - self.created, 3),
            "idle": round(now - self.last_seen, 3),
            "commands": self.commands,
        }


class DebuggerService:
    """Dispatches debug-protocol frames against one target (see module
    docstring for the protocol contracts)."""

    def __init__(
        self,
        target: DebugTarget,
        idle_timeout: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.target = target
        self.idle_timeout = idle_timeout
        self._clock = clock
        #: Guards the session table and breakpoint registry (fast ops).
        self._table_lock = threading.RLock()
        #: Serializes cluster-touching commands (halt/resume/step/...).
        self._cluster_lock = threading.RLock()
        self._sessions: Dict[str, SessionHandle] = {}
        self._next_session = 1
        self.registry = BreakpointRegistry()
        #: generation -> session id that resumed it (the double-resume guard).
        self._resumed: Dict[int, str] = {}
        #: Sessions reaped so far, by reason (regression-test observable).
        self.reaped: Dict[str, int] = {"disconnect": 0, "idle": 0}
        self.shutdown_requested = threading.Event()

    # -- session table ------------------------------------------------------

    def _attach(self, frame: Dict[str, Any], conn_id: Optional[int]) -> Dict[str, Any]:
        now = self._clock()
        with self._table_lock:
            session_id = f"s{self._next_session}"
            self._next_session += 1
            handle = SessionHandle(
                session_id=session_id,
                label=str(frame.get("label", "")),
                created=now,
                last_seen=now,
                conn_id=conn_id,
            )
            self._sessions[session_id] = handle
        surface = self.target.surface()
        return {
            "ok": True,
            "session": session_id,
            "protocol": PROTOCOL_VERSION,
            # Server-dictated client behavior: everything the client must
            # obey is in this object, nothing is left to convention.
            "server": {
                "idle_timeout": self.idle_timeout,
                "backend": surface.backend if surface else "held",
                "spawned": self.target.spawned,
                "processes": (
                    sorted(surface.process_names()) if surface else []
                ),
            },
            "commands": sorted(COMMANDS),
        }

    def _session(self, frame: Dict[str, Any]) -> SessionHandle:
        session_id = frame.get("session")
        if not isinstance(session_id, str) or not session_id:
            raise ReproError("missing session id; attach first")
        with self._table_lock:
            handle = self._sessions.get(session_id)
            if handle is None:
                raise ReproError(
                    f"unknown or expired session {session_id!r}; attach again"
                )
            handle.last_seen = self._clock()
            handle.commands += 1
            return handle

    def drop_connection(self, conn_id: int) -> List[str]:
        """Reap every session owned by a disconnected server connection.

        This is the stale-session fix: a client that vanishes mid-protocol
        (crash, Ctrl-C, network cut) does not leave its session rows
        behind — the server calls this as the connection closes."""
        with self._table_lock:
            stale = [
                sid for sid, handle in self._sessions.items()
                if handle.conn_id == conn_id
            ]
            for sid in stale:
                del self._sessions[sid]
            self.reaped["disconnect"] += len(stale)
            return stale

    def reap_idle(self) -> List[str]:
        """TTL backstop: drop sessions silent past the idle timeout.

        Covers clients that keep their TCP connection open but stop
        talking (wedged script, suspended laptop) — without this the
        table grows monotonically under session churn."""
        now = self._clock()
        with self._table_lock:
            stale = [
                sid for sid, handle in self._sessions.items()
                if now - handle.last_seen > self.idle_timeout
            ]
            for sid in stale:
                del self._sessions[sid]
            self.reaped["idle"] += len(stale)
            return stale

    def session_count(self) -> int:
        """Live sessions right now."""
        with self._table_lock:
            return len(self._sessions)

    # -- dispatch -----------------------------------------------------------

    def handle(
        self, frame: Any, conn_id: Optional[int] = None
    ) -> Dict[str, Any]:
        """Execute one request frame. Never raises; always returns one
        reply object, errors as ``{"ok": false, "error": "<one line>"}``."""
        self.reap_idle()
        try:
            if not isinstance(frame, dict):
                raise ReproError(
                    f"request must be a JSON object, got {type(frame).__name__}"
                )
            op = frame.get("op")
            if not isinstance(op, str):
                raise ReproError("request has no 'op' field")
            return self._dispatch(op, frame, conn_id)
        except ReproError as exc:
            return {"ok": False, "error": _one_line(exc)}
        except Exception as exc:  # defensive: the server must keep serving
            return {"ok": False, "error": _one_line(exc)}

    def _require_surface(self) -> SessionSurface:
        surface = self.target.surface()
        if surface is None:
            raise ReproError("cluster not spawned; run the spawn command first")
        return surface

    def _dispatch(
        self, op: str, frame: Dict[str, Any], conn_id: Optional[int]
    ) -> Dict[str, Any]:
        if op == "help":
            return {"ok": True, "commands": dict(COMMANDS)}
        if op == "attach":
            return self._attach(frame, conn_id)
        if op == "sessions":
            now = self._clock()
            with self._table_lock:
                rows = [h.to_wire(now) for h in self._sessions.values()]
            return {"ok": True, "sessions": rows}
        if op not in COMMANDS:
            raise ReproError(f"unknown command {op!r}; see the help command")

        handle = self._session(frame)
        if op == "ping":
            return {"ok": True, "session": handle.session_id, "pong": True}
        if op == "detach":
            with self._table_lock:
                self._sessions.pop(handle.session_id, None)
            return {"ok": True, "detached": handle.session_id}
        if op == "spawn":
            return self._spawn()
        if op == "status":
            return self._status()
        if op == "break-set":
            return self._break_set(frame)
        if op == "break-clear":
            return self._break_clear(frame)
        if op == "break-list":
            return self._break_list()
        if op == "halt":
            surface = self._require_surface()
            with self._cluster_lock:
                report = surface.halt(timeout=float(frame.get("timeout", 10.0)))
            return {
                "ok": True,
                "generation": report.generation,
                "halted": list(report.halted),
                "dead": list(report.dead),
                "complete": report.complete,
            }
        if op == "wait-halt":
            return self._wait_halt(frame)
        if op == "resume":
            return self._resume(frame, handle)
        if op == "step":
            return self._step(frame)
        if op == "inspect":
            surface = self._require_surface()
            process = frame.get("process")
            if not process:
                raise ReproError("inspect requires a process name")
            with self._cluster_lock:
                state = surface.inspect(process)
            return {"ok": True, "process": process, "state": state}
        if op == "state":
            surface = self._require_surface()
            with self._cluster_lock:
                state = surface.global_state(
                    allow_partial=bool(frame.get("allow_partial", False))
                )
            return {
                "ok": True,
                "generation": state.generation,
                "processes": sorted(state.processes),
                "pending_messages": state.total_pending_messages(),
                "halt_order": list(state.meta.get("halt_order", [])),
                "summary": state.describe(),
            }
        if op == "order":
            surface = self._require_surface()
            return {
                "ok": True,
                "order": surface.halting_order(),
                "paths": {
                    process: list(path)
                    for process, path in surface.halt_paths().items()
                },
            }
        if op == "hits":
            return self._hits()
        if op == "kill":
            surface = self._require_surface()
            process = frame.get("process")
            if not process:
                raise ReproError("kill requires a process name")
            with self._cluster_lock:
                surface.kill(process)
            return {"ok": True, "killed": process}
        if op == "shutdown":
            self.shutdown_requested.set()
            surface = self.target.surface()
            if surface is not None:
                with self._cluster_lock:
                    surface.shutdown()
            return {"ok": True, "stopping": True}
        raise ReproError(f"unknown command {op!r}; see the help command")

    # -- command bodies -----------------------------------------------------

    def _spawn(self) -> Dict[str, Any]:
        already = self.target.spawned
        with self._cluster_lock:
            surface = self.target.spawn()
            with self._table_lock:
                armed = self.registry.bind_pending(surface)
        return {
            "ok": True,
            "spawned": True,
            "already": already,
            "backend": surface.backend,
            "processes": sorted(surface.process_names()),
            "armed": [record.to_wire() for record in armed],
        }

    def _status(self) -> Dict[str, Any]:
        surface = self.target.surface()
        with self._table_lock:
            breakpoints = len(self.registry.records())
            sessions = len(self._sessions)
        if surface is None:
            return {
                "ok": True,
                "backend": "held",
                "spawned": False,
                "breakpoints": breakpoints,
                "sessions": sessions,
            }
        return {
            "ok": True,
            "backend": surface.backend,
            "spawned": True,
            "processes": sorted(surface.process_names()),
            "alive": sorted(surface.alive()),
            "halted": sorted(surface.halted_names()),
            "generation": surface.current_generation(),
            "breakpoints": breakpoints,
            "sessions": sessions,
        }

    def _break_set(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        predicate = frame.get("predicate")
        if not isinstance(predicate, str) or not predicate:
            raise ReproError("break-set requires a predicate string")
        halt = bool(frame.get("halt", True))
        surface = self.target.surface()
        try:
            # Lock order is always cluster -> table (matches spawn/resume).
            with self._cluster_lock, self._table_lock:
                record = self.registry.register(
                    predicate, halt=halt, surface=surface
                )
        except PredicateError as exc:
            raise ReproError(str(exc)) from exc
        return {"ok": True, **record.to_wire()}

    def _break_clear(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        bp_id = frame.get("bp_id")
        if not isinstance(bp_id, int):
            raise ReproError("break-clear requires an integer bp_id")
        with self._cluster_lock, self._table_lock:
            record = self.registry.clear(bp_id, surface=self.target.surface())
        return {"ok": True, **record.to_wire()}

    def _break_list(self) -> Dict[str, Any]:
        surface = self.target.surface()
        with self._table_lock:
            if surface is not None:
                self.registry.mark_fired(surface.breakpoint_hits())
            return {"ok": True, "breakpoints": self.registry.to_wire()}

    def _wait_halt(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        surface = self._require_surface()
        timeout = float(frame.get("timeout", 30.0))
        if surface.drives_clock:
            # The DES advances only when driven; driving must be exclusive.
            with self._cluster_lock:
                stopped = surface.wait_halt(timeout=timeout)
        else:
            # Threaded/distributed waits only poll append-only notification
            # state — other sessions' commands proceed meanwhile (a resume
            # from session B can be what session A is waiting through).
            stopped = surface.wait_halt(timeout=timeout)
        with self._table_lock:
            fired = self.registry.mark_fired(surface.breakpoint_hits())
        return {
            "ok": True,
            "stopped": stopped,
            "generation": surface.current_generation(),
            "halted": sorted(surface.halted_names()),
            "fired": [record.to_wire() for record in fired],
        }

    def _resume(
        self, frame: Dict[str, Any], handle: SessionHandle
    ) -> Dict[str, Any]:
        surface = self._require_surface()
        with self._cluster_lock:
            generation = surface.current_generation()
            requested = frame.get("generation", generation)
            if requested != generation:
                raise ReproError(
                    f"stale generation {requested}; current is {generation}"
                )
            with self._table_lock:
                owner = self._resumed.get(generation)
                if owner is not None:
                    raise ReproError(
                        f"generation {generation} was already resumed by "
                        f"session {owner}; halt again for a new generation"
                    )
            if not surface.halted_names():
                raise ReproError("nothing is halted; nothing to resume")
            try:
                resumed = surface.resume(
                    timeout=float(frame.get("timeout", 10.0)),
                    allow_partial=bool(frame.get("allow_partial", False)),
                )
            except SurvivorsOnlyError as exc:
                raise ReproError(str(exc)) from exc
            if resumed:
                with self._table_lock:
                    self._resumed[generation] = handle.session_id
        return {
            "ok": True,
            "resumed": bool(resumed),
            "generation": generation,
            "by": handle.session_id,
        }

    def _step(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        surface = self._require_surface()
        process = frame.get("process")
        if not process:
            raise ReproError("step requires a process name")
        channel = frame.get("channel")
        with self._cluster_lock:
            report = surface.step(process, channel=channel)
        return {
            "ok": True,
            "process": report.process,
            "delivered": report.delivered,
            "channel": report.channel,
            "detail": report.detail,
            "remaining": report.remaining,
            "time": report.time,
        }

    def _hits(self) -> Dict[str, Any]:
        surface = self._require_surface()
        hits = surface.breakpoint_hits()
        with self._table_lock:
            self.registry.mark_fired(hits)
        return {
            "ok": True,
            "hits": [
                {
                    "process": hit.process,
                    "lp_id": hit.marker.lp_id,
                    "time": hit.time,
                }
                for hit in hits
            ],
        }


# -- the TCP server ------------------------------------------------------------


class DebugServer:
    """Serves one :class:`DebuggerService` over TCP, one thread per client.

    Framing is :mod:`repro.distributed.wire` — the same length-prefixed
    JSON the cluster speaks. A corrupt frame gets one error reply and
    closes *that* connection; the server keeps serving everyone else.
    Client disconnects reap their sessions via
    :meth:`DebuggerService.drop_connection`.
    """

    def __init__(
        self,
        service: DebuggerService,
        host: str = "127.0.0.1",
        port: int = 0,
        on_shutdown: Optional[Callable[[], None]] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.on_shutdown = on_shutdown
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._client_threads: List[threading.Thread] = []
        self._conns: Dict[int, socket.socket] = {}
        self._next_conn = 1
        self._lock = threading.Lock()
        self._stopped = threading.Event()

    def start(self) -> int:
        """Bind, listen, and accept in the background; returns the port."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="debug-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self.port

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopped.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed: clean stop
            with self._lock:
                conn_id = self._next_conn
                self._next_conn += 1
                self._conns[conn_id] = conn
                thread = threading.Thread(
                    target=self._serve_client,
                    args=(conn, conn_id),
                    name=f"debug-client-{conn_id}",
                    daemon=True,
                )
                self._client_threads.append(thread)
            thread.start()

    def _serve_client(self, conn: socket.socket, conn_id: int) -> None:
        conn.settimeout(300.0)
        try:
            while not self._stopped.is_set():
                try:
                    frame = wire.recv_frame(conn)
                except (WireClosed, OSError):
                    return  # client done or gone; finally reaps its sessions
                except WireError as exc:
                    # Corrupt framing: one error reply, then drop only this
                    # connection — the stream can no longer be trusted.
                    try:
                        wire.send_frame(
                            conn, {"ok": False, "error": _one_line(exc)}
                        )
                    except (WireError, OSError):
                        pass
                    return
                reply = self.service.handle(frame, conn_id=conn_id)
                try:
                    wire.send_frame(conn, reply)
                except (WireError, OSError):
                    return
                if self.service.shutdown_requested.is_set():
                    return
        finally:
            self.service.drop_connection(conn_id)
            with self._lock:
                self._conns.pop(conn_id, None)
            try:
                conn.close()
            except OSError:
                pass
            if self.service.shutdown_requested.is_set():
                self.stop()

    def stop(self) -> None:
        """Close the listener and signal every client loop to end."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            leftovers = list(self._conns.values())
            self._conns.clear()
        for conn in leftovers:
            # Unblocks client threads parked in recv_frame so their
            # sessions reap promptly and no socket outlives the server.
            try:
                conn.close()
            except OSError:
                pass
        if self.on_shutdown is not None:
            self.on_shutdown()

    def __enter__(self) -> "DebugServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


__all__ = [
    "COMMANDS",
    "PROTOCOL_VERSION",
    "DebugTarget",
    "LiveTarget",
    "HeldTarget",
    "SessionHandle",
    "DebuggerService",
    "DebugServer",
]
