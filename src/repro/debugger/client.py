"""Process-side debugger client (extended model, §2.2.3).

Every *user* process carries one :class:`DebugClientAgent`. It is the
counterpart of the debugger process: it executes debugger commands (resume,
state reports, watch installs) and pushes notifications (halts, breakpoint
hits, watch satisfactions). Crucially it works while the process is halted
— "user processes are always willing to accept a message from the debugger
process" — because control envelopes bypass the halted check in the
controller.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.breakpoints.detector import PredicateMarker, StageHit
from repro.breakpoints.predicates import SimplePredicate
from repro.debugger.commands import (
    BreakpointHit,
    HaltNotification,
    PingCommand,
    PongNotice,
    ResumeCommand,
    SatisfactionNotice,
    StateReport,
    StateRequest,
    StepCommand,
    StepReport,
    UnwatchCommand,
    WatchCommand,
)
from repro.events.event import Event
from repro.network.message import Envelope, MessageKind
from repro.runtime.controller import ProcessController
from repro.runtime.interfaces import ControlPlugin
from repro.util.errors import ReproError
from repro.util.ids import ChannelId, ProcessId


class DebugClientAgent(ControlPlugin):
    """Debugger-facing agent installed on every user process."""

    kinds = frozenset({MessageKind.DEBUG_CONTROL})

    def __init__(self, controller: ProcessController, debugger: ProcessId) -> None:
        self.attach(controller)
        self.debugger = debugger
        #: Continuous watches: watch_id -> (term_index, predicate).
        self.watches: Dict[int, List[Tuple[int, SimplePredicate]]] = {}

    # -- command dispatch ------------------------------------------------------

    def on_control(self, envelope: Envelope) -> None:
        """Execute one debugger command (works even while halted)."""
        command = envelope.payload
        if isinstance(command, ResumeCommand):
            if self.controller.halted:
                self.controller.resume()
        elif isinstance(command, StateRequest):
            self._report_state(command)
        elif isinstance(command, WatchCommand):
            term = command.term
            if not isinstance(term, SimplePredicate):
                raise ReproError(f"WatchCommand carries a non-predicate: {term!r}")
            self.watches.setdefault(command.watch_id, []).append(
                (command.term_index, term)
            )
        elif isinstance(command, UnwatchCommand):
            self.watches.pop(command.watch_id, None)
        elif isinstance(command, StepCommand):
            self._step(command)
        elif isinstance(command, PingCommand):
            # Answered even while halted (control traffic bypasses halt);
            # a crashed host never gets here — its silence is the signal.
            self.notify(
                PongNotice(
                    ping_id=command.ping_id,
                    process=self.controller.name,
                    halted=self.controller.halted,
                    time=self.controller.now,
                )
            )
        else:
            raise ReproError(
                f"{self.controller.name}: unknown debugger command {command!r}"
            )

    def _step(self, command: StepCommand) -> None:
        """Execute one :class:`StepCommand` and always answer with a
        :class:`StepReport` — a running (non-halted) process or an empty
        halt buffer reports ``delivered=False`` rather than staying mute,
        so the debugger never blocks on a step that cannot happen."""
        delivered = None
        if self.controller.halted:
            delivered = self.controller.step_one(channel=command.channel)
        remaining = sum(
            len(bucket) for bucket in self.controller.halt_buffers.values()
        )
        detail = ""
        if delivered is not None:
            message = delivered.payload
            tag = getattr(message, "tag", None)
            payload = getattr(message, "payload", message)
            detail = f"{tag or type(payload).__name__}: {payload!r}"[:200]
        self.notify(
            StepReport(
                step_id=command.step_id,
                process=self.controller.name,
                delivered=delivered is not None,
                channel="" if delivered is None else str(delivered.channel),
                detail=detail,
                remaining=remaining,
                time=self.controller.now,
            )
        )

    def _report_state(self, request: StateRequest) -> None:
        snapshot = (
            self.controller.halted_snapshot
            if self.controller.halted and self.controller.halted_snapshot is not None
            else self.controller.capture_state()
        )
        pending: Dict[str, Tuple[object, ...]] = {}
        if request.include_channels:
            # Each entry is the full UserMessage wrapper, so the debugger's
            # assembled view is comparable with coordinator-built states.
            pending = {
                str(channel): tuple(env.payload for env in envelopes)
                for channel, envelopes in self.controller.halt_buffers.items()
            }
        report = StateReport(
            request_id=request.request_id,
            process=self.controller.name,
            snapshot=snapshot,
            halted=self.controller.halted,
            pending=pending,
            closed_channels=tuple(
                str(c) for c in sorted(self.controller.closed_channels)
            ),
        )
        self.notify(report)

    # -- notifications ----------------------------------------------------------

    def notify(self, payload: object) -> None:
        """Send one notification to the debugger on the control channel."""
        self.controller.send_control(
            ChannelId(self.controller.name, self.debugger),
            MessageKind.DEBUG_CONTROL,
            payload,
        )

    def notify_breakpoint(self, marker: PredicateMarker) -> None:
        """Report a completed linked predicate to the debugger."""
        self.notify(
            BreakpointHit(
                process=self.controller.name,
                marker=marker,
                time=self.controller.now,
            )
        )

    # -- plugin hooks --------------------------------------------------------------

    def on_halted(self) -> None:
        """Announce this process's halt, carrying the §2.2.4 marker path
        recorded in the halted snapshot."""
        snapshot = self.controller.halted_snapshot
        assert snapshot is not None
        self.notify(
            HaltNotification(
                process=self.controller.name,
                halt_id=int(snapshot.meta.get("halt_id", 0)),
                path=tuple(snapshot.meta.get("halt_path", ())),
                time=self.controller.now,
            )
        )

    def on_local_event(self, event: Event) -> None:
        """Test every installed watch term against one local event and
        notify the debugger of matches (gather detector, §3.5)."""
        if not self.watches:
            return
        for watch_id, terms in self.watches.items():
            for term_index, term in terms:
                if term.matches(event):
                    hit = StageHit(
                        stage_index=0,
                        process=self.controller.name,
                        eid=event.eid,
                        lamport=event.lamport,
                        time=event.time,
                        term=str(term),
                    )
                    self.notify(
                        SatisfactionNotice(
                            watch_id=watch_id,
                            term_index=term_index,
                            hit=hit,
                            vector=event.vector,
                            vector_index=event.vector_index,
                        )
                    )
