"""DebugSession: the paper's whole debugging system, assembled.

This is the primary public API of the reproduction. Given a user topology
and processes, a session:

1. extends the topology with the debugger process ``d`` and its control
   channels (§2.2.3, Fig. 3) — making the network strongly connected;
2. installs, per process: a :class:`~repro.halting.algorithm.HaltingAgent`
   (§2.2), a :class:`~repro.breakpoints.detector.PredicateAgent` (§3.6),
   and a :class:`~repro.debugger.client.DebugClientAgent` (the command /
   notification protocol);
3. exposes breakpoints, halting, inspection, and resume as methods.

Everything the session observes travels through the simulated network as
real control messages — the session object itself is just the "terminal"
attached to the debugger process.

Typical use::

    session = DebugSession(topology, processes, seed=1)
    session.set_breakpoint("enter(receive_token)@p2 -> send(token)@p0")
    outcome = session.run()
    if outcome.stopped:
        print(session.describe_halt())
        state = session.global_state()
        session.resume()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.breakpoints.detector import PredicateAgent
from repro.breakpoints.parser import parse_conjunctive, parse_predicate
from repro.breakpoints.predicates import (
    ConjunctivePredicate,
    LinkedPredicate,
    SimplePredicate,
    as_linked,
)
from repro.debugger.agent import (
    DEFAULT_DEBUGGER_NAME,
    DebuggerAgent,
    DebuggerProcess,
)
from repro.debugger.client import DebugClientAgent
from repro.debugger.commands import BreakpointHit, ResumeCommand
from repro.debugger.failure import HeartbeatMonitor, PartialHaltReport
from repro.debugger.gather import UnorderedDetection
from repro.faults.plan import FaultPlan
from repro.halting.algorithm import HaltingAgent
from repro.network.latency import LatencyModel
from repro.network.reliable import ReliabilityConfig
from repro.network.topology import Topology
from repro.runtime.process import Process
from repro.runtime.state_capture import ProcessStateSnapshot
from repro.runtime.system import System
from repro.snapshot.state import ChannelState, GlobalState
from repro.util.errors import HaltingError, PredicateError, ReproError
from repro.util.ids import ChannelId, ProcessId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe.integrate import Observability


@dataclass
class RunOutcome:
    """What happened during one :meth:`DebugSession.run` call."""

    #: True when every user process is halted (a breakpoint or explicit halt
    #: completed); False when the program ran to completion / the bound.
    stopped: bool
    #: Breakpoint completions the debugger learned about during the run.
    hits: List[BreakpointHit] = field(default_factory=list)
    #: Unordered-conjunction detections during the run.
    unordered: List[UnorderedDetection] = field(default_factory=list)
    #: Virtual time when the run call returned.
    time: float = 0.0
    events_executed: int = 0


class DebugSession:
    """An interactive-style debugging session over one distributed program."""

    def __init__(
        self,
        topology: Topology,
        processes: Mapping[ProcessId, Process],
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        channel_latencies: Optional[Mapping[ChannelId, LatencyModel]] = None,
        debugger_name: ProcessId = DEFAULT_DEBUGGER_NAME,
        capture_states: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        reliability: Optional[ReliabilityConfig] = None,
        reliable: bool = False,
        observe: Optional["Observability"] = None,
        halting_factory: Optional[Callable[..., HaltingAgent]] = None,
    ) -> None:
        if debugger_name in topology.processes:
            raise ReproError(
                f"user topology already contains {debugger_name!r}; "
                "pick another debugger_name"
            )
        self.debugger_name = debugger_name
        #: Optional live metrics/tracing hub (see :mod:`repro.observe`).
        self.observe = observe
        extended = topology.with_debugger(debugger_name)
        staffed: Dict[ProcessId, Process] = dict(processes)
        self._debugger_shell = DebuggerProcess()
        staffed[debugger_name] = self._debugger_shell
        self.system = System(
            extended,
            staffed,
            seed=seed,
            latency=latency,
            channel_latencies=channel_latencies,
            capture_states=capture_states,
            never_halt={debugger_name},
            fault_plan=fault_plan,
            reliability=reliability,
            reliable=reliable,
            observe=observe,
        )
        self.heartbeats: Optional[HeartbeatMonitor] = None

        self._halting_agents: Dict[ProcessId, HaltingAgent] = {}
        self._predicate_agents: Dict[ProcessId, PredicateAgent] = {}
        self._clients: Dict[ProcessId, DebugClientAgent] = {}
        self._cancelled_lp_ids: set = set()
        for name in extended.processes:
            controller = self.system.controller(name)
            # ``halting_factory`` swaps the Halting Algorithm agent on user
            # processes (the checker injects mutated agents this way); the
            # debugger always runs the stock agent — it only initiates.
            maker = HaltingAgent
            if halting_factory is not None and name != debugger_name:
                maker = halting_factory
            halting = maker(controller)
            controller.install(halting)
            self._halting_agents[name] = halting
            if name == debugger_name:
                predicate = PredicateAgent(controller, halt_on_final=False,
                                           cancelled=self._cancelled_lp_ids)
                controller.install(predicate)
                self._predicate_agents[name] = predicate
                self.agent = DebuggerAgent(controller)
                controller.install(self.agent)
            else:
                client = DebugClientAgent(controller, debugger_name)
                predicate = PredicateAgent(
                    controller,
                    on_final=client.notify_breakpoint,
                    halt_on_final=True,
                    cancelled=self._cancelled_lp_ids,
                )
                controller.install(predicate)
                controller.install(client)
                self._predicate_agents[name] = predicate
                self._clients[name] = client

        self._breakpoints: Dict[int, LinkedPredicate] = {}
        self._next_lp_id = 1
        self._seen_hits = 0
        self._seen_unordered = 0

    # -- breakpoints ----------------------------------------------------------

    def set_breakpoint(
        self,
        predicate: Union[str, LinkedPredicate, SimplePredicate],
        halt: bool = True,
    ) -> int:
        """Arm a breakpoint: SP/DP/LP text or predicate object.

        Predicate markers travel from the debugger to the first stage's
        processes over real control channels, so arming takes one message
        latency — run the system for the marker to land (exactly as a real
        distributed debugger would). With ``halt=False`` the predicate only
        reports (monitoring mode, used by the EDL recognizer).
        """
        lp = parse_predicate(predicate) if isinstance(predicate, str) else as_linked(predicate)
        unknown = lp.processes() - set(self.system.topology.processes)
        if unknown:
            raise PredicateError(f"predicate names unknown processes {sorted(unknown)}")
        if self.debugger_name in lp.processes():
            raise PredicateError("predicates cannot reference the debugger process")
        lp_id = self._next_lp_id
        self._next_lp_id += 1
        self._breakpoints[lp_id] = lp
        self.agent.issue_predicate(lp, lp_id, halt=halt)
        return lp_id

    def set_path_breakpoint(self, text: str, halt: bool = True) -> List[int]:
        """Arm a §4 path expression (see :mod:`repro.breakpoints.pathexpr`):
        every compiled alternative is armed as its own Linked Predicate."""
        from repro.breakpoints.pathexpr import compile_path_expression

        return [self.set_breakpoint(lp, halt=halt)
                for lp in compile_path_expression(text)]

    def clear_breakpoint(self, lp_id: int) -> None:
        """Disarm every pending stage of one breakpoint, including arming
        markers still travelling toward their processes."""
        self._breakpoints.pop(lp_id, None)
        self._cancelled_lp_ids.add(lp_id)
        for agent in self._predicate_agents.values():
            agent.armed = [s for s in agent.armed if s.lp_id != lp_id]

    def watch_conjunction(
        self, conjunction: Union[str, ConjunctivePredicate], history: int = 32
    ) -> int:
        """Watch an unordered conjunction via the §3.5 gather detector."""
        if isinstance(conjunction, str):
            conjunction = parse_conjunctive(conjunction)
        return self.agent.watch_conjunction(conjunction, history=history)

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 2_000_000,
    ) -> RunOutcome:
        """Run until every user process halted, the program finished, or a
        bound was reached. After a full halt the network is drained so all
        channel states are final."""
        executed = self.system.run(
            until=until,
            max_events=max_events,
            stop_when=self.system.all_user_processes_halted,
        )
        if self.system.all_user_processes_halted():
            # Drain in-flight traffic: pending user messages settle into the
            # halt buffers, halt markers close channels, notifications and
            # stage reports reach the debugger.
            # With heartbeats enabled the debugger re-arms a timer forever,
            # so a full drain would never terminate — bound it by time.
            drain_until = (
                self.system.kernel.now + 5 * self.heartbeats.interval
                if self.heartbeats is not None else None
            )
            executed += self.system.kernel.run(
                until=drain_until, max_events=max_events
            )
        hits = self.agent.breakpoint_hits[self._seen_hits:]
        self._seen_hits = len(self.agent.breakpoint_hits)
        unordered = self.agent.unordered_detections[self._seen_unordered:]
        self._seen_unordered = len(self.agent.unordered_detections)
        if self.observe is not None:
            self.observe.sync_session(self)
        return RunOutcome(
            stopped=self.system.all_user_processes_halted(),
            hits=list(hits),
            unordered=list(unordered),
            time=self.system.kernel.now,
            events_executed=executed,
        )

    def halt(self) -> None:
        """Explicit halt: the debugger initiates the Halting Algorithm by
        sending halt markers on its control channel to every user process
        (it increments its own halt generation and never halts itself)."""
        self._halting_agents[self.debugger_name].initiate()
        if self.observe is not None:
            # Anchor this generation's convergence span at the initiation.
            self.observe.note_halt_initiated(self.current_generation())

    def resume(self) -> RunOutcome:
        """Resume every halted process and return immediately (call
        :meth:`run` to continue execution)."""
        generation = self.current_generation()
        for name in self.system.user_process_names:
            if self.system.controller(name).halted:
                self.agent.send_command(name, ResumeCommand(generation=generation))
        # Deliver the resume commands (control-plane only; halted processes
        # execute no user code until the command lands).
        executed = self.system.kernel.run(
            max_events=100_000,
            stop_when=lambda: not any(
                self.system.controller(n).halted
                for n in self.system.user_process_names
            ),
        )
        return RunOutcome(
            stopped=False, time=self.system.kernel.now, events_executed=executed
        )

    def step(self, process: ProcessId, channel: Optional[str] = None):
        """Single-step one halted process: deliver exactly one buffered
        message (optionally restricted to ``str(channel)``) and freeze
        again. The command and its reply travel the control channels like
        everything else; returns the :class:`StepReport`."""
        if process not in self.system.user_process_names:
            raise ReproError(f"unknown process {process!r}")
        step_id = self.agent.send_step(process, channel=channel)
        self.system.kernel.run(
            max_events=100_000,
            stop_when=lambda: step_id in self.agent.step_reports,
        )
        if step_id not in self.agent.step_reports:
            raise HaltingError(
                f"no step report from {process} — is the system wedged?"
            )
        return self.agent.step_reports[step_id]

    def alive(self) -> List[ProcessId]:
        """User processes that have not crashed (all of them, fault-free)."""
        return [
            n for n in self.system.user_process_names
            if not self.system.controller(n).crashed
        ]

    def breakpoint_hits(self) -> List[BreakpointHit]:
        """Every breakpoint completion the debugger has learned about."""
        return list(self.agent.breakpoint_hits)

    def current_generation(self) -> int:
        """The highest halt_id any process has seen."""
        return max(agent.last_halt_id for agent in self._halting_agents.values())

    # -- failure detection & degraded halting ----------------------------------

    def enable_heartbeats(self, interval: float = 10.0,
                          miss_threshold: int = 3) -> HeartbeatMonitor:
        """Start periodic liveness probing of every user process.

        The debugger pings each process every ``interval`` (virtual time)
        and folds the pong arrivals into a :class:`HeartbeatMonitor`. The
        debugger never halts, so the probe loop keeps running while the
        user program is frozen — a process that stops answering while
        everyone is halted is dead, not slow-and-halted.
        """
        controller = self.system.controller(self.debugger_name)
        monitor = HeartbeatMonitor(
            tuple(self.system.user_process_names), interval, miss_threshold
        )
        monitor.start(controller.now)
        self.heartbeats = monitor

        def beat(_payload: object) -> None:
            if self.heartbeats is not monitor:
                return  # disabled or replaced: stop re-arming
            for name in self.system.user_process_names:
                self.agent.send_ping(name)
            monitor.pings_sent += 1
            monitor.observe(self.agent.last_pong)
            controller.user_set_timer("heartbeat", interval, None)

        self._debugger_shell.timer_hooks["heartbeat"] = beat
        controller.user_set_timer("heartbeat", interval, None)
        return monitor

    def disable_heartbeats(self) -> None:
        """Stop pinging; the failure detector forgets everything."""
        self.heartbeats = None
        self.system.controller(self.debugger_name).user_cancel_timer("heartbeat")

    def suspected_processes(self) -> List[ProcessId]:
        """Heartbeat verdict right now (requires :meth:`enable_heartbeats`)."""
        if self.heartbeats is None:
            raise ReproError("heartbeats are not enabled")
        self.heartbeats.observe(self.agent.last_pong)
        return self.heartbeats.suspected(self.system.kernel.now)

    def halt_with_watchdog(
        self,
        timeout: float = 150.0,
        probe_grace: float = 40.0,
        max_events: int = 2_000_000,
    ) -> PartialHaltReport:
        """Initiate a halt that cannot hang.

        Fault-free, this is :meth:`halt` + :meth:`run` and the report says
        ``complete``. If some process never halts (its host crashed, so its
        halt marker is undeliverable), the watchdog fires after ``timeout``
        of virtual time: every still-unhalted process is pinged, anything
        silent through ``probe_grace`` is declared dead, and the halt
        degrades to a *partial* consistent cut over the survivors instead
        of waiting forever (§2.2.1's termination argument needs live
        processes; this is the graceful failure of that argument).
        """
        # Initiate only if no halt is in progress — calling this on a halt
        # that is already spreading supervises it rather than layering a
        # second generation onto frozen processes.
        if not any(self.system.controller(n).halted
                   for n in self.system.user_process_names):
            self.halt()
        deadline = self.system.kernel.now + timeout
        self.system.run(
            until=deadline,
            max_events=max_events,
            stop_when=self.system.all_user_processes_halted,
        )
        names = self.system.user_process_names
        if self.system.all_user_processes_halted():
            # Settle in-flight traffic (bounded when heartbeats re-arm forever).
            settle_until = (
                self.system.kernel.now + 5 * self.heartbeats.interval
                if self.heartbeats is not None else None
            )
            self.system.kernel.run(until=settle_until, max_events=max_events)
            # A converged halt can still hide a corpse: a process that
            # halted and *then* crashed keeps its halted flag but can never
            # report state. Probe everyone before declaring completeness.
            dead = self._probe_dead(names, probe_grace, max_events)
            if self.observe is not None:
                self.observe.sync_session(self)
            return PartialHaltReport(
                generation=self.current_generation(),
                halted=tuple(n for n in names if n not in dead),
                dead=dead,
                unresolved=(),
                time=self.system.kernel.now,
                complete=not dead,
            )
        # Watchdog fired. Probe the silent: pings ride DEBUG_CONTROL, which
        # halted processes still answer — only dead hosts stay quiet.
        unhalted = [
            n for n in names if not self.system.controller(n).halted
        ]
        dead = self._probe_dead(unhalted, probe_grace, max_events)
        halted = tuple(n for n in names if self.system.controller(n).halted)
        unresolved = tuple(
            n for n in names if n not in halted and n not in dead
        )
        if self.observe is not None:
            self.observe.sync_session(self)
        return PartialHaltReport(
            generation=self.current_generation(),
            halted=halted,
            dead=dead,
            unresolved=unresolved,
            time=self.system.kernel.now,
            complete=False,
        )

    def _probe_dead(self, suspects, probe_grace, max_events):
        """Ping each suspect; whoever stays silent through the grace window
        is dead. Live processes answer even while halted (§2.2.3)."""
        pings = {name: self.agent.send_ping(name) for name in suspects}
        self.system.run(
            until=self.system.kernel.now + probe_grace,
            max_events=max_events,
            stop_when=lambda: all(
                ping_id in self.agent.pongs for ping_id in pings.values()
            ),
        )
        return tuple(
            name for name in suspects if pings[name] not in self.agent.pongs
        )

    # -- inspection (all via the control protocol) -----------------------------------

    def inspect(self, process: ProcessId) -> Dict[str, object]:
        """Fetch one process's state through the debugger protocol."""
        report = self._fetch_report(process)
        return dict(report.snapshot.state)

    def _fetch_report(self, process: ProcessId):
        request_id = self.agent.request_state(process)
        self.system.kernel.run(
            max_events=100_000,
            stop_when=lambda: request_id in self.agent.state_reports,
        )
        if request_id not in self.agent.state_reports:
            raise HaltingError(
                f"no state report from {process} — is the system wedged?"
            )
        return self.agent.state_reports[request_id]

    def global_state(self, allow_partial: bool = False) -> GlobalState:
        """Assemble the halted global state ``S_h`` as the debugger sees it:
        one state report per process, pending channel contents included.

        Requires every user process to be halted — unless ``allow_partial``
        is set, in which case the cut covers only the *halted* processes
        (the survivors of a degraded halt; see :meth:`halt_with_watchdog`).
        A crashed process is never asked for a report — it cannot answer —
        and the missing population is recorded in ``meta``. The partial cut
        is still checkable: the consistency oracle skips channels whose
        endpoints are outside the captured set.
        """
        halted_names = [
            n for n in self.system.user_process_names
            if self.system.controller(n).halted
            and not self.system.controller(n).crashed
        ]
        missing = [
            n for n in self.system.user_process_names if n not in halted_names
        ]
        if missing and not allow_partial:
            raise HaltingError("global_state() requires all processes halted")
        processes: Dict[ProcessId, ProcessStateSnapshot] = {}
        channels: Dict[ChannelId, ChannelState] = {}
        for name in halted_names:
            report = self._fetch_report(name)
            processes[name] = report.snapshot
            closed = set(report.closed_channels)
            for channel_text, messages in report.pending.items():
                channel = ChannelId.parse(channel_text)
                channels[channel] = ChannelState(
                    channel=channel,
                    messages=tuple(messages),
                    complete=channel_text in closed,
                )
        meta: Dict[str, object] = {
            "halt_order": [n.process for n in self.agent.halting_order()],
            "clock_frame": list(self.system.clock_frame.order),
        }
        if missing:
            meta["partial"] = True
            meta["missing"] = sorted(missing)
        return GlobalState(
            origin="halting",
            processes=processes,
            channels=channels,
            generation=self.current_generation(),
            meta=meta,
        )

    def halting_order(self) -> List[ProcessId]:
        """§2.2.4: the order in which processes reported halting."""
        return [n.process for n in self.agent.halting_order()]

    def halt_paths(self) -> Dict[ProcessId, Tuple[ProcessId, ...]]:
        """Per process, the already-halted path its halt marker carried."""
        return {n.process: n.path for n in self.agent.halting_order()}

    def describe_halt(self) -> str:
        """Human-readable halt report."""
        lines = [f"halted at t={self.system.kernel.now:.3f} "
                 f"(generation {self.current_generation()})"]
        for notification in self.agent.halting_order():
            via = " -> ".join(notification.path) or "spontaneous"
            lines.append(
                f"  {notification.process} halted at t={notification.time:.3f} via {via}"
            )
        return "\n".join(lines)

    # -- observability exports (require observe=Observability()) ---------------

    def _require_observe(self):
        if self.observe is None:
            raise ReproError(
                "session has no observability attached; construct it with "
                "DebugSession(..., observe=Observability())"
            )
        return self.observe

    def chrome_trace(self, path: Optional[str] = None) -> Dict[str, object]:
        """Export recorded spans as a Chrome ``trace_event`` document
        (validated; written to ``path`` when given)."""
        from repro.observe.export import chrome_trace, write_chrome_trace

        observe = self._require_observe()
        observe.sync_session(self)
        if path is not None:
            return write_chrome_trace(observe, path)
        return chrome_trace(observe)

    def metrics_text(self) -> str:
        """Prometheus-style text dump of the live metrics registry."""
        from repro.observe.export import prometheus_text

        observe = self._require_observe()
        observe.sync_session(self)
        return prometheus_text(observe.metrics)

    def halt_narrative(self) -> str:
        """§2.2.4's halting order as a human-readable account (works with
        or without an attached observability hub)."""
        from repro.observe.narrative import halt_narrative

        if self.observe is not None:
            self.observe.sync_session(self)
        return halt_narrative(self)
