"""Client side of the debugger service: library and ``repro debug`` CLI.

:class:`DebugClient` is deliberately thin and obedient: it dials, sends
``attach``, and from then on does exactly what the attach reply dictated —
uses the session id the server assigned, refuses commands outside the
server's vocabulary, and knows the idle timeout it must ping within. The
server owns the protocol; the client owns nothing but a socket.

``repro debug <port> <command> [key=value ...]`` is the scripted face of
the same client: one attach, the listed commands in order, one JSON reply
per line, detach, exit nonzero if any reply had ``ok: false``. With
``--script FILE`` the commands come one per line from a file — which is
how the CI smoke drives two concurrent sessions deterministically.
"""

from __future__ import annotations

import json
import shlex
import socket
import sys
import time
from typing import Any, Dict, List, Optional

from repro.distributed import wire
from repro.util.errors import ReproError, WireError

DEBUG_USAGE = """\
usage: python -m repro debug <port> [command [key=value ...]] ...
       python -m repro debug <port> --script FILE

Attaches one session to a debugger service (repro serve ... debug_port=N)
and runs commands against it. Each command is an op name followed by
key=value fields; commands are separated by '--'. Examples:

  python -m repro debug 7071 status
  python -m repro debug 7071 break-set predicate='enter(recv)@p1' -- wait-halt
  python -m repro debug 7071 --script steps.txt

Options (before the first command):
  retries=N   connection attempts (default 5, seeded backoff)
  timeout=S   per-request socket timeout in seconds (default 60)
  seed=N      pins the backoff jitter schedule (default 0)

Run 'python -m repro debug <port> help' for the server's command table.
"""


class DebugClient:
    """One attach session against a :class:`~repro.debugger.service.DebugServer`."""

    def __init__(
        self,
        port: int,
        host: str = "127.0.0.1",
        label: str = "",
        retries: int = 5,
        timeout: float = 60.0,
        seed: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.label = label
        self.retries = retries
        self.timeout = timeout
        self.seed = seed
        self._sock: Optional[socket.socket] = None
        #: Assigned by the server at attach; everything below is dictated.
        self.session: Optional[str] = None
        self.server: Dict[str, Any] = {}
        self.commands: List[str] = []

    # -- lifecycle ----------------------------------------------------------

    def connect(self) -> Dict[str, Any]:
        """Dial (seeded backoff), attach, and obey the reply. Returns the
        raw attach reply."""
        from repro.distributed.transport import Backoff

        backoff = Backoff(
            seed=f"{self.seed}|debug|{self.port}",
            base=0.1,
            cap=2.0,
            retries=max(0, self.retries - 1),
        )
        sock: Optional[socket.socket] = None
        while sock is None:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=5.0
                )
            except OSError as exc:
                if backoff.exhausted:
                    raise ReproError(
                        f"cannot connect to {self.host}:{self.port} "
                        f"after {self.retries} attempts: {exc}"
                    ) from exc
                time.sleep(backoff.next_delay())
        sock.settimeout(self.timeout)
        self._sock = sock
        reply = self._roundtrip({"op": "attach", "label": self.label})
        if not reply.get("ok"):
            self.close()
            raise ReproError(f"attach refused: {reply.get('error')}")
        self.session = reply["session"]
        self.server = dict(reply.get("server", {}))
        self.commands = list(reply.get("commands", []))
        return reply

    def close(self) -> None:
        """Detach (best-effort) and drop the connection."""
        if self._sock is None:
            return
        if self.session is not None:
            try:
                self._roundtrip({"op": "detach", "session": self.session})
            except (ReproError, WireError, OSError):
                pass  # the server reaps on disconnect anyway
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = None
        self.session = None

    def __enter__(self) -> "DebugClient":
        self.connect()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- requests -----------------------------------------------------------

    def _roundtrip(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        if self._sock is None:
            raise ReproError("not connected; call connect() first")
        wire.send_frame(self._sock, frame)
        return wire.recv_frame(self._sock)

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one command under this client's session id."""
        if self.session is None:
            raise ReproError("not attached; call connect() first")
        if self.commands and op not in self.commands:
            # Server-dictated behavior: the vocabulary came from attach.
            raise ReproError(
                f"server did not offer command {op!r}; it offered "
                f"{', '.join(self.commands)}"
            )
        frame = {"op": op, "session": self.session, **fields}
        return self._roundtrip(frame)

    def ping(self) -> Dict[str, Any]:
        """Keep-alive within the server-dictated idle timeout."""
        return self.request("ping")


# -- the `repro debug` CLI -----------------------------------------------------


def _parse_command(words: List[str]) -> Dict[str, Any]:
    """``["break-set", "predicate=...", "halt=true"]`` -> request fields."""
    from repro.__main__ import parse_value

    if not words:
        raise ValueError("empty command")
    fields: Dict[str, Any] = {"op": words[0]}
    for word in words[1:]:
        key, sep, value = word.partition("=")
        if not sep:
            raise ValueError(
                f"command fields must be key=value, got {word!r}"
            )
        fields[key] = parse_value(value)
    return fields


def _split_commands(args: List[str]) -> List[List[str]]:
    """Split argv on standalone ``--`` separators into command word lists."""
    commands: List[List[str]] = [[]]
    for arg in args:
        if arg == "--":
            commands.append([])
        else:
            commands[-1].append(arg)
    return [command for command in commands if command]


def debug_main(argv: List[str]) -> int:
    """Entry point of ``python -m repro debug``."""
    if not argv or argv[0] in ("-h", "--help"):
        print(DEBUG_USAGE)
        return 0 if argv and argv[0] in ("-h", "--help") else 2
    try:
        port = int(argv[0])
    except ValueError:
        print(f"repro debug: not a port number: {argv[0]!r}", file=sys.stderr)
        return 2
    rest = argv[1:]
    options: Dict[str, str] = {}
    while rest and "=" in rest[0] and rest[0].split("=", 1)[0] in (
        "retries", "timeout", "seed", "label"
    ):
        key, value = rest.pop(0).split("=", 1)
        options[key] = value
    script: Optional[str] = None
    if rest[:1] == ["--script"]:
        if len(rest) < 2:
            print("repro debug: --script requires a file", file=sys.stderr)
            return 2
        script = rest[1]
        rest = rest[2:]
    try:
        retries = int(options.get("retries", 5))
        timeout = float(options.get("timeout", 60.0))
        seed = int(options.get("seed", 0))
    except ValueError as exc:
        print(f"repro debug: bad option value: {exc}", file=sys.stderr)
        return 2

    commands: List[Dict[str, Any]] = []
    try:
        if script is not None:
            with open(script, "r", encoding="utf-8") as handle:
                for line in handle:
                    words = shlex.split(line, comments=True)
                    if words:
                        commands.append(_parse_command(words))
        for words in _split_commands(rest):
            commands.append(_parse_command(words))
    except (OSError, ValueError) as exc:
        print(f"repro debug: {exc}", file=sys.stderr)
        return 2
    if not commands:
        commands = [{"op": "status"}]

    client = DebugClient(
        port,
        label=str(options.get("label", "cli")),
        retries=retries,
        timeout=timeout,
        seed=seed,
    )
    try:
        client.connect()
    except ReproError as exc:
        print(f"repro debug: {exc}", file=sys.stderr)
        return 2
    all_ok = True
    try:
        for fields in commands:
            op = fields.pop("op")
            try:
                reply = client.request(op, **fields)
            except (ReproError, WireError, OSError) as exc:
                print(f"repro debug: {op} failed: {exc}", file=sys.stderr)
                return 2
            print(json.dumps(reply, sort_keys=True, default=str))
            sys.stdout.flush()
            all_ok = all_ok and bool(reply.get("ok"))
            if op == "shutdown":
                # The server ends the conversation after this reply.
                client.session = None
                break
    finally:
        client.close()
    return 0 if all_ok else 1


__all__ = ["DebugClient", "debug_main", "DEBUG_USAGE"]
