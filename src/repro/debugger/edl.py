"""EDL-style abstract events on the LP detector (§4).

Bates & Wileden's Event Description Language groups low-level events into
high-level *abstract events* by recognizing patterns in event sequences.
The paper observes: "Our algorithm for recognizing distributed predicates
(Section 3.6) could be used to support an EDL abstract event recognizer."
This module is that application: an abstract event is a named Linked
Predicate run in monitoring mode (no halt); each completion is one
*occurrence* of the abstract event, and the recognizer re-arms so
occurrences repeat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.breakpoints.detector import StageHit
from repro.breakpoints.parser import parse_predicate
from repro.breakpoints.predicates import LinkedPredicate, as_linked
from repro.debugger.session import DebugSession


@dataclass(frozen=True)
class AbstractEvent:
    """One recognized occurrence of a named abstract event."""

    name: str
    occurrence: int
    trail: Tuple[StageHit, ...]

    @property
    def completed_at(self) -> float:
        """Virtual time of the final stage hit."""
        return self.trail[-1].time if self.trail else 0.0

    def __str__(self) -> str:
        steps = " -> ".join(f"{hit.term}#{hit.eid}" for hit in self.trail)
        return f"{self.name}[{self.occurrence}]: {steps}"


class EDLRecognizer:
    """Recognizes named abstract events over a live debug session.

    Usage::

        recognizer = EDLRecognizer(session)
        recognizer.define("money_moved", "send(wire)@branch0 -> recv(wire)@branch1")
        session.run(until=...)
        recognizer.poll()          # collect completions, re-arm
        recognizer.occurrences_of("money_moved")
    """

    def __init__(self, session: DebugSession) -> None:
        self.session = session
        self._definitions: Dict[str, LinkedPredicate] = {}
        self._active_lp: Dict[int, str] = {}
        self.occurrences: List[AbstractEvent] = []
        self._counts: Dict[str, int] = {}
        self._consumed_hits = 0

    def define(self, name: str, pattern: Union[str, LinkedPredicate]) -> None:
        """Define and arm an abstract event."""
        if name in self._definitions:
            raise ValueError(f"abstract event {name!r} already defined")
        lp = parse_predicate(pattern) if isinstance(pattern, str) else as_linked(pattern)
        self._definitions[name] = lp
        self._counts[name] = 0
        self._arm(name)

    def _arm(self, name: str) -> None:
        lp_id = self.session.set_breakpoint(self._definitions[name], halt=False)
        self._active_lp[lp_id] = name

    def poll(self, rearm: bool = True) -> List[AbstractEvent]:
        """Collect newly completed occurrences from the debugger's inbox;
        optionally re-arm each completed definition for its next occurrence."""
        fresh: List[AbstractEvent] = []
        hits = self.session.agent.breakpoint_hits
        while self._consumed_hits < len(hits):
            hit = hits[self._consumed_hits]
            self._consumed_hits += 1
            name = self._active_lp.pop(hit.marker.lp_id, None)
            if name is None:
                continue  # an ordinary breakpoint, not ours
            self._counts[name] += 1
            occurrence = AbstractEvent(
                name=name,
                occurrence=self._counts[name],
                trail=hit.marker.trail,
            )
            self.occurrences.append(occurrence)
            fresh.append(occurrence)
            if rearm:
                self._arm(name)
        return fresh

    def occurrences_of(self, name: str) -> List[AbstractEvent]:
        """Every recorded occurrence of one abstract event, in order."""
        return [o for o in self.occurrences if o.name == name]

    def count(self, name: str) -> int:
        """How many times the named abstract event has occurred."""
        return self._counts.get(name, 0)

    def definitions(self) -> Dict[str, str]:
        """name -> predicate text for every defined abstract event."""
        return {name: str(lp) for name, lp in self._definitions.items()}

    def last_occurrence(self, name: str) -> Optional[AbstractEvent]:
        """The most recent occurrence of one abstract event, if any."""
        found = self.occurrences_of(name)
        return found[-1] if found else None
