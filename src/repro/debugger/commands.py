"""The debugger control protocol: commands and notifications.

All of these travel as ``DEBUG_CONTROL`` payloads on the extended model's
control channels (§2.2.3). Commands flow debugger→process, notifications
process→debugger. They are deliberately plain immutable dataclasses — the
protocol is data, the behaviour lives in the agents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.breakpoints.detector import PredicateMarker, StageHit
from repro.runtime.state_capture import ProcessStateSnapshot
from repro.util.ids import ProcessId

# -- commands (debugger -> process) -------------------------------------------


@dataclass(frozen=True)
class ResumeCommand:
    """Un-freeze a halted process and continue execution."""

    generation: int  # the halt_id being resumed from (sanity check)


@dataclass(frozen=True)
class StateRequest:
    """Ask a process to report its current (possibly halted) state."""

    request_id: int
    #: Include the contents of its halt buffers (channel states of S_h).
    include_channels: bool = True


@dataclass(frozen=True)
class WatchCommand:
    """Install a continuous monitor for a Simple Predicate (used by the
    gather-based conjunctive detector and the EDL recognizer)."""

    watch_id: int
    term_index: int
    #: A SimplePredicate; typed as Any to keep the protocol module import-light.
    term: Any


@dataclass(frozen=True)
class UnwatchCommand:
    """Tear down a monitor previously installed by :class:`WatchCommand`."""

    watch_id: int


@dataclass(frozen=True)
class StepCommand:
    """Deliver exactly one buffered user message while staying halted.

    Single-stepping a frozen distributed program means releasing one
    controlled delivery: the process consumes the head of one halt buffer
    (the oldest buffered arrival, or the oldest on ``channel`` when named),
    executes its handler, and freezes again with a re-captured snapshot.
    The reply is a :class:`StepReport` either way — a process with nothing
    to step reports ``delivered=False`` rather than staying silent."""

    step_id: int
    #: ``str(ChannelId)`` restricting the step to one incoming channel;
    #: ``None`` steps the oldest buffered arrival across all channels.
    channel: Any = None


@dataclass(frozen=True)
class PingCommand:
    """Liveness probe. Clients answer with :class:`PongNotice` immediately,
    even while halted — control traffic bypasses the halt (§2.2.3: "user
    processes are always willing to accept a message from the debugger").
    Only a *crashed* host stays silent, which is exactly what makes the
    ping a failure detector and not a progress detector."""

    ping_id: int


# -- notifications (process -> debugger) -----------------------------------------


@dataclass(frozen=True)
class StateReport:
    """Reply to a :class:`StateRequest`."""

    request_id: int
    process: ProcessId
    snapshot: ProcessStateSnapshot
    halted: bool
    #: Pending (buffered) user messages per incoming channel, by str(channel).
    pending: Dict[str, Tuple[Any, ...]] = field(default_factory=dict)
    #: Channels known complete (halt marker arrived behind their contents).
    closed_channels: Tuple[str, ...] = ()


@dataclass(frozen=True)
class BreakpointHit:
    """A Linked Predicate completed at some process (§3.6 final stage)."""

    process: ProcessId
    marker: PredicateMarker
    #: Virtual time at the satisfying process when the final stage fired.
    time: float


@dataclass(frozen=True)
class HaltNotification:
    """A process halted (spontaneously or via a halt marker)."""

    process: ProcessId
    halt_id: int
    #: §2.2.4 halting-order path carried by the marker that halted us,
    #: ending with our own name.
    path: Tuple[ProcessId, ...]
    time: float


@dataclass(frozen=True)
class PongNotice:
    """Reply to a :class:`PingCommand` — doubles as a heartbeat."""

    ping_id: int
    process: ProcessId
    halted: bool
    time: float


@dataclass(frozen=True)
class StepReport:
    """Reply to a :class:`StepCommand` — what the single step delivered."""

    step_id: int
    process: ProcessId
    #: False when there was nothing to step (no buffered message matched,
    #: or the process was not halted at all).
    delivered: bool
    #: str(channel) of the delivered envelope, "" when nothing stepped.
    channel: str
    #: Human-oriented payload summary ("" when nothing stepped).
    detail: str
    #: Messages still buffered across all halt buffers after the step.
    remaining: int
    time: float


@dataclass(frozen=True)
class SatisfactionNotice:
    """A watched Simple Predicate matched (continuous monitoring)."""

    watch_id: int
    term_index: int
    hit: StageHit
    #: Vector clock of the matching event — the debugger's gather detector
    #: uses it to classify ordered vs unordered co-satisfaction (§3.5).
    vector: Tuple[int, ...]
    vector_index: int
