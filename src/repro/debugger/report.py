"""Post-mortem reports: everything a halted session knows, in one artifact.

After a breakpoint freezes the system, a single text report answers the
questions an engineer actually asks: *what fired, who stopped when, what
was everyone's state, what was stuck in the pipes, and what did the
execution look like?* The report is deterministic (same session → same
text), so it can be archived next to the trace file and diffed between
runs.
"""

from __future__ import annotations

from typing import List

from repro.analysis.diagram import render_spacetime, render_summary
from repro.analysis.metrics import message_overhead
from repro.analysis.order import compute_order_stats
from repro.debugger.session import DebugSession
from repro.events.event import EventKind
from repro.util.errors import AnalysisError, HaltingError


def post_mortem(
    session: DebugSession,
    diagram_window: float = 12.0,
    include_diagram: bool = True,
    include_stats: bool = True,
) -> str:
    """Render the full halt report for a stopped session.

    ``diagram_window`` selects how much virtual time before the halt the
    space-time diagram covers.
    """
    if not session.system.all_user_processes_halted():
        raise HaltingError("post_mortem requires a fully halted session")
    sections: List[str] = []

    sections.append(_rule("HALT"))
    sections.append(session.describe_halt())

    hits = session.agent.breakpoint_hits
    if hits:
        sections.append(_rule("BREAKPOINTS"))
        for hit in hits:
            sections.append(
                f"lp{hit.marker.lp_id} completed at {hit.process} "
                f"(t={hit.time:.3f}):"
            )
            for stage in hit.marker.trail:
                sections.append(f"    {stage}")

    state = session.global_state()
    sections.append(_rule("GLOBAL STATE (S_h)"))
    sections.append(state.describe())
    pending = [
        (channel, channel_state)
        for channel, channel_state in sorted(state.channels.items())
        if channel_state.messages
    ]
    if pending:
        sections.append("\nundelivered messages:")
        for channel, channel_state in pending:
            payloads = [m.payload for m in channel_state.messages]
            flag = "" if channel_state.complete else "  (INCOMPLETE)"
            sections.append(f"    {channel}: {payloads!r}{flag}")

    sections.append(_rule("MARKER PATHS (§2.2.4)"))
    for process, path in sorted(session.halt_paths().items()):
        sections.append(
            f"    {process:12s} via {' -> '.join(path) or '(spontaneous)'}"
        )

    overhead = message_overhead(session.system)
    sections.append(_rule("TRAFFIC"))
    sections.append(
        f"user messages: {overhead.user_messages}; control messages: "
        f"{overhead.control_messages} "
        f"({overhead.control_per_user:.2f} per user message)"
    )
    for kind, count in sorted(overhead.by_kind.items()):
        if count:
            sections.append(f"    {kind:18s} {count}")

    if include_stats:
        sections.append(_rule("EXECUTION SHAPE"))
        sections.append(render_summary(session.system.log))
        try:
            stats = compute_order_stats(session.system.log)
            sections.append(
                f"concurrency ratio {stats.concurrency_ratio:.2f}; "
                f"critical path {stats.critical_path_length}; "
                f"message depth {stats.message_depth}; "
                f"parallelism {stats.parallelism:.2f}"
            )
        except AnalysisError as exc:
            sections.append(f"(order stats skipped: {exc})")

    if include_diagram:
        halt_time = session.system.kernel.now
        sections.append(_rule("SPACE-TIME (traffic view, window before halt)"))
        sections.append(
            render_spacetime(
                session.system.log,
                processes=session.system.user_process_names,
                start=max(0.0, halt_time - diagram_window),
                kinds={EventKind.SEND, EventKind.RECEIVE,
                       EventKind.PROCESS_TERMINATED},
                halted_state=state,
                max_rows=80,
                unicode_glyphs=False,
            )
        )

    return "\n".join(sections)


def _rule(title: str) -> str:
    bar = "=" * max(4, 66 - len(title))
    return f"\n==== {title} {bar}"
